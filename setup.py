"""Legacy setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` works in fully
offline environments whose setuptools lacks PEP 660 editable-wheel support
(pip falls back to ``setup.py develop``, which needs no ``wheel``
package).  All metadata lives in pyproject.toml; this file only forwards.
"""

from setuptools import setup

setup()
