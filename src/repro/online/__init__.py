"""Online learning for adaptive sparsity k — Section IV of the paper.

- :mod:`repro.online.interval`: the continuous search interval
  K = [kmin, kmax], projection P_K, and stochastic rounding of continuous
  k (Definition 2).
- :mod:`repro.online.algorithm2`: Algorithm 2 — online update using only
  the sign of the derivative, step δ_m = B/√(2m); regret ≤ GB√(2M)
  (Theorem 1) and ≤ GHB√(2M) with a noisy sign (Theorem 2).
- :mod:`repro.online.algorithm3`: Algorithm 3 — extension with shrinking
  search intervals (restart rule B' < (√2−1)·B and M'' ≥ M').
- :mod:`repro.online.estimator`: the practical derivative-sign estimator
  of Section IV-E built from three one-sample losses (eqs. 10–11).
- :mod:`repro.online.baselines`: value-based derivative descent, EXP3, and
  the continuous one-point bandit — the Fig. 5 comparison methods.
- :mod:`repro.online.regret`: regret bookkeeping and theoretical bounds.
- :mod:`repro.online.adaptive_trainer`: Algorithm 1 + Algorithm 3 + the
  estimator wired together into a full adaptive-k FL trainer (Fig. 3's
  protocol).
"""

from repro.online.adaptive_trainer import AdaptiveKTrainer
from repro.online.algorithm2 import SignOGD
from repro.online.algorithm3 import AdaptiveSignOGD
from repro.online.baselines import ContinuousBandit, Exp3Policy, ValueBasedGD
from repro.online.estimator import estimate_derivative, estimate_sign, estimate_tau
from repro.online.interval import SearchInterval, stochastic_round
from repro.online.policy import KPolicy, RoundObservation, SignPolicy
from repro.online.regret import theorem1_bound, theorem2_bound

__all__ = [
    "AdaptiveKTrainer",
    "AdaptiveSignOGD",
    "ContinuousBandit",
    "Exp3Policy",
    "KPolicy",
    "RoundObservation",
    "SearchInterval",
    "SignOGD",
    "SignPolicy",
    "ValueBasedGD",
    "estimate_derivative",
    "estimate_sign",
    "estimate_tau",
    "stochastic_round",
    "theorem1_bound",
    "theorem2_bound",
]
