"""Regret bounds and bookkeeping (Theorems 1 and 2).

The benchmark ``bench_regret.py`` drives Algorithm 2/3 against synthetic
Assumption-2 cost oracles and checks the measured regret against these
bounds; the theory tests in ``tests/test_online_theory.py`` do the same at
smaller scale.
"""

from __future__ import annotations

import math


def theorem1_bound(G: float, B: float, M: int) -> float:
    """Theorem 1: R(M) ≤ GB√(2M) for Algorithm 2 with exact signs."""
    if G < 0 or B < 0 or M < 0:
        raise ValueError("G, B, M must be nonnegative")
    return G * B * math.sqrt(2.0 * M)


def theorem2_bound(G: float, H: float, B: float, M: int) -> float:
    """Theorem 2: E[R(M)] ≤ GHB√(2M) with estimated signs (H ≥ 1)."""
    if H < 1.0:
        raise ValueError("H must be >= 1")
    return H * theorem1_bound(G, B, M)


def two_instance_bound(
    G: float, H: float, B: float, M_prime: int, B_prime: float, M_dprime: int
) -> float:
    """Regret bound after a single Algorithm-3 restart (Section IV-D).

    GH√2·(B√M' + B'√M'') — the quantity compared against the no-restart
    bound GHB√(2(M'+M'')) to justify the restart rule.
    """
    return G * H * math.sqrt(2.0) * (
        B * math.sqrt(M_prime) + B_prime * math.sqrt(M_dprime)
    )


def restart_is_beneficial(B: float, B_prime: float) -> bool:
    """The paper's restart criterion: B' < (√2 − 1)·B.

    Derived by requiring the two-instance bound to beat the single-
    instance bound for all M'' ≥ M' (paper eq. 9 discussion).
    """
    return B_prime < (math.sqrt(2.0) - 1.0) * B


def empirical_regret(costs_played: list[float], costs_optimal: list[float]) -> float:
    """R(M) = Σ_m τ_m(k_m) − Σ_m τ_m(k*), from per-round cost samples."""
    if len(costs_played) != len(costs_optimal):
        raise ValueError("cost series must have equal length")
    return sum(costs_played) - sum(costs_optimal)
