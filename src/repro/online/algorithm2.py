"""Algorithm 2 — online learning to determine k from the derivative sign.

Per round m the system reveals s_m = sign(τ'_m(k_m)) (or an estimate ŝ_m),
and the algorithm updates

    k_{m+1} = P_K(k_m − δ_m · s_m),   δ_m = B / √(2m).

Theorem 1: with exact signs the regret satisfies R(M) ≤ GB√(2M).
Theorem 2: with a noisy sign satisfying conditions (6)–(7) the expected
regret satisfies E[R(M)] ≤ GHB√(2M).

When the sign estimate is unavailable in a round (Section IV-E: the probe
losses did not decrease), pass ``None`` — k stays unchanged, matching the
paper's "the value of km remains unchanged" rule; the round counter still
advances with training.
"""

from __future__ import annotations

import math

from repro.online.interval import SearchInterval


class SignOGD:
    """Sign-based online 'gradient' descent over the sparsity k.

    Parameters
    ----------
    interval:
        The search interval K = [kmin, kmax]; B is its width.
    k1:
        Initial decision; defaults to the interval midpoint.
    """

    name = "sign-ogd"

    def __init__(self, interval: SearchInterval, k1: float | None = None) -> None:
        self.interval = interval
        if k1 is None:
            k1 = 0.5 * (interval.kmin + interval.kmax)
        if not interval.contains(k1):
            raise ValueError(f"k1={k1} outside interval {interval}")
        self._k = float(k1)
        self._m = 1
        self.k_history: list[float] = [self._k]

    @property
    def m(self) -> int:
        """Current round index (1-based)."""
        return self._m

    @property
    def k(self) -> float:
        """The continuous decision k_m for the current round."""
        return self._k

    def step_size(self, m: int | None = None) -> float:
        """δ_m = B/√(2m)."""
        if m is None:
            m = self._m
        if m < 1:
            raise ValueError("round index must be >= 1")
        return self.interval.width / math.sqrt(2.0 * m)

    def update(self, sign: int | None) -> float:
        """Consume ŝ_m, produce k_{m+1}; advances the round counter.

        ``sign`` must be −1, 0, +1, or None (estimate unavailable).
        """
        if sign is not None:
            if sign not in (-1, 0, 1):
                raise ValueError(f"sign must be -1, 0, 1, or None, got {sign}")
            delta = self.step_size(self._m)
            self._k = self.interval.project(self._k - delta * sign)
        self._m += 1
        self.k_history.append(self._k)
        return self._k
