"""Derivative-sign estimation from one-sample losses — Section IV-E.

Each client i picks one sample h from its current minibatch and reports
three scalar losses: f_{i,h}(w(m−1)), f_{i,h}(w(m)), and f_{i,h}(w'(m)),
where w'(m) is the weights the round *would* have produced with
k'_m = k_m − δ_m/2 element GS.  The server averages them into L̃(w(m−1)),
L̃(w(m)), L̃(w'(m)) and maps the k'-round onto the loss interval the real
round covered (eq. 10):

    τ̂_m(k') = θ_m(k') · (L̃(w(m−1)) − L̃(w(m))) / (L̃(w(m−1)) − L̃(w'(m)))

with θ_m(k') the wall time of one k'-GS round.  The estimated derivative
(eq. 11) is the slope between the actual round cost τ_m(k_m) and τ̂_m(k'):

    ŝ_m = sign( (τ_m(k_m) − τ̂_m(k')) / (k_m − k') ).

If either loss difference is nonpositive (a round that failed to decrease
the probe loss — possible under minibatch noise), the estimate is declared
unavailable (None) and the decision k stays unchanged.
"""

from __future__ import annotations


def estimate_tau(
    loss_prev: float,
    loss_now: float,
    loss_probe: float,
    probe_round_time: float,
) -> float | None:
    """τ̂_m(k'_m) per eq. (10); None when the probe losses are unusable."""
    decrease_actual = loss_prev - loss_now
    decrease_probe = loss_prev - loss_probe
    if decrease_actual <= 0.0 or decrease_probe <= 0.0:
        return None
    return probe_round_time * decrease_actual / decrease_probe


def estimate_derivative(
    loss_prev: float,
    loss_now: float,
    loss_probe: float,
    round_time: float,
    probe_round_time: float,
    k: float,
    k_probe: float,
) -> float | None:
    """The quantity inside sign(·) of eq. (11); None when unavailable.

    ``round_time`` is τ_m(k_m) (the observed cost of the actual round);
    ``probe_round_time`` is θ_m(k'), the one-round wall time at k'.
    """
    if k == k_probe:
        raise ValueError("probe k' must differ from k")
    tau_probe = estimate_tau(loss_prev, loss_now, loss_probe, probe_round_time)
    if tau_probe is None:
        return None
    return (round_time - tau_probe) / (k - k_probe)


def estimate_sign(
    loss_prev: float,
    loss_now: float,
    loss_probe: float,
    round_time: float,
    probe_round_time: float,
    k: float,
    k_probe: float,
) -> int | None:
    """ŝ_m per eq. (11); None when the estimate is unavailable."""
    derivative = estimate_derivative(
        loss_prev, loss_now, loss_probe, round_time, probe_round_time, k, k_probe
    )
    if derivative is None:
        return None
    if derivative > 0.0:
        return 1
    if derivative < 0.0:
        return -1
    return 0
