"""Policy interface shared by the proposed method and the Fig. 5 baselines.

The adaptive trainer is method-agnostic: each round it asks the policy for
a continuous decision k, optionally runs the k' probe the policy requests,
and feeds back a :class:`RoundObservation` carrying everything any of the
methods needs (probe losses for sign/value-based updates, realized cost
for the bandit methods).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.online.algorithm2 import SignOGD
from repro.online.algorithm3 import AdaptiveSignOGD
from repro.online.estimator import estimate_sign


@dataclass(frozen=True)
class RoundObservation:
    """Feedback for one adaptive round.

    Attributes
    ----------
    k:
        The continuous decision that was played.
    round_time:
        Realized normalized time of the round, τ_m(k_m).
    loss_prev, loss_now:
        Averaged one-sample losses L̃(w(m−1)) and L̃(w(m)).
    loss_probe:
        L̃(w'(m)) if a probe was run, else None.
    probe_k:
        The probed k' (None when no probe was requested).
    probe_round_time:
        θ_m(k'): wall time of one round at k' (None when no probe).
    cost:
        Realized time-per-unit-loss-decrease of the round,
        ``round_time / (loss_prev − loss_now)``; None when the loss did
        not decrease.  Bandit-style methods consume this scalar.
    """

    k: float
    round_time: float
    loss_prev: float
    loss_now: float
    loss_probe: float | None = None
    probe_k: float | None = None
    probe_round_time: float | None = None
    cost: float | None = None


class KPolicy:
    """Interface: propose a continuous k, request probes, consume feedback."""

    name = "abstract"

    def propose(self) -> float:
        """The continuous decision k_m for the coming round."""
        raise NotImplementedError

    def probe_k(self) -> float | None:
        """The k' < k this policy wants probed this round (None = no probe)."""
        return None

    def observe(self, observation: RoundObservation) -> None:
        """Consume the round's feedback and update internal state."""
        raise NotImplementedError


class SignPolicy(KPolicy):
    """The paper's proposed method: Algorithm 2 or 3 + the sign estimator.

    The probe point is k' = k − δ_m/2 (Section IV-E), clamped to stay at
    least 1 and strictly below k; when clamping makes the probe collide
    with k the estimate is declared unavailable for that round.
    """

    def __init__(self, algorithm: SignOGD | AdaptiveSignOGD) -> None:
        self.algorithm = algorithm
        self.name = f"sign({algorithm.name})"

    def propose(self) -> float:
        return self.algorithm.k

    def probe_k(self) -> float | None:
        k = self.algorithm.k
        probe = k - self.algorithm.step_size() / 2.0
        probe = max(probe, 1.0)
        if probe >= k:
            return None
        return probe

    def observe(self, observation: RoundObservation) -> None:
        if observation.probe_k is None or observation.loss_probe is None:
            self.algorithm.update(None)
            return
        assert observation.probe_round_time is not None
        sign = estimate_sign(
            loss_prev=observation.loss_prev,
            loss_now=observation.loss_now,
            loss_probe=observation.loss_probe,
            round_time=observation.round_time,
            probe_round_time=observation.probe_round_time,
            k=observation.k,
            k_probe=observation.probe_k,
        )
        self.algorithm.update(sign)
