"""Online-learning baselines compared against the proposed method (Fig. 5).

1. :class:`ValueBasedGD` — online gradient descent on the *value* of the
   estimated derivative (the paper's "value-based gradient (derivative)
   descent [36]"): identical probe machinery to the proposed method, but
   the update uses the raw derivative estimate instead of its sign.
2. :class:`Exp3Policy` — the EXP3 adversarial-bandit algorithm [38] over a
   discretized arm grid.  The paper treats "each integer value of k" as an
   arm, which is infeasible for D > 10⁴; like any practical EXP3 run at
   this scale we discretize [kmin, kmax] into geometrically spaced arms
   (the paper's qualitative result — slow exploration and wild k
   fluctuation — is preserved; see DESIGN.md).
3. :class:`ContinuousBandit` — one-point bandit gradient descent of
   Flaxman et al. [37]: play a perturbed point, use the realized cost as
   a gradient estimate.

All three consume the realized per-round cost (time per unit loss
decrease) through :class:`~repro.online.policy.RoundObservation`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.online.interval import SearchInterval
from repro.online.policy import KPolicy, RoundObservation
from repro.online.estimator import estimate_derivative

__all__ = [
    "ContinuousBandit",
    "Exp3Policy",
    "KPolicy",
    "RoundObservation",
    "ValueBasedGD",
]


class ValueBasedGD(KPolicy):
    """Online descent with the estimated derivative *value* (not sign).

    Update: k_{m+1} = P_K(k_m − δ_m · d̂_m) with δ_m = B/√(2m), exactly
    Algorithm 2's schedule, as the paper specifies for this baseline.  The
    weakness this exposes: d̂_m has arbitrary scale, so the product
    δ_m·d̂_m is either negligible or enormous depending on the cost units.
    """

    name = "value-based-gd"

    def __init__(self, interval: SearchInterval, k1: float | None = None) -> None:
        self.interval = interval
        self._k = float(k1) if k1 is not None else 0.5 * (
            interval.kmin + interval.kmax
        )
        if not interval.contains(self._k):
            raise ValueError(f"k1={self._k} outside interval")
        self._m = 1
        self.k_history: list[float] = [self._k]

    def step_size(self) -> float:
        return self.interval.width / math.sqrt(2.0 * self._m)

    def propose(self) -> float:
        return self._k

    def probe_k(self) -> float | None:
        probe = self._k - self.step_size() / 2.0
        probe = max(probe, 1.0)
        return probe if probe < self._k else None

    def observe(self, observation: RoundObservation) -> None:
        if observation.probe_k is not None and observation.loss_probe is not None:
            assert observation.probe_round_time is not None
            derivative = estimate_derivative(
                loss_prev=observation.loss_prev,
                loss_now=observation.loss_now,
                loss_probe=observation.loss_probe,
                round_time=observation.round_time,
                probe_round_time=observation.probe_round_time,
                k=observation.k,
                k_probe=observation.probe_k,
            )
            if derivative is not None:
                self._k = self.interval.project(
                    self._k - self.step_size() * derivative
                )
        self._m += 1
        self.k_history.append(self._k)


class Exp3Policy(KPolicy):
    """EXP3 over a geometric grid of arms in [kmin, kmax].

    Rewards must live in [0, 1]; realized costs are mapped through a
    running min–max normalization (reward = 1 − normalized cost), with
    missing costs (rounds whose loss did not decrease) scored as reward 0.
    """

    name = "exp3"

    def __init__(
        self,
        interval: SearchInterval,
        num_arms: int = 32,
        gamma: float = 0.1,
        seed: int = 0,
    ) -> None:
        if num_arms < 2:
            raise ValueError("need at least 2 arms")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.interval = interval
        self.gamma = gamma
        self.arms = np.geomspace(interval.kmin, interval.kmax, num_arms)
        self._log_weights = np.zeros(num_arms)
        self._rng = np.random.default_rng(seed)
        self._current_arm: int | None = None
        self._cost_min = math.inf
        self._cost_max = -math.inf
        self.k_history: list[float] = []

    def _probabilities(self) -> np.ndarray:
        # Log-sum-exp normalization keeps the weights finite forever.
        w = np.exp(self._log_weights - self._log_weights.max())
        p = (1.0 - self.gamma) * w / w.sum() + self.gamma / self.arms.size
        return p / p.sum()

    def propose(self) -> float:
        p = self._probabilities()
        self._current_arm = int(self._rng.choice(self.arms.size, p=p))
        k = float(self.arms[self._current_arm])
        self.k_history.append(k)
        return k

    def observe(self, observation: RoundObservation) -> None:
        if self._current_arm is None:
            raise RuntimeError("observe called before propose")
        reward = self._reward(observation.cost)
        p = self._probabilities()[self._current_arm]
        estimated = reward / p
        self._log_weights[self._current_arm] += (
            self.gamma * estimated / self.arms.size
        )
        self._current_arm = None

    def _reward(self, cost: float | None) -> float:
        if cost is None or not math.isfinite(cost):
            return 0.0
        self._cost_min = min(self._cost_min, cost)
        self._cost_max = max(self._cost_max, cost)
        spread = self._cost_max - self._cost_min
        if spread <= 0.0:
            return 0.5
        return 1.0 - (cost - self._cost_min) / spread


class ContinuousBandit(KPolicy):
    """One-point bandit gradient descent (Flaxman et al. [37]).

    Maintains a center z_m, plays k_m = P_K(z_m + ξ_m·u_m) with u_m = ±1,
    and updates z_{m+1} = P_K(z_m − η_m·(c_m/ξ_m)·u_m) where c_m is the
    realized cost.  Schedules ξ_m ∝ m^(−1/4) and η_m ∝ m^(−3/4) follow
    the theory; the cost is normalized by a running mean so the step
    scale is unit-free.
    """

    name = "continuous-bandit"

    def __init__(
        self,
        interval: SearchInterval,
        k1: float | None = None,
        perturbation_fraction: float = 0.25,
        learning_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not 0.0 < perturbation_fraction < 1.0:
            raise ValueError("perturbation_fraction must be in (0, 1)")
        self.interval = interval
        self._z = float(k1) if k1 is not None else 0.5 * (
            interval.kmin + interval.kmax
        )
        if not interval.contains(self._z):
            raise ValueError(f"k1={self._z} outside interval")
        self._xi0 = perturbation_fraction * interval.width
        self._eta0 = learning_fraction * interval.width
        self._rng = np.random.default_rng(seed)
        self._m = 1
        self._direction: float | None = None
        self._played: float | None = None
        self._cost_mean = 0.0
        self._cost_count = 0
        self.k_history: list[float] = []

    def _xi(self) -> float:
        return self._xi0 * self._m ** (-0.25)

    def _eta(self) -> float:
        return self._eta0 * self._m ** (-0.75)

    def propose(self) -> float:
        self._direction = 1.0 if self._rng.random() < 0.5 else -1.0
        self._played = self.interval.project(self._z + self._xi() * self._direction)
        self.k_history.append(self._played)
        return self._played

    def observe(self, observation: RoundObservation) -> None:
        if self._direction is None:
            raise RuntimeError("observe called before propose")
        cost = observation.cost
        if cost is not None and math.isfinite(cost):
            self._cost_count += 1
            self._cost_mean += (cost - self._cost_mean) / self._cost_count
            scale = self._cost_mean if self._cost_mean > 0 else 1.0
            gradient = (cost / scale) / self._xi() * self._direction
            self._z = self.interval.project(self._z - self._eta() * gradient)
        self._m += 1
        self._direction = None
        self._played = None
