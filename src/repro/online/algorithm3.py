"""Algorithm 3 — extended online learning with shrinking search intervals.

Algorithm 2's update step δ_m is proportional to the interval width B, so
when the optimal k is small (large communication time) the early steps
overshoot and waste communication.  Algorithm 3 runs Algorithm 2 instances
on successively smaller intervals: every ``update_window`` rounds it forms
a candidate interval from the min/max of recent decisions widened by α,
and restarts onto it when

    B' < (√2 − 1) · B    and    M'' ≥ M',

where M'' is the length of the current instance and M' of the previous —
the condition under which the summed two-instance regret bound
GH√2·(B√M' + B'√M'') beats the single-instance bound (paper eq. 9).

Note on the round origin: the paper's pseudocode initializes m0 ← 1 while
the step uses δ_m = B/√(2(m − m0)), which is undefined at m = 1; we take
m0 = 0 initially (so δ_1 = B/√2, exactly Algorithm 2's first step) and set
m0 ← m on restart as written.
"""

from __future__ import annotations

import math

from repro.online.interval import SearchInterval

_SHRINK_FACTOR = math.sqrt(2.0) - 1.0


class AdaptiveSignOGD:
    """Algorithm 3: sign-based updates over a self-shrinking interval."""

    name = "adaptive-sign-ogd"

    def __init__(
        self,
        interval: SearchInterval,
        k1: float | None = None,
        alpha: float = 1.5,
        update_window: int = 20,
    ) -> None:
        if alpha < 1.0:
            raise ValueError("alpha must be >= 1")
        if update_window < 1:
            raise ValueError("update_window must be >= 1")
        self.global_interval = interval
        self.alpha = alpha
        self.update_window = update_window
        if k1 is None:
            k1 = 0.5 * (interval.kmin + interval.kmax)
        if not interval.contains(k1):
            raise ValueError(f"k1={k1} outside interval {interval}")
        self._k = float(k1)
        self._m = 1
        self._m0 = 0  # round before the current instance started
        self._current = interval
        self._B = interval.width
        self._window_count = 0  # n in the pseudocode
        self._prev_instance_rounds = 0  # M'
        self._window_min = math.inf  # k'_min
        self._window_max = 0.0  # k'_max
        self.k_history: list[float] = [self._k]
        self.restart_rounds: list[int] = []

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        return self._m

    @property
    def k(self) -> float:
        return self._k

    @property
    def current_interval(self) -> SearchInterval:
        return self._current

    def step_size(self, m: int | None = None) -> float:
        """δ_m = B/√(2(m − m0)) with the current instance's B."""
        if m is None:
            m = self._m
        instance_round = m - self._m0
        if instance_round < 1:
            raise ValueError("round index precedes the current instance")
        return self._B / math.sqrt(2.0 * instance_round)

    # ------------------------------------------------------------------
    def update(self, sign: int | None) -> float:
        """Consume ŝ_m and produce k_{m+1} (Algorithm 3 lines 3–15).

        When ``sign`` is None the decision and the window trackers stay
        untouched (the paper: "Lines 6 and 7 in Algorithm 3 are skipped
        when km does not change in round m").
        """
        if sign is not None:
            if sign not in (-1, 0, 1):
                raise ValueError(f"sign must be -1, 0, 1, or None, got {sign}")
            delta = self.step_size(self._m)
            self._k = self._current.project(self._k - delta * sign)
            self._window_min = min(self._window_min, self._k)
            self._window_max = max(self._window_max, self._k)
            self._window_count += 1
            if self._window_count >= self.update_window:
                self._maybe_restart()
        self._m += 1
        self.k_history.append(self._k)
        return self._k

    def _maybe_restart(self) -> None:
        new_max = min(self.alpha * self._window_max, self.global_interval.kmax)
        new_min = max(self._window_min / self.alpha, self.global_interval.kmin)
        new_width = new_max - new_min
        instance_rounds = self._m - self._m0  # M''
        if (
            new_width < _SHRINK_FACTOR * self._B
            and instance_rounds >= self._prev_instance_rounds
            and new_width > 0
        ):
            self._current = SearchInterval(new_min, new_max)
            self._B = new_width
            self._prev_instance_rounds = instance_rounds
            self._m0 = self._m
            self._k = self._current.project(self._k)
            self.restart_rounds.append(self._m)
        self._window_count = 0
        self._window_min = math.inf
        self._window_max = 0.0
