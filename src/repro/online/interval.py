"""Continuous search interval K = [kmin, kmax] and stochastic rounding.

Definition 2 of the paper extends k-element GS to continuous k: use
⌊k⌋-element GS with probability ⌈k⌉ − k and ⌈k⌉-element GS with
probability k − ⌊k⌋ (stochastic rounding), making the expected round time
linear in k between integers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SearchInterval:
    """The decision interval K with projection P_K.

    ``kmin`` is "usually a small integer larger than one to prevent
    ill-conditions"; ``kmax`` is at most the model dimension D.
    """

    kmin: float
    kmax: float

    def __post_init__(self) -> None:
        if not (0 < self.kmin <= self.kmax):
            raise ValueError(
                f"need 0 < kmin <= kmax, got [{self.kmin}, {self.kmax}]"
            )

    @property
    def width(self) -> float:
        """B := kmax − kmin, the quantity the regret bound scales with."""
        return self.kmax - self.kmin

    def project(self, k: float) -> float:
        """P_K(k) := argmin_{k' ∈ K} |k' − k|, i.e. clipping."""
        return float(min(max(k, self.kmin), self.kmax))

    def contains(self, k: float) -> bool:
        return self.kmin <= k <= self.kmax


def stochastic_round(k: float, rng: np.random.Generator) -> int:
    """Randomized rounding of continuous k (Definition 2).

    Returns ⌊k⌋ with probability ⌈k⌉ − k and ⌈k⌉ with probability
    k − ⌊k⌋; integers round to themselves.  The result is unbiased:
    E[round] = k.
    """
    if k < 0:
        raise ValueError("k cannot be negative")
    lo = math.floor(k)
    hi = math.ceil(k)
    if lo == hi:
        return lo
    frac = k - lo
    return hi if rng.random() < frac else lo
