"""Adaptive-k federated training: Algorithm 1 + a k-policy + the estimator.

This is the full system of the paper's Fig. 3.  Each round m:

1. The policy proposes a continuous k_m; stochastic rounding (Definition 2)
   yields the integer sparsity actually played.
2. Clients run the Algorithm-1 local step at the synchronized weights
   w(m−1) and each draws one probe sample h from its minibatch, reporting
   f_{i,h}(w(m−1)).
3. The server runs the sparsifier's selection and aggregation to produce
   w(m), and — when the policy requests a probe k' < k — derives the
   k'-element GS update from the k-element result (top-k' of the
   aggregated downlink values, transmitted as a small "difference"
   message, step ③ of Fig. 3) to form the probe weights w'(m).
4. Clients report f_{i,h}(w(m)) and f_{i,h}(w'(m)); the server averages
   them and the policy consumes the :class:`RoundObservation` (for the
   proposed method this computes ŝ_m via eqs. (10)–(11) and steps
   Algorithm 2/3).
5. The timing model charges the round: computation, k-pair uplink, |J|-
   pair downlink, plus the (k − k')-pair probe difference downlink.

The Algorithm-1 skeleton itself (steps 2–3 and the timing/eval/record
bookkeeping) is :class:`repro.fl.engine.RoundEngine`; this trainer adds
the probe machinery through a :class:`repro.fl.engine.RoundHooks` object
and keeps only the policy interaction here.  The k'-GS probe derivation
differs per sparsifier in principle; we use the generic server-side
derivation (largest-|value| k' elements of the aggregated downlink) which
is available for every scheme and matches the paper's requirement that
the probe be derivable from the k-element result without extra uplink.
"""

from __future__ import annotations

import numpy as np

from repro.data.partition import FederatedDataset
from repro.fl.backends import ExecutionBackend
from repro.fl.engine import EngineFacade, RoundContext, RoundEngine, RoundHooks
from repro.fl.trainer import _apply_scenario
from repro.fl.metrics import RoundRecord, TrainingHistory
from repro.nn.flat import FlatModel
from repro.online.interval import stochastic_round
from repro.online.policy import KPolicy, RoundObservation
from repro.simulation.timing import TimingModel
from repro.sparsify.base import Sparsifier
from repro.sparsify.topk import top_k_indices


class _ProbeHooks(RoundHooks):
    """One round's probe measurements and policy feedback (Fig. 3 ③–④)."""

    wants_probes = True

    def __init__(
        self,
        trainer: "AdaptiveKTrainer",
        k_continuous: float,
        probe_continuous: float | None,
        probe_int: int | None,
    ) -> None:
        self.trainer = trainer
        self.k_continuous = k_continuous
        self.probe_continuous = probe_continuous
        self.probe_int = probe_int
        self.loss_prev = float("nan")
        self.loss_now = float("nan")
        self.loss_probe: float | None = None
        self.w_probe: np.ndarray | None = None

    def after_local_steps(self, ctx: RoundContext) -> None:
        # f_{i,h}(w(m-1)), averaged over the round's participants.
        model = ctx.engine.model
        self.loss_prev = float(
            np.mean([c.probe_loss(model, ctx.w_prev) for c in ctx.participants])
        )

    def after_aggregate(self, ctx: RoundContext) -> None:
        if self.probe_int is None:
            return
        payload = ctx.downlink.payload
        keep = top_k_indices(payload.values, self.probe_int)
        w_probe = ctx.w_prev.copy()
        w_probe[payload.indices[keep]] -= (
            ctx.engine.learning_rate * payload.values[keep]
        )
        self.w_probe = w_probe

    def after_update(self, ctx: RoundContext) -> None:
        model = ctx.engine.model
        self.loss_now = float(
            np.mean([c.probe_loss(model, ctx.w_new) for c in ctx.participants])
        )
        if self.w_probe is not None:
            self.loss_probe = float(
                np.mean(
                    [c.probe_loss(model, self.w_probe) for c in ctx.participants]
                )
            )

    def extra_round_time(self, ctx: RoundContext) -> float:
        if not (
            self.trainer.charge_probe_communication
            and self.probe_int is not None
        ):
            return 0.0
        # Step ③ of Fig. 3: the downlink difference message lets each
        # client reconstruct the k'-GS result from the k-GS one.
        diff_elements = max(0, ctx.k - self.probe_int)
        return ctx.engine.timing.sparse_round(0, diff_elements).communication

    def observe(self, ctx: RoundContext) -> None:
        timing = ctx.engine.timing
        probe_round_time = None
        if self.probe_int is not None:
            probe_round_time = timing.sparse_round(
                self.probe_int, self.probe_int
            ).total
        loss_decrease = self.loss_prev - self.loss_now
        cost = ctx.round_time / loss_decrease if loss_decrease > 0 else None
        tel = ctx.engine.telemetry
        if tel.enabled:
            tel.event(
                "probe",
                round=ctx.round_index,
                k_continuous=self.k_continuous,
                probe_k=self.probe_int,
                loss_prev=self.loss_prev,
                loss_now=self.loss_now,
                loss_probe=self.loss_probe,
            )
        self.trainer.policy.observe(RoundObservation(
            k=self.k_continuous,
            round_time=ctx.round_time,
            loss_prev=self.loss_prev,
            loss_now=self.loss_now,
            loss_probe=self.loss_probe,
            probe_k=(
                self.probe_continuous if self.probe_int is not None else None
            ),
            probe_round_time=probe_round_time,
            cost=cost,
        ))

    def record_k(self, ctx: RoundContext) -> float:
        del ctx
        return self.k_continuous


class AdaptiveKTrainer(EngineFacade):
    """Federated training with online-learned sparsity k."""

    def __init__(
        self,
        model: FlatModel,
        federation: FederatedDataset,
        sparsifier: Sparsifier,
        policy: KPolicy,
        timing: TimingModel,
        learning_rate: float = 0.01,
        batch_size: int = 32,
        eval_every: int = 1,
        eval_max_samples: int = 2000,
        charge_probe_communication: bool = True,
        sampler=None,
        backend: str | ExecutionBackend | None = None,
        scenario=None,
        telemetry=None,
        seed: int = 0,
    ) -> None:
        sampler, scenario_hooks, aggregator = _apply_scenario(
            scenario, sampler
        )
        self.engine = RoundEngine(
            model=model,
            federation=federation,
            sparsifier=sparsifier,
            timing=timing,
            learning_rate=learning_rate,
            batch_size=batch_size,
            eval_every=eval_every,
            eval_max_samples=eval_max_samples,
            sampler=sampler,
            backend=backend,
            scenario_hooks=scenario_hooks,
            telemetry=telemetry,
            seed=seed,
            aggregator=aggregator,
        )
        self.policy = policy
        self.charge_probe_communication = charge_probe_communication
        self._rng = np.random.default_rng((seed, 0xADA9))

    # ------------------------------------------------------------------
    def step(self) -> RoundRecord:
        """Run one adaptive round; returns its record."""
        dimension = self.engine.model.dimension
        k_continuous = float(self.policy.propose())
        k_int = stochastic_round(
            min(max(k_continuous, 1.0), float(dimension)), self._rng
        )
        k_int = max(1, min(k_int, dimension))

        probe_continuous = self.policy.probe_k()
        probe_int = self._round_probe(probe_continuous, k_int)

        hooks = _ProbeHooks(self, k_continuous, probe_continuous, probe_int)
        return self.engine.run_round(k_int, hooks=hooks)

    def _round_probe(self, probe_continuous: float | None, k_int: int) -> int | None:
        """Stochastic-round the probe k' and keep it in [1, k_int)."""
        if probe_continuous is None:
            return None
        probe_int = stochastic_round(max(probe_continuous, 1.0), self._rng)
        probe_int = min(probe_int, k_int - 1)
        if probe_int < 1:
            return None
        return probe_int

    def run(self, num_rounds: int) -> TrainingHistory:
        for _ in range(num_rounds):
            self.step()
        return self.history

    def run_for_time(self, time_budget: float, max_rounds: int = 1_000_000
                     ) -> TrainingHistory:
        """Run until the normalized clock exceeds ``time_budget``."""
        while (
            self.engine.clock < time_budget
            and self.engine.round_index < max_rounds
        ):
            self.step()
        return self.history
