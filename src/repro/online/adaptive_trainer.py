"""Adaptive-k federated training: Algorithm 1 + a k-policy + the estimator.

This is the full system of the paper's Fig. 3.  Each round m:

1. The policy proposes a continuous k_m; stochastic rounding (Definition 2)
   yields the integer sparsity actually played.
2. Clients run the Algorithm-1 local step at the synchronized weights
   w(m−1) and each draws one probe sample h from its minibatch, reporting
   f_{i,h}(w(m−1)).
3. The server runs the sparsifier's selection and aggregation to produce
   w(m), and — when the policy requests a probe k' < k — derives the
   k'-element GS update from the k-element result (top-k' of the
   aggregated downlink values, transmitted as a small "difference"
   message, step ③ of Fig. 3) to form the probe weights w'(m).
4. Clients report f_{i,h}(w(m)) and f_{i,h}(w'(m)); the server averages
   them and the policy consumes the :class:`RoundObservation` (for the
   proposed method this computes ŝ_m via eqs. (10)–(11) and steps
   Algorithm 2/3).
5. The timing model charges the round: computation, k-pair uplink, |J|-
   pair downlink, plus the (k − k')-pair probe difference downlink.

The k'-GS probe derivation differs per sparsifier in principle; we use the
generic server-side derivation (largest-|value| k' elements of the
aggregated downlink) which is available for every scheme and matches the
paper's requirement that the probe be derivable from the k-element result
without extra uplink.
"""

from __future__ import annotations

import numpy as np

from repro.data.partition import FederatedDataset
from repro.fl.client import Client
from repro.fl.metrics import RoundRecord, TrainingHistory
from repro.fl.server import Server
from repro.nn.flat import FlatModel
from repro.online.interval import stochastic_round
from repro.online.policy import KPolicy, RoundObservation
from repro.simulation.timing import TimingModel
from repro.sparsify.base import Sparsifier
from repro.sparsify.topk import top_k_indices


class AdaptiveKTrainer:
    """Federated training with online-learned sparsity k."""

    def __init__(
        self,
        model: FlatModel,
        federation: FederatedDataset,
        sparsifier: Sparsifier,
        policy: KPolicy,
        timing: TimingModel,
        learning_rate: float = 0.01,
        batch_size: int = 32,
        eval_every: int = 1,
        eval_max_samples: int = 2000,
        charge_probe_communication: bool = True,
        sampler=None,
        seed: int = 0,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if eval_every < 1:
            raise ValueError("eval_every must be >= 1")
        self.model = model
        self.federation = federation
        self.sparsifier = sparsifier
        self.policy = policy
        self.timing = timing
        self.learning_rate = learning_rate
        self.eval_every = eval_every
        self.charge_probe_communication = charge_probe_communication
        #: optional per-round client sampler (heterogeneous extension);
        #: probe losses are then averaged over the participants only.
        self.sampler = sampler
        self.server = Server(model.dimension)
        self.clients = [
            Client(shard, model.dimension, batch_size=batch_size, seed=seed)
            for shard in federation.clients
        ]
        self._clients_by_id = {c.client_id: c for c in self.clients}
        self.history = TrainingHistory()
        self._rng = np.random.default_rng((seed, 0xADA9))
        self._round = 0
        self._clock = 0.0
        x, y = federation.global_pool()
        if x.shape[0] > eval_max_samples:
            rng = np.random.default_rng((seed, 0xE0A1))
            idx = rng.choice(x.shape[0], size=eval_max_samples, replace=False)
            x, y = x[idx], y[idx]
        self._eval_x, self._eval_y = x, y

    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        return self._clock

    def global_loss(self) -> float:
        return self.model.loss_value(self._eval_x, self._eval_y)

    def test_accuracy(self) -> float | None:
        if self.federation.test_x is None or self.federation.test_y is None:
            return None
        return self.model.accuracy(self.federation.test_x, self.federation.test_y)

    # ------------------------------------------------------------------
    def step(self) -> RoundRecord:
        """Run one adaptive round; returns its record."""
        self._round += 1
        dimension = self.model.dimension

        k_continuous = float(self.policy.propose())
        k_int = stochastic_round(
            min(max(k_continuous, 1.0), float(dimension)), self._rng
        )
        k_int = max(1, min(k_int, dimension))

        probe_continuous = self.policy.probe_k()
        probe_int = self._round_probe(probe_continuous, k_int)

        start_round = getattr(self.sparsifier, "start_round", None)
        if start_round is not None:
            start_round(k_int)

        if self.sampler is not None:
            participant_ids = self.sampler.sample()
            participants = [self._clients_by_id[cid] for cid in participant_ids]
        else:
            participant_ids = None
            participants = self.clients

        w_prev = self.model.get_weights()
        uploads = []
        for client in participants:
            uploads.append(client.local_step(self.model, k_int, self.sparsifier))
            client.draw_probe_sample()
        loss_prev = float(
            np.mean([c.probe_loss(self.model, w_prev) for c in participants])
        )

        uploads = self.sparsifier.preprocess_uploads(uploads)
        selection = self.sparsifier.server_select(uploads, k_int, dimension)
        downlink = self.server.aggregate(uploads, selection)

        w_new = w_prev.copy()
        w_new[downlink.payload.indices] -= (
            self.learning_rate * downlink.payload.values
        )

        w_probe = None
        if probe_int is not None:
            keep = top_k_indices(downlink.payload.values, probe_int)
            w_probe = w_prev.copy()
            probe_idx = downlink.payload.indices[keep]
            probe_val = downlink.payload.values[keep]
            w_probe[probe_idx] -= self.learning_rate * probe_val

        for client, upload in zip(participants, uploads):
            client.reset_transmitted(selection.indices, upload.payload)
            if self.sparsifier.discards_residual:
                client.reset_all()
        self.model.set_weights(w_new)

        loss_now = float(
            np.mean([c.probe_loss(self.model, w_new) for c in participants])
        )
        loss_probe = None
        if w_probe is not None:
            loss_probe = float(
                np.mean([c.probe_loss(self.model, w_probe) for c in participants])
            )

        uplink_elements = max(up.payload.nnz for up in uploads)
        sparse_round_for = getattr(self.timing, "sparse_round_for", None)
        if sparse_round_for is not None:
            round_timing = sparse_round_for(
                uplink_elements, selection.downlink_element_count,
                participant_ids,
            )
        else:
            round_timing = self.timing.sparse_round(
                uplink_elements, selection.downlink_element_count
            )
        round_time = round_timing.total
        if (
            self.charge_probe_communication
            and probe_int is not None
        ):
            # Step ③ of Fig. 3: the downlink difference message lets each
            # client reconstruct the k'-GS result from the k-GS one.
            diff_elements = max(0, k_int - probe_int)
            round_time += self.timing.sparse_round(0, diff_elements).communication
        self._clock += round_time

        probe_round_time = None
        if probe_int is not None:
            probe_round_time = self.timing.sparse_round(probe_int, probe_int).total

        loss_decrease = loss_prev - loss_now
        cost = round_time / loss_decrease if loss_decrease > 0 else None

        observation = RoundObservation(
            k=k_continuous,
            round_time=round_time,
            loss_prev=loss_prev,
            loss_now=loss_now,
            loss_probe=loss_probe,
            probe_k=probe_continuous if probe_int is not None else None,
            probe_round_time=probe_round_time,
            cost=cost,
        )
        self.policy.observe(observation)

        evaluate = (self._round % self.eval_every == 0) or (self._round == 1)
        loss = self.global_loss() if evaluate else float("nan")
        accuracy = self.test_accuracy() if evaluate else None
        record = RoundRecord(
            round_index=self._round,
            k=k_continuous,
            round_time=round_time,
            cumulative_time=self._clock,
            loss=loss,
            accuracy=accuracy,
            uplink_elements=uplink_elements,
            downlink_elements=selection.downlink_element_count,
            contributions=dict(selection.contributions),
        )
        self.history.append(record)
        return record

    def _round_probe(self, probe_continuous: float | None, k_int: int) -> int | None:
        """Stochastic-round the probe k' and keep it in [1, k_int)."""
        if probe_continuous is None:
            return None
        probe_int = stochastic_round(max(probe_continuous, 1.0), self._rng)
        probe_int = min(probe_int, k_int - 1)
        if probe_int < 1:
            return None
        return probe_int

    def run(self, num_rounds: int) -> TrainingHistory:
        for _ in range(num_rounds):
            self.step()
        return self.history

    def run_for_time(self, time_budget: float, max_rounds: int = 1_000_000
                     ) -> TrainingHistory:
        """Run until the normalized clock exceeds ``time_budget``."""
        while self._clock < time_budget and self._round < max_rounds:
            self.step()
        return self.history
