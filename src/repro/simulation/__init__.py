"""Timing and cost-model substrate.

The paper simulates the FL system under *normalized time*: computation of
one round (all clients in parallel) costs 1, and the communication time β
is "the time required for sending the entire D-dimensional gradient vector
(both uplink and downlink) between all clients and the server", scaling
proportionally with the number of elements actually sent (footnote 3), with
sparse transmissions paying a 2x factor for index transmission
(footnote 5).  :class:`~repro.simulation.timing.TimingModel` implements
exactly this accounting.

:mod:`repro.simulation.cost` provides synthetic convex ``t(k, l)`` families
satisfying Assumption 2 of the paper; they let the online-learning
algorithms (and the regret theorems) be tested in isolation from the
learning system.
"""

from repro.simulation.cost import (
    CostOracle,
    NoisySignOracle,
    QuadraticCost,
    TimePerLossCost,
)
from repro.simulation.heterogeneous import (
    ClientProfile,
    ClientSampler,
    HeterogeneousTimingModel,
)
from repro.simulation.resources import ResourceModel, ResourceWeights
from repro.simulation.timing import RoundTiming, TimingModel

__all__ = [
    "ClientProfile",
    "ClientSampler",
    "CostOracle",
    "HeterogeneousTimingModel",
    "NoisySignOracle",
    "QuadraticCost",
    "ResourceModel",
    "ResourceWeights",
    "RoundTiming",
    "TimePerLossCost",
    "TimingModel",
]
