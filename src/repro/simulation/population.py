"""Population models: per-client laws without enumerating the population.

The list-based processes in :mod:`repro.scenarios.availability` and
:meth:`repro.scenarios.config.ScenarioConfig.build_profiles` draw every
client from one shared sequential RNG — O(population) per query and per
construction, fine at 96 clients, structurally impossible at a million.
This module provides the *population-scale* counterparts: every per-client
quantity is a pure function of ``(seed, client_id)`` (plus the round index
for availability), so any client can be asked about on demand, in any
order, in any process, without touching the other N−1.

Like :class:`repro.data.virtual.VirtualFederation` these are new
generative families in the same statistical family as the list-based
ones — not reorderings of them (the shared-stream draws are not
per-client decomposable).  The determinism contract of the scenario
subsystem carries over unchanged: availability is a pure function of
``(construction args, client_id, round_index)`` and profiles of
``(construction args, client_id)``, so population runs stay bit-identical
across execution backends.
"""

from __future__ import annotations

import numpy as np

from repro.simulation.heterogeneous import ClientProfile

#: per-cid straggler-designation stream tag (population analogue of the
#: list-based ``build_profiles`` stream 0x51C0)
PROFILE_TAG = 0x51C0
#: per-cid Markov-chain stream tag (population analogue of 0xC4A1)
MARKOV_TAG = 0xC4A1
#: per-cid diurnal-phase stream tag (population analogue of 0xD1A7)
DIURNAL_TAG = 0xD1A7

POPULATION_AVAILABILITY_KINDS = ("always", "markov", "diurnal")


class ProfileMap:
    """Read-only per-cid profile mapping derived from seeds.

    Satisfies the mapping surface the deadline gate and
    :class:`~repro.simulation.heterogeneous.HeterogeneousTimingModel`
    consume (``in`` / ``[]`` / ``get`` / ``values``) while deriving each
    profile on demand: client ``cid`` is a straggler iff its personal
    uniform draw falls below ``slow_fraction``.  ``values()`` returns the
    *support* of the distribution (the distinct slow/fast profiles), which
    is exactly what the timing model's all-clients worst-corner fallback
    needs — enumerating a million identical profiles would answer the same
    question in O(population).
    """

    def __init__(
        self,
        population: int,
        slow_fraction: float = 0.0,
        slow_factor: float = 4.0,
        seed: int = 0,
    ) -> None:
        if population < 1:
            raise ValueError("population must be positive")
        if not 0.0 <= slow_fraction <= 1.0:
            raise ValueError("slow_fraction must be in [0, 1]")
        if slow_factor <= 0.0:
            raise ValueError("slow_factor must be positive")
        self.population = population
        self.slow_fraction = slow_fraction
        self.slow_factor = slow_factor
        self.seed = seed

    def is_slow(self, client_id: int) -> bool:
        """Pure per-cid straggler designation."""
        if self.slow_fraction == 0.0:
            return False
        rng = np.random.default_rng((self.seed, PROFILE_TAG, int(client_id)))
        return bool(rng.random() < self.slow_fraction)

    def __contains__(self, client_id: int) -> bool:
        return 0 <= int(client_id) < self.population

    def __getitem__(self, client_id: int) -> ClientProfile:
        cid = int(client_id)
        if cid not in self:
            raise KeyError(client_id)
        factor = self.slow_factor if self.is_slow(cid) else 1.0
        return ClientProfile(
            client_id=cid, compute_factor=factor, comm_factor=factor
        )

    def get(self, client_id: int, default=None):
        if client_id in self:
            return self[client_id]
        return default

    def values(self) -> list[ClientProfile]:
        """The distribution's support: the distinct profiles that occur."""
        support = [ClientProfile(client_id=-2)]
        if self.slow_fraction > 0.0:
            support.append(ClientProfile(
                client_id=-3,
                compute_factor=self.slow_factor,
                comm_factor=self.slow_factor,
            ))
        return support


class PopulationModel:
    """Size-N population with per-cid availability and profile laws.

    ``availability`` is one of :data:`POPULATION_AVAILABILITY_KINDS`:

    - ``"always"`` — every client online every round (O(1));
    - ``"markov"`` — an *independent* on/off chain per client, seeded
      ``(seed, MARKOV_TAG, cid)``; queried rounds replay the chain from
      its last cached state, so sequential queries are O(1) amortized and
      the realization is one fixed function of ``(seed, cid, round)``
      regardless of query order;
    - ``"diurnal"`` — duty cycle with a per-cid seeded phase (O(1)).

    Only ever-queried clients hold cache entries, so memory tracks the
    ever-sampled set, never the population.
    """

    def __init__(
        self,
        population: int,
        availability: str = "always",
        p_drop: float = 0.1,
        p_recover: float = 0.5,
        period: int = 24,
        duty: float = 0.5,
        slow_fraction: float = 0.0,
        slow_factor: float = 4.0,
        seed: int = 0,
    ) -> None:
        if population < 1:
            raise ValueError("population must be positive")
        if availability not in POPULATION_AVAILABILITY_KINDS:
            raise ValueError(
                f"unknown population availability {availability!r}; "
                f"expected one of {POPULATION_AVAILABILITY_KINDS}"
            )
        if not 0.0 <= p_drop <= 1.0 or not 0.0 <= p_recover <= 1.0:
            raise ValueError("transition probabilities must be in [0, 1]")
        if period < 1:
            raise ValueError("period must be >= 1")
        if not 0.0 < duty <= 1.0:
            raise ValueError("duty must be in (0, 1]")
        self.population = population
        self.availability = availability
        self.p_drop = p_drop
        self.p_recover = p_recover
        self.period = period
        self.duty = duty
        self.seed = seed
        self.profiles = ProfileMap(
            population, slow_fraction=slow_fraction,
            slow_factor=slow_factor, seed=seed,
        )
        self._window = max(1, int(round(duty * period)))
        #: cid -> (last replayed round, online state, chain RNG)
        self._markov: dict[int, tuple[int, bool, np.random.Generator]] = {}

    @classmethod
    def from_scenario_config(cls, config, population: int) -> "PopulationModel":
        """Derive the population laws from a ``ScenarioConfig``.

        Trace availability has no population analogue (a trace *is* an
        enumeration); everything else maps field-for-field.
        """
        if config.availability not in POPULATION_AVAILABILITY_KINDS:
            raise ValueError(
                f"availability {config.availability!r} has no "
                f"population-scale law (supported: "
                f"{POPULATION_AVAILABILITY_KINDS})"
            )
        return cls(
            population=population,
            availability=config.availability,
            p_drop=config.p_drop,
            p_recover=config.p_recover,
            period=config.period,
            duty=config.duty,
            slow_fraction=config.slow_fraction,
            slow_factor=config.slow_factor,
            seed=config.seed,
        )

    # ------------------------------------------------------------------
    def is_online(self, client_id: int, round_index: int) -> bool:
        """Whether ``client_id`` is online in 1-based ``round_index``.

        A pure function of ``(construction args, client_id,
        round_index)`` — repeated queries (in any order) agree.
        """
        if round_index < 1:
            raise ValueError("round_index is 1-based and must be >= 1")
        cid = int(client_id)
        if not 0 <= cid < self.population:
            raise ValueError(
                f"client_id {cid} outside population [0, {self.population})"
            )
        if self.availability == "always":
            return True
        if self.availability == "diurnal":
            phase = int(np.random.default_rng(
                (self.seed, DIURNAL_TAG, cid)
            ).integers(0, self.period))
            return (round_index - 1 + phase) % self.period < self._window
        return self._markov_state(cid, round_index)

    def _markov_state(self, cid: int, round_index: int) -> bool:
        """Replay this client's chain up to ``round_index`` (cached).

        A query for an *earlier* round than the cache restarts the chain
        from round 1 — the same deterministic realization either way,
        since the chain RNG is a pure function of ``(seed, cid)``.
        """
        cached = self._markov.get(cid)
        if cached is None or cached[0] > round_index:
            # Round 0 is the implicit "all online" start; round 1's state
            # is already a draw, matching the list-based chain.
            state, rng = True, np.random.default_rng(
                (self.seed, MARKOV_TAG, cid)
            )
            replayed = 0
        else:
            replayed, state, rng = cached
        while replayed < round_index:
            draw = float(rng.random())
            state = draw >= self.p_drop if state else draw < self.p_recover
            replayed += 1
        self._markov[cid] = (replayed, state, rng)
        return state
