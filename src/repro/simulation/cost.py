"""Synthetic cost functions satisfying the paper's Assumption 2.

The online-learning algorithms (Section IV) are analyzed against an
abstract time-density ``t(k, l)``: the expected training time per unit of
loss decrease when running k-element GS at loss level l.  Assumption 2
requires ``t(k, l)`` to be (a) convex in k, (b) with bounded ∂t/∂k, and
(c) minimized at the same k* for every l.

These families let us unit-test Algorithms 2 and 3 and *empirically verify
Theorems 1 and 2* (regret bounds GB√(2M) and GHB√(2M)) without running any
actual model training — the benchmark ``bench_regret.py`` does exactly
that.

:class:`TimePerLossCost` is the physically-motivated family: one round
costs ``1 + β·2k/D`` time and decreases loss at a rate that improves with
k (diminishing returns), giving a convex U-shaped time-per-unit-loss with
an interior optimum that moves down as β grows — the qualitative structure
the paper's experiments exhibit (larger comm time → smaller optimal k).
"""

from __future__ import annotations

import numpy as np


class CostOracle:
    """Interface the online-learning tests use.

    ``tau(k, m)`` is the per-round cost τ_m(k) and ``derivative(k, m)`` its
    exact ∂τ_m/∂k; ``sign(k, m)`` is the exact derivative sign s_m.
    """

    #: Upper bound G on |τ'_m(k)| over the search interval (eq. 4).
    derivative_bound: float

    def optimum(self, kmin: float, kmax: float) -> float:
        """The minimizing k* within [kmin, kmax]."""
        raise NotImplementedError

    def tau(self, k: float, m: int) -> float:
        raise NotImplementedError

    def derivative(self, k: float, m: int) -> float:
        raise NotImplementedError

    def sign(self, k: float, m: int) -> int:
        d = self.derivative(k, m)
        if d > 0:
            return 1
        if d < 0:
            return -1
        return 0

    def regret(self, ks: list[float], kmin: float, kmax: float) -> float:
        """R(M) = Σ_m τ_m(k_m) − Σ_m τ_m(k*)."""
        k_star = self.optimum(kmin, kmax)
        return sum(
            self.tau(k, m + 1) - self.tau(k_star, m + 1) for m, k in enumerate(ks)
        )


class QuadraticCost(CostOracle):
    """τ_m(k) = c_m · (k − k*)² + b_m, the simplest Assumption-2 family.

    Round-varying positive scales ``c_m`` (seeded) model the shrinking loss
    interval [L_m, L_{m-1}]; the optimum is static per Assumption 2(c).
    """

    def __init__(
        self,
        k_star: float,
        kmax: float,
        scale_low: float = 0.5,
        scale_high: float = 1.5,
        seed: int = 0,
    ) -> None:
        if scale_low <= 0 or scale_high < scale_low:
            raise ValueError("need 0 < scale_low <= scale_high")
        self.k_star = float(k_star)
        self._rng = np.random.default_rng(seed)
        self._scales: dict[int, float] = {}
        self._low, self._high = scale_low, scale_high
        # |τ'| = 2 c_m |k − k*| <= 2·scale_high·range.
        self.derivative_bound = 2.0 * scale_high * kmax

    def _scale(self, m: int) -> float:
        if m not in self._scales:
            self._scales[m] = float(self._rng.uniform(self._low, self._high))
        return self._scales[m]

    def optimum(self, kmin: float, kmax: float) -> float:
        return float(np.clip(self.k_star, kmin, kmax))

    def tau(self, k: float, m: int) -> float:
        return self._scale(m) * (k - self.k_star) ** 2

    def derivative(self, k: float, m: int) -> float:
        return 2.0 * self._scale(m) * (k - self.k_star)


class TimePerLossCost(CostOracle):
    """Physically-motivated τ_m(k): round time / loss progress.

    Round time: ``θ(k) = comp + β·2k/D`` (the paper's timing model).
    Loss progress per round: ``ρ(k) = ρ_max · k/(k + s)`` — concave,
    saturating: more gradient elements help with diminishing returns
    (s is the half-saturation constant).  The per-unit-loss density is

        t(k) = θ(k)/ρ(k) = (comp + 2βk/D)(k + s)/(ρ_max k),

    which is convex in k > 0 with interior optimum
    ``k* = sqrt(comp·s·D/(2β))`` when that lies in [1, D] — decreasing in
    β, matching the paper's Fig. 7 observation.
    """

    def __init__(
        self,
        dimension: int,
        comm_time: float,
        computation_time: float = 1.0,
        saturation: float | None = None,
        progress_max: float = 1.0,
        round_scale_jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        if dimension < 2 or comm_time <= 0:
            raise ValueError("need dimension >= 2 and positive comm_time")
        self.dimension = dimension
        self.beta = comm_time
        self.comp = computation_time
        self.saturation = saturation if saturation is not None else dimension / 20.0
        self.progress_max = progress_max
        self._jitter = round_scale_jitter
        self._rng = np.random.default_rng(seed)
        self._scales: dict[int, float] = {}
        self.derivative_bound = self._compute_derivative_bound()

    def _compute_derivative_bound(self) -> float:
        grid = np.linspace(1.0, self.dimension, 512)
        derivs = np.abs([self._derivative_base(k) for k in grid])
        return float(derivs.max() * (1.0 + self._jitter))

    def _scale(self, m: int) -> float:
        if self._jitter == 0.0:
            return 1.0
        if m not in self._scales:
            self._scales[m] = float(
                self._rng.uniform(1.0 - self._jitter, 1.0 + self._jitter)
            )
        return self._scales[m]

    def _theta(self, k: float) -> float:
        return self.comp + 2.0 * self.beta * k / self.dimension

    def _rho(self, k: float) -> float:
        return self.progress_max * k / (k + self.saturation)

    def _tau_base(self, k: float) -> float:
        if k <= 0:
            raise ValueError("k must be positive")
        return self._theta(k) / self._rho(k)

    def _derivative_base(self, k: float) -> float:
        # d/dk [ (comp + c k)(k + s) / (p k) ] with c = 2β/D, p = ρ_max:
        c = 2.0 * self.beta / self.dimension
        s = self.saturation
        p = self.progress_max
        return (c - (self.comp * s) / (k * k)) / p

    def optimum(self, kmin: float, kmax: float) -> float:
        c = 2.0 * self.beta / self.dimension
        k_star = np.sqrt(self.comp * self.saturation / c)
        return float(np.clip(k_star, kmin, kmax))

    def tau(self, k: float, m: int) -> float:
        return self._scale(m) * self._tau_base(k)

    def derivative(self, k: float, m: int) -> float:
        return self._scale(m) * self._derivative_base(k)


class NoisySignOracle:
    """Wrap a :class:`CostOracle` with a noisy sign channel (Section IV-C).

    With probability ``flip_probability`` the reported sign is flipped.
    For p < 1/2 the estimator satisfies condition (6) of the paper:
    E[ŝ] = (1 − 2p)·s has the sign of s, with H = 1/(1 − 2p) in (7).
    """

    def __init__(
        self, oracle: CostOracle, flip_probability: float, seed: int = 0
    ) -> None:
        if not 0.0 <= flip_probability < 0.5:
            raise ValueError("flip probability must be in [0, 0.5)")
        self.oracle = oracle
        self.flip_probability = flip_probability
        self._rng = np.random.default_rng(seed)

    @property
    def H(self) -> float:
        """The estimator-quality constant of Theorem 2."""
        return 1.0 / (1.0 - 2.0 * self.flip_probability)

    def sign(self, k: float, m: int) -> int:
        s = self.oracle.sign(k, m)
        if self._rng.random() < self.flip_probability:
            return -s
        return s
