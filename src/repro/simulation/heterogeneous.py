"""Heterogeneous client resources — the paper's "future work" extension.

Section VI: "Future work can also consider heterogeneous client resources,
where it may be beneficial to select a subset of clients in each training
round...".  This module provides:

- :class:`ClientProfile` — per-client computation and communication speed
  multipliers.
- :class:`HeterogeneousTimingModel` — a drop-in extension of
  :class:`~repro.simulation.timing.TimingModel` where a synchronous round
  is as slow as its slowest *participating* client (the straggler effect),
  exposing the same ``sparse_round``/``dense_round``/``local_round``
  surface plus participant-aware variants.
- :class:`ClientSampler` — seeded per-round client-subset selection
  (uniform or speed-weighted), used by the trainers' ``sampler`` option.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.simulation.timing import RoundTiming, TimingModel


@dataclass(frozen=True)
class ClientProfile:
    """Relative speeds of one client (1.0 = the baseline of the paper).

    ``compute_factor`` multiplies local computation time and
    ``comm_factor`` multiplies that client's transfer time; both > 0.
    A straggler has factors > 1.
    """

    client_id: int
    compute_factor: float = 1.0
    comm_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.compute_factor <= 0 or self.comm_factor <= 0:
            raise ValueError("speed factors must be positive")


class HeterogeneousTimingModel(TimingModel):
    """Synchronous-round timing dominated by the slowest participant."""

    def __init__(
        self,
        dimension: int,
        comm_time: float,
        profiles: "list[ClientProfile] | Mapping[int, ClientProfile]",
        computation_time: float = 1.0,
        pair_overhead: float = 2.0,
    ) -> None:
        super().__init__(dimension, comm_time, computation_time, pair_overhead)
        if isinstance(profiles, Mapping) or (
            not isinstance(profiles, (list, tuple)) and hasattr(profiles, "values")
        ):
            # A per-cid mapping (e.g. a population-scale ProfileMap whose
            # values() is the distribution's support) is used as-is.
            self.profiles = profiles
            return
        if not profiles:
            raise ValueError("need at least one client profile")
        ids = [p.client_id for p in profiles]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate client ids in profiles")
        self.profiles = {p.client_id: p for p in profiles}

    def _slowest(self, participants: list[int] | None) -> ClientProfile:
        profiles = (
            list(self.profiles.values())
            if participants is None
            else [self.profiles[cid] for cid in participants]
        )
        if not profiles:
            raise ValueError("no participants")
        compute = max(p.compute_factor for p in profiles)
        comm = max(p.comm_factor for p in profiles)
        # Synthetic "slowest corner" profile: a synchronous round waits
        # for the slowest computation AND the slowest transfer, which may
        # belong to different clients.
        return ClientProfile(client_id=-1, compute_factor=compute,
                             comm_factor=comm)

    def sparse_round_for(
        self,
        uplink_elements: int,
        downlink_elements: int,
        participants: list[int] | None = None,
    ) -> RoundTiming:
        """Sparse round slowed by the slowest participating client."""
        base = super().sparse_round(uplink_elements, downlink_elements)
        worst = self._slowest(participants)
        return RoundTiming(
            computation=base.computation * worst.compute_factor,
            uplink=base.uplink * worst.comm_factor,
            downlink=base.downlink * worst.comm_factor,
        )

    def dense_round_for(self, participants: list[int] | None = None
                        ) -> RoundTiming:
        base = super().dense_round()
        worst = self._slowest(participants)
        return RoundTiming(
            computation=base.computation * worst.compute_factor,
            uplink=base.uplink * worst.comm_factor,
            downlink=base.downlink * worst.comm_factor,
        )

    # The plain TimingModel surface reports the all-clients round so the
    # model stays a drop-in replacement for trainers without samplers.
    def sparse_round(self, uplink_elements: int, downlink_elements: int
                     ) -> RoundTiming:
        return self.sparse_round_for(uplink_elements, downlink_elements, None)

    def dense_round(self) -> RoundTiming:
        return self.dense_round_for(None)


class ClientSampler:
    """Seeded per-round selection of a client subset.

    ``strategy`` is "uniform" (each round draws ``count`` clients
    uniformly without replacement) or "fastest-biased" (draw probability
    inversely proportional to the client's round slowdown — the natural
    heuristic for straggler avoidance the paper's future-work remark
    points at).
    """

    STRATEGIES = ("uniform", "fastest-biased")

    def __init__(
        self,
        client_ids: list[int],
        count: int,
        strategy: str = "uniform",
        profiles: list[ClientProfile] | None = None,
        seed: int = 0,
    ) -> None:
        if not client_ids:
            raise ValueError("need at least one client")
        if not 1 <= count <= len(client_ids):
            raise ValueError(
                f"count must be in [1, {len(client_ids)}], got {count}"
            )
        if strategy not in self.STRATEGIES:
            raise ValueError(f"strategy must be one of {self.STRATEGIES}")
        if strategy == "fastest-biased" and profiles is None:
            raise ValueError("fastest-biased sampling needs client profiles")
        self.client_ids = list(client_ids)
        self.count = count
        self.strategy = strategy
        self._rng = np.random.default_rng(seed)
        if strategy == "fastest-biased":
            assert profiles is not None
            slowdown = {
                p.client_id: max(p.compute_factor, p.comm_factor)
                for p in profiles
            }
            weights = np.array(
                [1.0 / slowdown.get(cid, 1.0) for cid in self.client_ids]
            )
            self._weights = weights / weights.sum()
        else:
            self._weights = None

    def sample(self) -> list[int]:
        """Draw this round's participant ids (sorted)."""
        chosen = self._rng.choice(
            self.client_ids,
            size=self.count,
            replace=False,
            p=self._weights,
        )
        return sorted(int(c) for c in chosen)
