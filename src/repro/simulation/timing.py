"""Normalized-time accounting for one FL round.

Model (paper Section V, footnotes 3 and 5):

- Computation: all clients compute in parallel; one round costs
  ``computation_time`` (normalized to 1 in the paper).
- Communication: ``comm_time`` (β) is the time to ship the full
  D-dimensional gradient **in both directions**.  A full one-direction
  transfer therefore costs β/2.  Transfers of fewer elements scale
  proportionally; sparse transfers carry (index, value) pairs and pay a
  factor ``pair_overhead`` (2 by default — this is why the comm-matched
  FedAvg baseline communicates every ⌊D/(2k)⌋ rounds).
- Clients communicate in parallel with the server (per footnote 3, β
  covers "between all clients and the server"); the uplink time of a round
  is governed by the largest single-client payload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RoundTiming:
    """Breakdown of one round's normalized time."""

    computation: float
    uplink: float
    downlink: float

    @property
    def communication(self) -> float:
        return self.uplink + self.downlink

    @property
    def total(self) -> float:
        return self.computation + self.communication


class TimingModel:
    """Computes normalized round times for sparse and dense exchanges.

    Parameters
    ----------
    dimension:
        Flat model dimension D.
    comm_time:
        β — normalized time of a full bidirectional D-element exchange.
    computation_time:
        Normalized local-computation time per round (1 in the paper).
    pair_overhead:
        Cost multiplier for sparse (index, value) pairs relative to raw
        dense elements; the paper uses 2.
    """

    def __init__(
        self,
        dimension: int,
        comm_time: float,
        computation_time: float = 1.0,
        pair_overhead: float = 2.0,
    ) -> None:
        if dimension < 1:
            raise ValueError("dimension must be positive")
        if comm_time < 0 or computation_time < 0:
            raise ValueError("times must be nonnegative")
        if pair_overhead < 1.0:
            raise ValueError("pair_overhead below 1 would undercount pairs")
        self.dimension = dimension
        self.comm_time = comm_time
        self.computation_time = computation_time
        self.pair_overhead = pair_overhead

    # ------------------------------------------------------------------
    def _direction_time(self, elements: int, sparse: bool) -> float:
        """Time for one direction carrying ``elements`` gradient entries."""
        if elements < 0:
            raise ValueError("element count cannot be negative")
        per_full_direction = self.comm_time / 2.0
        effective = elements * (self.pair_overhead if sparse else 1.0)
        # A sparse payload never costs more than just sending the dense
        # vector (a real system would fall back to dense encoding).
        effective = min(effective, self.dimension)
        return per_full_direction * effective / self.dimension

    def sparse_round(self, uplink_elements: int, downlink_elements: int) -> RoundTiming:
        """Round using sparse pair encoding in both directions."""
        return RoundTiming(
            computation=self.computation_time,
            uplink=self._direction_time(uplink_elements, sparse=True),
            downlink=self._direction_time(downlink_elements, sparse=True),
        )

    def dense_round(self) -> RoundTiming:
        """Round exchanging the full dense gradient (always-send-all)."""
        return RoundTiming(
            computation=self.computation_time,
            uplink=self._direction_time(self.dimension, sparse=False),
            downlink=self._direction_time(self.dimension, sparse=False),
        )

    def local_round(self) -> RoundTiming:
        """Round with no communication (FedAvg between aggregations)."""
        return RoundTiming(
            computation=self.computation_time, uplink=0.0, downlink=0.0
        )

    def expected_sparse_round_time(self, k: float) -> float:
        """Expected total time of a k-element GS round for *continuous* k.

        θ_m(k) of the paper (eq. 10 context): linear interpolation between
        ⌊k⌋ and ⌈k⌉ under stochastic rounding, with k pairs both ways.
        """
        if k < 0:
            raise ValueError("k cannot be negative")
        lo = math.floor(k)
        hi = math.ceil(k)
        frac = k - lo
        t_lo = self.sparse_round(lo, lo).total
        t_hi = self.sparse_round(hi, hi).total
        return (1.0 - frac) * t_lo + frac * t_hi

    def fedavg_period(self, k: int) -> int:
        """FedAvg aggregation period with comm budget matched to k-GS.

        The paper sends the full gradient every ⌊D/(2k)⌋ rounds so that
        the *average* communication per round equals a k-element GS round
        (the 2 accounts for index transmission).  Clamped to >= 1.
        """
        if k < 1:
            raise ValueError("k must be positive")
        return max(1, self.dimension // (int(self.pair_overhead) * k))
