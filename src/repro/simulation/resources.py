"""Generalized additive resources — energy and monetary cost.

The paper (Section I and VI): "our proposed algorithm can be directly
extended to the minimization of other types of additive resources, such
as energy, monetary cost, or a sum of them."  :class:`ResourceModel`
implements that sum: each round consumes

    cost = w_time  · (normalized round time)
         + w_energy· (compute energy + per-element transfer energy)
         + w_money · (per-element transfer price + per-round fee)

and exposes the same ``sparse_round / dense_round / local_round /
expected_sparse_round_time / fedavg_period`` surface as
:class:`~repro.simulation.timing.TimingModel`, with "time" reinterpreted
as cost units — so it drops straight into the trainers and the online
algorithm minimizes the weighted resource instead of time alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.timing import RoundTiming, TimingModel


@dataclass(frozen=True)
class ResourceWeights:
    """Nonnegative weights of the combined objective; not all zero."""

    time: float = 1.0
    energy: float = 0.0
    money: float = 0.0

    def __post_init__(self) -> None:
        if min(self.time, self.energy, self.money) < 0:
            raise ValueError("weights must be nonnegative")
        if self.time == self.energy == self.money == 0:
            raise ValueError("at least one weight must be positive")


class ResourceModel:
    """Weighted time + energy + money accounting per round.

    Parameters
    ----------
    timing:
        The underlying normalized-time model (provides transfer scaling).
    weights:
        Objective weights; default is pure time (the paper's main case).
    compute_energy:
        Energy of one local computation round (all clients, in parallel —
        energy adds across clients but we track the per-round total).
    energy_per_element:
        Transfer energy per 32-bit element, each direction.
    money_per_element:
        Monetary price per transferred element (e.g. metered WAN egress).
    money_per_round:
        Fixed per-round fee (e.g. serverless invocation cost).
    """

    def __init__(
        self,
        timing: TimingModel,
        weights: ResourceWeights | None = None,
        compute_energy: float = 1.0,
        energy_per_element: float = 0.001,
        money_per_element: float = 0.0,
        money_per_round: float = 0.0,
    ) -> None:
        if min(compute_energy, energy_per_element,
               money_per_element, money_per_round) < 0:
            raise ValueError("resource rates must be nonnegative")
        self.timing = timing
        self.weights = weights if weights is not None else ResourceWeights()
        self.compute_energy = compute_energy
        self.energy_per_element = energy_per_element
        self.money_per_element = money_per_element
        self.money_per_round = money_per_round

    # -- TimingModel-compatible surface --------------------------------
    @property
    def dimension(self) -> int:
        return self.timing.dimension

    @property
    def comm_time(self) -> float:
        return self.timing.comm_time

    @property
    def pair_overhead(self) -> float:
        return self.timing.pair_overhead

    def _combine(self, base: RoundTiming, elements_total: float) -> RoundTiming:
        """Scale a time breakdown into weighted cost units."""
        w = self.weights
        energy = self.compute_energy * (base.computation > 0) + (
            self.energy_per_element * elements_total
        )
        money = self.money_per_element * elements_total + self.money_per_round
        # Attribute the non-time terms to the components proportionally:
        # energy/money of transfers to uplink+downlink, compute energy to
        # computation, the round fee to computation.
        compute_extra = w.energy * self.compute_energy * (base.computation > 0)
        compute_extra += w.money * self.money_per_round
        transfer_extra = (
            w.energy * self.energy_per_element + w.money * self.money_per_element
        ) * elements_total
        comm_total = base.uplink + base.downlink
        if comm_total > 0:
            up_share = base.uplink / comm_total
        else:
            up_share = 0.5
        del energy, money
        return RoundTiming(
            computation=w.time * base.computation + compute_extra,
            uplink=w.time * base.uplink + transfer_extra * up_share,
            downlink=w.time * base.downlink + transfer_extra * (1 - up_share),
        )

    def sparse_round(self, uplink_elements: int, downlink_elements: int
                     ) -> RoundTiming:
        base = self.timing.sparse_round(uplink_elements, downlink_elements)
        pairs = self.timing.pair_overhead * (uplink_elements + downlink_elements)
        effective = min(pairs, 2 * self.timing.dimension)
        return self._combine(base, effective)

    def dense_round(self) -> RoundTiming:
        base = self.timing.dense_round()
        return self._combine(base, 2 * self.timing.dimension)

    def local_round(self) -> RoundTiming:
        return self._combine(self.timing.local_round(), 0.0)

    def expected_sparse_round_time(self, k: float) -> float:
        import math

        lo, hi = math.floor(k), math.ceil(k)
        frac = k - lo
        t_lo = self.sparse_round(lo, lo).total
        t_hi = self.sparse_round(hi, hi).total
        return (1.0 - frac) * t_lo + frac * t_hi

    def fedavg_period(self, k: int) -> int:
        return self.timing.fedavg_period(k)
