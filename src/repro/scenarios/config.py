"""Declarative deployment-scenario configuration.

:class:`ScenarioConfig` is the JSON-serializable description of one
deployment regime — availability process, cohort size, over-selection,
deadline schedule, reweighting mode, and straggler population.  It rides
inside :class:`repro.experiments.config.ExperimentConfig.scenario` (as a
plain dict, so experiment configs stay import-light and content-
addressable for the sweep cache) and is materialized into runtime
objects by :func:`repro.scenarios.scenario.DeploymentScenario.build`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

import numpy as np

from repro.fl.async_engine import STALENESS_DISCOUNT_KINDS
from repro.fl.robust import AGGREGATOR_KINDS
from repro.scenarios.adversary import ADVERSARY_KINDS
from repro.simulation.heterogeneous import ClientProfile

AVAILABILITY_KINDS = ("always", "markov", "diurnal", "trace")
REWEIGHT_MODES = ("arrived", "cohort")
DEADLINE_POLICY_KINDS = ("fixed", "cycling", "adaptive")


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to wrap a trainer in a deployment scenario.

    Attributes
    ----------
    availability:
        One of :data:`AVAILABILITY_KINDS`.  ``markov`` uses
        ``p_drop``/``p_recover``; ``diurnal`` uses ``period``/``duty``;
        ``trace`` replays ``trace`` (a tuple of per-round id tuples,
        cycling when ``trace_cycle``).
    participants:
        Target ``m`` of aggregated uploads per round; 0 means "every
        available client" (over-selection then requires an explicit m).
    over_selection:
        ε of the "sample ``m·(1+ε)``, aggregate the first ``m`` to
        finish" rule; 0 disables over-selection.
    deadline:
        Per-round compute+uplink budget — a float, a tuple (cycling
        per-round schedule, enabling periodic straggler amnesty), or
        ``None`` (wait for everyone).  Under ``deadline_policy
        "adaptive"`` a float is the initial decision d₁ (``None`` starts
        at the interval midpoint).
    deadline_policy:
        One of :data:`DEADLINE_POLICY_KINDS`.  ``"fixed"`` follows the
        (scalar) ``deadline`` every round; ``"cycling"`` cycles a
        ``deadline`` tuple; ``"adaptive"`` learns the deadline online
        with the SignOGD dual of the learned k
        (:class:`~repro.scenarios.deadline.AdaptiveDeadlinePolicy`) over
        ``[deadline_min, deadline_max]``.  For backward compatibility a
        tuple ``deadline`` under the default ``"fixed"`` is normalized
        to ``"cycling"``.
    deadline_min / deadline_max:
        The adaptive policy's search interval.  May be omitted when
        ``deadline`` is a tuple with distinct entries — the interval is
        then derived as its (min, max) and ``deadline`` cleared (d₁
        defaults to the midpoint).
    deadline_probe:
        Whether the adaptive policy runs its per-round counterfactual
        probe (``False`` freezes the deadline at d₁ — a control).
    min_uploads:
        Floor of accepted uploads per round (the server extends the
        round rather than aggregate fewer).
    reweight:
        ``"arrived"`` renormalizes aggregation weights over the uploads
        that made it (each round's update is a proper weighted average of
        the arrivals); ``"cohort"`` keeps the sampled cohort's total
        weight in the denominator, scaling the update down when uploads
        are missing (unbiased w.r.t. the cohort).
    slow_fraction / slow_factor:
        Fraction of clients designated stragglers and their compute+comm
        slowdown; feeds both the deadline gate's finish times and the
        :class:`~repro.simulation.heterogeneous.HeterogeneousTimingModel`
        a scenario run charges time with.
    adversary:
        One of :data:`repro.scenarios.adversary.ADVERSARY_KINDS` — the
        Byzantine attack a designated fraction of clients mounts on
        their uploads (``"none"`` = everyone honest; the degenerate
        config stays bit-identical to the plain trainer).
    adversary_fraction:
        Probability each client is designated Byzantine (one seeded
        Bernoulli draw per client, fixed for the run).
    adversary_scale:
        Attack magnitude (sign-flip/scale multiplier, noise amplitude
        in upload-RMS units).
    aggregator:
        One of :data:`repro.fl.robust.AGGREGATOR_KINDS` — the server's
        aggregation rule.  ``"mean"`` is the paper's weighted mean (the
        unmodified server path); the others are Byzantine-tolerant.
    trim_fraction:
        Per-coordinate trim rate of the ``"trimmed_mean"`` aggregator.
    async_mode:
        Run the asynchronous staleness-weighted commit comparison
        (:func:`repro.experiments.scenario.run_async_comparison`) on top
        of the synchronous artifacts.  Under async commits the deadline
        family of fields is inert — stragglers arrive late (and get
        discounted by staleness) instead of being dropped; see
        :mod:`repro.fl.async_engine`.
    staleness_discount:
        One of :data:`repro.fl.async_engine.STALENESS_DISCOUNT_KINDS`
        (``"poly"``/``"const"`` shorthands are normalized) — the
        discount the async trainer applies to an s-commits-stale upload.
    commit_count:
        Arrivals the async server buffers per commit; 0 means "derive"
        (the experiment drivers use half the target cohort, so commits
        close before the stragglers land).
    seed:
        Seeds availability chains, straggler designation, and cohort
        sampling (all streams are derived, so one scenario seed pins the
        whole deployment realization).
    """

    availability: str = "markov"
    p_drop: float = 0.1
    p_recover: float = 0.5
    period: int = 24
    duty: float = 0.5
    trace: tuple[tuple[int, ...], ...] | None = None
    trace_cycle: bool = True
    participants: int = 0
    over_selection: float = 0.0
    deadline: float | tuple[float, ...] | None = None
    deadline_policy: str = "fixed"
    deadline_min: float | None = None
    deadline_max: float | None = None
    deadline_probe: bool = True
    min_uploads: int = 1
    reweight: str = "arrived"
    slow_fraction: float = 0.0
    slow_factor: float = 4.0
    adversary: str = "none"
    adversary_fraction: float = 0.0
    adversary_scale: float = 10.0
    aggregator: str = "mean"
    trim_fraction: float = 0.25
    async_mode: bool = False
    staleness_discount: str = "constant"
    commit_count: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.availability not in AVAILABILITY_KINDS:
            raise ValueError(
                f"unknown availability {self.availability!r}; expected one "
                f"of {AVAILABILITY_KINDS}"
            )
        if self.availability == "trace" and not self.trace:
            raise ValueError("trace availability needs a non-empty trace")
        if self.trace is not None:
            object.__setattr__(
                self, "trace",
                tuple(tuple(int(c) for c in entry) for entry in self.trace),
            )
        if not 0.0 <= self.p_drop <= 1.0 or not 0.0 <= self.p_recover <= 1.0:
            raise ValueError("p_drop/p_recover must be in [0, 1]")
        if self.period < 1:
            raise ValueError("period must be >= 1")
        if not 0.0 < self.duty <= 1.0:
            raise ValueError("duty must be in (0, 1]")
        if self.participants < 0:
            raise ValueError("participants must be >= 0 (0 = all available)")
        if self.over_selection < 0.0:
            raise ValueError("over_selection must be >= 0")
        if self.over_selection > 0.0 and self.participants == 0:
            raise ValueError(
                "over_selection needs an explicit participants target m"
            )
        if isinstance(self.deadline, (list, tuple)):
            object.__setattr__(
                self, "deadline", tuple(float(d) for d in self.deadline)
            )
        elif self.deadline is not None:
            object.__setattr__(self, "deadline", float(self.deadline))
        self._normalize_deadline_policy()
        if self.min_uploads < 1:
            raise ValueError("min_uploads must be >= 1")
        if self.reweight not in REWEIGHT_MODES:
            raise ValueError(
                f"unknown reweight mode {self.reweight!r}; expected one of "
                f"{REWEIGHT_MODES}"
            )
        if not 0.0 <= self.slow_fraction <= 1.0:
            raise ValueError("slow_fraction must be in [0, 1]")
        if self.slow_factor <= 0.0:
            raise ValueError("slow_factor must be positive")
        if self.adversary not in ADVERSARY_KINDS:
            raise ValueError(
                f"unknown adversary {self.adversary!r}; expected one of "
                f"{ADVERSARY_KINDS}"
            )
        if not 0.0 <= self.adversary_fraction <= 1.0:
            raise ValueError("adversary_fraction must be in [0, 1]")
        if self.adversary_fraction > 0.0 and self.adversary == "none":
            raise ValueError(
                "adversary_fraction > 0 needs an adversary kind"
            )
        if self.adversary_scale <= 0.0:
            raise ValueError("adversary_scale must be positive")
        if self.aggregator not in AGGREGATOR_KINDS:
            raise ValueError(
                f"unknown aggregator {self.aggregator!r}; expected one of "
                f"{AGGREGATOR_KINDS}"
            )
        if not 0.0 <= self.trim_fraction < 0.5:
            raise ValueError("trim_fraction must be in [0, 0.5)")
        normalized = {"poly": "polynomial", "const": "constant"}.get(
            self.staleness_discount, self.staleness_discount
        )
        if normalized not in STALENESS_DISCOUNT_KINDS:
            raise ValueError(
                f"unknown staleness_discount {self.staleness_discount!r}; "
                f"expected one of {STALENESS_DISCOUNT_KINDS}"
            )
        object.__setattr__(self, "staleness_discount", normalized)
        if self.commit_count < 0:
            raise ValueError(
                "commit_count must be >= 0 (0 = derived from the cohort)"
            )

    def _normalize_deadline_policy(self) -> None:
        """Validate/normalize the deadline_policy family of fields.

        Runs inside ``__post_init__`` (after the ``deadline`` value
        itself is normalized), so serialized configs round-trip: every
        normalization is idempotent on its own output.
        """
        if self.deadline_policy not in DEADLINE_POLICY_KINDS:
            raise ValueError(
                f"unknown deadline_policy {self.deadline_policy!r}; "
                f"expected one of {DEADLINE_POLICY_KINDS}"
            )
        if self.deadline_policy == "fixed" and isinstance(self.deadline, tuple):
            if len(self.deadline) == 1:
                object.__setattr__(self, "deadline", self.deadline[0])
            else:
                # Legacy configs predate the field: a schedule means cycling.
                object.__setattr__(self, "deadline_policy", "cycling")
        if self.deadline_policy == "cycling" and not isinstance(
            self.deadline, tuple
        ):
            raise ValueError(
                "cycling deadline_policy needs a deadline sequence"
            )
        if self.deadline_policy != "adaptive":
            if self.deadline_min is not None or self.deadline_max is not None:
                raise ValueError(
                    "deadline_min/deadline_max only apply to the adaptive "
                    "deadline_policy"
                )
            return
        dmin, dmax = self.deadline_min, self.deadline_max
        if isinstance(self.deadline, tuple):
            if dmin is None:
                dmin = min(self.deadline)
            if dmax is None:
                dmax = max(self.deadline)
            # The schedule only seeded the interval; d1 = its midpoint.
            object.__setattr__(self, "deadline", None)
        if dmin is None or dmax is None:
            raise ValueError(
                "adaptive deadline_policy needs deadline_min/deadline_max "
                "(or a deadline schedule to derive them from)"
            )
        dmin, dmax = float(dmin), float(dmax)
        if not 0.0 < dmin < dmax:
            raise ValueError(
                f"need 0 < deadline_min < deadline_max, got [{dmin}, {dmax}]"
            )
        if self.deadline is not None and not dmin <= self.deadline <= dmax:
            raise ValueError(
                f"initial deadline {self.deadline} outside "
                f"[{dmin}, {dmax}]"
            )
        object.__setattr__(self, "deadline_min", dmin)
        object.__setattr__(self, "deadline_max", dmax)

    def with_overrides(self, **kwargs) -> "ScenarioConfig":
        """Copy with fields replaced (scenario configs are immutable)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Serialization (ExperimentConfig.scenario carries the dict form)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready mapping; round-trips via :meth:`from_dict`."""
        data = asdict(self)
        if self.trace is not None:
            data["trace"] = [list(entry) for entry in self.trace]
        if isinstance(self.deadline, tuple):
            data["deadline"] = list(self.deadline)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioConfig":
        data = dict(data)
        if data.get("trace") is not None:
            data["trace"] = tuple(tuple(e) for e in data["trace"])
        if isinstance(data.get("deadline"), list):
            data["deadline"] = tuple(data["deadline"])
        return cls(**data)

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def default_churn(cls) -> "ScenarioConfig":
        """The reference availability+deadline regime of the scenario CLI.

        Markov churn; a quarter of the population stragglers at 4×; a
        cycling deadline schedule of three tight rounds (2.5× the unit
        computation time — fast clients always make it, stragglers never
        do) followed by one amnesty round at 9.0 in which slow clients
        flush the residuals accumulated while dropped.
        """
        return cls(
            availability="markov",
            p_drop=0.15,
            p_recover=0.6,
            deadline=(2.5, 2.5, 2.5, 9.0),
            deadline_policy="cycling",
            slow_fraction=0.25,
            slow_factor=4.0,
        )

    # ------------------------------------------------------------------
    def build_profiles(self, client_ids: list[int]) -> list[ClientProfile]:
        """Seeded straggler designation for this scenario's population."""
        ids = sorted(int(c) for c in client_ids)
        slow = set()
        count = int(round(self.slow_fraction * len(ids)))
        if count:
            rng = np.random.default_rng((self.seed, 0x51C0))
            slow = set(
                int(c)
                for c in rng.choice(ids, size=count, replace=False)
            )
        return [
            ClientProfile(
                client_id=cid,
                compute_factor=self.slow_factor if cid in slow else 1.0,
                comm_factor=self.slow_factor if cid in slow else 1.0,
            )
            for cid in ids
        ]
