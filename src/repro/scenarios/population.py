"""Population-scale deployment scenarios: O(cohort) rounds at any N.

:class:`~repro.scenarios.scenario.ScenarioSampler` asks its availability
process for the *full* online set each round — O(population).  The
population-scale path inverts the query: draw candidate clients from
``[0, N)`` and ask the :class:`~repro.simulation.population.
PopulationModel` whether each one is online (a pure per-cid law), keeping
the first ``cohort_size`` distinct online hits.  Per-round cost is
O(cohort), independent of N, and only ever-queried clients hold any
state.

:func:`build_population_scenario` is the population analogue of
:meth:`~repro.scenarios.scenario.DeploymentScenario.build`: same
:class:`~repro.scenarios.scenario.ScenarioHooks` (the deadline gate is
already O(cohort) — it only sees the round's uploads), same stats, but
profiles come from the model's per-cid :class:`~repro.simulation.
population.ProfileMap` instead of an enumerated list.
"""

from __future__ import annotations

import numpy as np

from repro.fl.robust import build_aggregator
from repro.scenarios.adversary import build_adversary
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.deadline import DeadlineRoundPolicy
from repro.scenarios.scenario import (
    DeploymentScenario,
    ScenarioHooks,
    ScenarioStats,
    build_deadline_schedule,
)
from repro.simulation.population import PopulationModel
from repro.simulation.timing import TimingModel

#: per-round cohort-draw stream tag (population analogue of the
#: ScenarioSampler's 0x5CE2 stream, keyed per round instead of advancing)
COHORT_TAG = 0x5CE2


class PopulationSampler:
    """Seeded O(cohort) cohort sampler over a virtual population.

    Each round draws its own RNG stream ``(seed, COHORT_TAG, round)`` and
    rejection-samples candidate ids until ``cohort_size`` distinct online
    clients are found.  The candidate sequence is a pure function of
    ``(seed, round)`` and the availability law is a pure function of
    ``(seed, cid, round)``, so the cohort is deterministic regardless of
    execution backend — the same contract the list-based sampler keeps.

    When availability is so low that ``max_attempts`` candidate batches
    cannot fill the cohort, the round runs with the online clients found
    (never empty: offline candidates seen along the way fill in, mirroring
    the list-based sampler's "no one is online" full-population fallback).
    """

    def __init__(
        self,
        model: PopulationModel,
        count: int,
        over_selection: float = 0.0,
        seed: int = 0,
        stats: ScenarioStats | None = None,
        max_attempts: int = 64,
    ) -> None:
        if count < 1:
            raise ValueError(
                "population sampling needs an explicit cohort size >= 1 "
                "(count=0 'all available clients' is O(population))"
            )
        if over_selection < 0.0:
            raise ValueError("over_selection must be >= 0")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.model = model
        self.count = count
        self.over_selection = over_selection
        self.seed = seed
        self.stats = stats
        self.max_attempts = max_attempts
        self._round = 0

    @property
    def cohort_size(self) -> int:
        """Clients sampled per round before the deadline gate."""
        return int(np.ceil(self.count * (1.0 + self.over_selection)))

    def sample(self) -> list[int]:
        """Draw the next round's cohort (sorted ids), O(cohort)."""
        self._round += 1
        size = min(self.cohort_size, self.model.population)
        rng = np.random.default_rng((self.seed, COHORT_TAG, self._round))
        online: list[int] = []
        offline: list[int] = []
        seen: set[int] = set()
        for _ in range(self.max_attempts):
            batch = rng.integers(
                0, self.model.population, size=max(2 * size, 8)
            )
            for cid in batch:
                cid = int(cid)
                if cid in seen:
                    continue
                seen.add(cid)
                if self.model.is_online(cid, self._round):
                    online.append(cid)
                    if len(online) >= size:
                        break
                else:
                    offline.append(cid)
            if len(online) >= size:
                break
        cohort = online[:size]
        if len(cohort) < size:
            # Deep outage: fill from the offline candidates in draw order
            # (the population analogue of the list sampler's fallback to
            # the full population when nobody is online).
            cohort = cohort + offline[: size - len(cohort)]
        if self.stats is not None:
            self.stats.record_available(len(online))
        return sorted(cohort)


def build_population_scenario(
    config: ScenarioConfig,
    population: int,
    timing: TimingModel,
) -> DeploymentScenario:
    """Materialize ``config`` over a virtual population of size N.

    The population analogue of :meth:`DeploymentScenario.build`: requires
    an explicit ``participants`` target (cohort size) and a population-
    scale availability law; the returned scenario plugs into trainers
    exactly like a list-based one (``.sampler`` / ``.hooks``).
    """
    if config.participants < 1:
        raise ValueError(
            "population scenarios need an explicit participants target "
            "(participants=0 means 'all available', which is O(population))"
        )
    model = PopulationModel.from_scenario_config(config, population)
    stats = ScenarioStats()
    sampler = PopulationSampler(
        model,
        count=config.participants,
        over_selection=config.over_selection,
        seed=config.seed,
        stats=stats,
    )
    policy = DeadlineRoundPolicy(
        build_deadline_schedule(config),
        over_selection=config.over_selection,
        min_uploads=config.min_uploads,
    )
    hooks = ScenarioHooks(
        policy,
        timing,
        profiles=model.profiles,
        target_uploads=config.participants,
        reweight=config.reweight,
        stats=stats,
        # The adversary's designation law is per-cid, so it works at any
        # N without enumerating the population.
        adversary=build_adversary(config),
    )
    aggregator = build_aggregator(
        config.aggregator, trim_fraction=config.trim_fraction
    )
    return DeploymentScenario(
        config, sampler, hooks, stats, model.profiles, aggregator
    )
