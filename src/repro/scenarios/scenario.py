"""Deployment-scenario runtime: sampler + round hooks over any engine.

:class:`DeploymentScenario` materializes a :class:`~repro.scenarios.
config.ScenarioConfig` into the two objects the round engine already
knows how to consume:

- :class:`ScenarioSampler` — the engine's ``sampler`` slot: each round it
  asks the availability process who is online and draws the cohort
  (``m·(1+ε)`` clients under over-selection) from that set only.
- :class:`ScenarioHooks` — a :class:`repro.fl.engine.RoundHooks` that
  gates the round's uploads through the :class:`~repro.scenarios.
  deadline.DeadlineRoundPolicy`, drops the late ones *before* selection
  and aggregation, and overrides the round's timing charge with the
  deadline-bounded close.

Dropped-upload semantics (the part that makes the paper's sparsifiers
shine under churn): a dropped client already accumulated its gradient
into its residual during the local step, it is simply excluded from the
selection/aggregation/reset phases — so nothing is reset, the unsent
information stays in the residual, and FAB/top-k selection recovers it
the next time the client makes a deadline.  The server reweights the
partial aggregate over the arrivals (or over the full cohort, see
``ScenarioConfig.reweight``).

Everything here runs in the parent process on state the engine already
owns, so scenario runs are bit-identical across the serial, vectorized
and sharded execution backends (enforced by ``tests/test_scenarios.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fl.engine import RoundContext, RoundHooks
from repro.fl.robust import RobustAggregator, build_aggregator
from repro.scenarios.adversary import AdversaryModel, build_adversary
from repro.scenarios.availability import (
    AlwaysAvailable,
    ClientAvailability,
    DiurnalAvailability,
    MarkovAvailability,
    TraceAvailability,
)
from repro.scenarios.config import ScenarioConfig
from repro.online.interval import SearchInterval
from repro.scenarios.deadline import (
    AdaptiveDeadlinePolicy,
    CyclingDeadlinePolicy,
    DeadlineObservation,
    DeadlinePolicy,
    DeadlineRoundPolicy,
    FixedDeadlinePolicy,
)
from repro.simulation.heterogeneous import ClientProfile
from repro.simulation.timing import RoundTiming, TimingModel


@dataclass
class RoundDelivery:
    """What one round actually delivered."""

    round_index: int
    available: int
    cohort: int
    arrived: int
    dropped_ids: tuple[int, ...]
    close_time: float
    deadline: float | None


@dataclass
class ScenarioStats:
    """Per-round delivery log plus cumulative drop accounting."""

    rounds: list[RoundDelivery] = field(default_factory=list)
    #: client id -> number of rounds whose upload was deadline-dropped
    drops_by_client: dict[int, int] = field(default_factory=dict)
    #: client id -> number of rounds whose upload was Byzantine-corrupted
    corrupted_by_client: dict[int, int] = field(default_factory=dict)
    #: client id -> number of rounds a robust aggregator flagged it
    flagged_by_client: dict[int, int] = field(default_factory=dict)
    _pending_available: int | None = None

    def record_available(self, count: int) -> None:
        self._pending_available = count

    def record_corrupted(self, client_ids: list[int]) -> None:
        for cid in client_ids:
            self.corrupted_by_client[cid] = (
                self.corrupted_by_client.get(cid, 0) + 1
            )

    def record_flagged(self, client_ids: list[int]) -> None:
        for cid in client_ids:
            self.flagged_by_client[cid] = (
                self.flagged_by_client.get(cid, 0) + 1
            )

    def record_round(
        self,
        round_index: int,
        cohort: int,
        arrived: int,
        dropped_ids: tuple[int, ...],
        close_time: float,
        deadline: float | None,
    ) -> None:
        self.rounds.append(RoundDelivery(
            round_index=round_index,
            available=(
                self._pending_available
                if self._pending_available is not None else cohort
            ),
            cohort=cohort,
            arrived=arrived,
            dropped_ids=dropped_ids,
            close_time=close_time,
            deadline=deadline,
        ))
        self._pending_available = None
        for cid in dropped_ids:
            self.drops_by_client[cid] = self.drops_by_client.get(cid, 0) + 1

    @property
    def total_dropped(self) -> int:
        return sum(len(r.dropped_ids) for r in self.rounds)

    @property
    def total_arrived(self) -> int:
        return sum(r.arrived for r in self.rounds)

    def to_dict(self) -> dict:
        """JSON-ready summary (the scenario driver's artifact notes)."""
        return {
            "rounds": len(self.rounds),
            "total_arrived": self.total_arrived,
            "total_dropped": self.total_dropped,
            "drops_by_client": {
                str(cid): n for cid, n in sorted(self.drops_by_client.items())
            },
            "corrupted_by_client": {
                str(cid): n
                for cid, n in sorted(self.corrupted_by_client.items())
            },
            "flagged_by_client": {
                str(cid): n
                for cid, n in sorted(self.flagged_by_client.items())
            },
            "mean_available": (
                float(np.mean([r.available for r in self.rounds]))
                if self.rounds else 0.0
            ),
        }


class ScenarioSampler:
    """Availability-gated, seeded cohort sampler (the engine's ``sampler``).

    Each call advances one round: query the availability process, then
    draw the cohort — ``min(cohort_size, |available|)`` clients without
    replacement.  With ``count == 0`` every available client participates
    and no RNG is consumed, so the degenerate always-available scenario
    reproduces the plain trainer's participant lists exactly.  When *no*
    client is online the round falls back to the full population (the
    server waits the gap out; a finer-grained idle-round model would need
    engine support and buys no insight at this abstraction level).
    """

    def __init__(
        self,
        availability: ClientAvailability,
        count: int = 0,
        over_selection: float = 0.0,
        seed: int = 0,
        stats: ScenarioStats | None = None,
    ) -> None:
        if count < 0 or count > len(availability.client_ids):
            raise ValueError(
                f"count must be in [0, {len(availability.client_ids)}], "
                f"got {count}"
            )
        self.availability = availability
        self.count = count
        self.over_selection = over_selection
        self.stats = stats
        self._rng = np.random.default_rng((seed, 0x5CE2))
        self._round = 0

    @property
    def cohort_size(self) -> int:
        """Clients sampled per round before the deadline gate (0 = all)."""
        if self.count == 0:
            return 0
        return int(np.ceil(self.count * (1.0 + self.over_selection)))

    def sample(self) -> list[int]:
        """Draw the next round's cohort (sorted ids)."""
        self._round += 1
        available = self.availability.available_ids(self._round)
        if self.stats is not None:
            self.stats.record_available(len(available))
        if not available:
            available = list(self.availability.client_ids)
        size = self.cohort_size
        if size == 0 or size >= len(available):
            return list(available)
        chosen = self._rng.choice(available, size=size, replace=False)
        return sorted(int(c) for c in chosen)


class _PendingProbe:
    """One round's counterfactual deadline-probe state (parent-owned)."""

    def __init__(
        self,
        probe_deadline: float,
        client_ids: frozenset[int],
        close_time: float,
    ) -> None:
        self.probe_deadline = probe_deadline
        #: clients whose uploads would have arrived by the probe
        #: deadline — always a subset of the actually-accepted set (both
        #: are prefixes of the same deterministic service order), so the
        #: probe aggregation can draw from the round's *post-preprocess*
        #: uploads and stay consistent with the protocol the server runs.
        self.client_ids = client_ids
        self.close_time = close_time
        self.w_probe: np.ndarray | None = None


class ScenarioHooks(RoundHooks):
    """Deadline gate + partial-aggregation reweighting + timing override.

    Runs entirely in the parent process on the uploads the execution
    backend produced, after residual accumulation and client selection —
    so it composes with any backend and any sparsifier.  Per call order
    (see :class:`repro.fl.engine.RoundHooks`):

    - ``after_local_steps``: compute per-upload finish times, apply the
      deadline verdict, filter ``ctx.uploads``/``ctx.participants`` down
      to the arrivals (late clients keep their residuals untouched —
      that is the recovery mechanism), and set the aggregation weight
      for cohort-mode reweighting.
    - ``round_timing``: replace the straggler-tail charge with the
      deadline-bounded close plus the downlink broadcast.
    - ``after_update``: for non-accumulating sparsifiers
      (``discards_residual``), dropped clients discard their residual
      too — the scheme's semantics, not the scenario's.

    Under an :class:`~repro.scenarios.deadline.AdaptiveDeadlinePolicy`
    the hooks additionally run the free counterfactual probe (the dual
    of Fig. 3's k-probe, but with zero extra communication — arrival
    times are already server knowledge):

    - ``after_local_steps`` replays the gate at the probe deadline d' on
      the same pre-gate uploads — and, when the round actually dropped
      uploads (the tight regime), a second time at d'' > d
      (``probe_deadline_up``), keeping the raw uploads the d''-gate
      would have admitted but the real round cut;
    - ``after_aggregate`` derives the d'-round's weights w'(m) by
      re-aggregating the probe arrivals over the *actual* round's
      selection (the stateless server makes this a pure computation);
      the d''-round's w''(m) additionally folds in the cut uploads,
      preprocessed counterfactually (:meth:`repro.sparsify.base.
      Sparsifier.preprocess_uploads_counterfactual` — same degradation,
      no RNG stream advanced);
    - ``after_update`` evaluates L(w(m−1)) / L(w(m)) / L(w'(m)) (and
      L(w''(m)) when the upward probe ran) on the engine's
      deterministic evaluation pool;
    - ``observe`` feeds the :class:`~repro.scenarios.deadline.
      DeadlineObservation` back so SignOGD can step the deadline from
      the combined sign estimate.

    Everything is parent-state arithmetic on the engine's uploads and
    weights, so adaptive runs stay bit-identical across backends.
    """

    def __init__(
        self,
        policy: DeadlineRoundPolicy,
        timing: TimingModel,
        profiles: dict[int, ClientProfile] | None = None,
        target_uploads: int | None = None,
        reweight: str = "arrived",
        stats: ScenarioStats | None = None,
        adversary: AdversaryModel | None = None,
    ) -> None:
        self.policy = policy
        self.timing = timing
        self.profiles = profiles or {}
        self.target_uploads = target_uploads
        self.reweight = reweight
        self.stats = stats if stats is not None else ScenarioStats()
        #: Byzantine upload corruption (None = everyone honest).  The
        #: seam mirrors the dropped-upload design: ``after_local_steps``
        #: swaps the designated clients' *wire payloads* for poisoned
        #: ones (same index support, pure in ``(seed, cid, round)``),
        #: and ``after_aggregate`` restores the honest payloads before
        #: the engine's residual reset — so client learning state
        #: evolves exactly as if the honest upload had been sent, and
        #: only the server-visible transport is attacked.
        self.adversary = adversary
        #: client id -> honest upload, while the wire carries poison
        self._honest_uploads: dict = {}
        self._dropped_clients: list = []
        self._close_time: float | None = None
        self._worst_comm: float = 1.0
        self._probe: _PendingProbe | None = None
        self._probe_up: _PendingProbe | None = None
        #: raw (pre-preprocess) uploads only the d''-gate admits
        self._probe_up_raw: list = []
        self._played_deadline: float | None = None
        #: L(w(m-1)) carried over from the previous round's L(w(m))
        self._loss_prev: float | None = None
        self._pending_losses: (
            tuple[float, float, float | None, float | None] | None
        ) = None
        #: clients with a past deadline drop, pending a recovery event
        #: (tracked only while telemetry is enabled — observation only)
        self._ever_dropped: set = set()

    # ------------------------------------------------------------------
    def after_local_steps(self, ctx: RoundContext) -> None:
        self._dropped_clients = []
        self._close_time = None
        self._probe = None
        self._probe_up = None
        self._probe_up_raw = []
        self._played_deadline = None
        self._pending_losses = None
        self._honest_uploads = {}
        if self.adversary is not None:
            # Corrupt before the deadline gate so everything downstream
            # (finish times, probes, preprocessing, aggregation) sees
            # exactly what the server would see on the wire.  Support is
            # unchanged — only values are poisoned — so timing and the
            # backends' fast-path preconditions are unaffected.
            corrupted_ids = []
            for i, up in enumerate(ctx.uploads):
                if self.adversary.is_adversary(up.client_id):
                    self._honest_uploads[up.client_id] = up
                    ctx.uploads[i] = self.adversary.corrupt_upload(
                        up, ctx.round_index
                    )
                    corrupted_ids.append(up.client_id)
            if corrupted_ids and self.stats is not None:
                self.stats.record_corrupted(corrupted_ids)
        cohort = list(ctx.participants)
        self._worst_comm = max(
            (
                self.profiles[c.client_id].comm_factor
                for c in cohort
                if c.client_id in self.profiles
            ),
            default=1.0,
        )
        if self.reweight == "cohort":
            ctx.aggregation_weight = float(
                sum(up.sample_count for up in ctx.uploads)
            )
        if not self.policy.applies(self.target_uploads):
            if self.stats is not None:
                self.stats.record_round(
                    ctx.round_index, len(cohort), len(cohort), (),
                    close_time=float("nan"), deadline=None,
                )
            return
        self._played_deadline = self.policy.deadline_for(ctx.round_index)
        verdict = self.policy.admit(
            ctx.round_index,
            ctx.uploads,
            self.timing,
            self.profiles,
            target_uploads=self.target_uploads,
        )
        if self.policy.schedule.adaptive:
            probe_deadline = self.policy.schedule.probe_deadline(
                ctx.round_index
            )
            if probe_deadline is not None:
                # Counterfactual replay of the gate at d' on the same
                # pre-gate uploads — free: the arrival times are known
                # (and already computed by the actual verdict).
                probe_verdict = self.policy.admit(
                    ctx.round_index,
                    ctx.uploads,
                    self.timing,
                    self.profiles,
                    target_uploads=self.target_uploads,
                    deadline_override=probe_deadline,
                    finish_times=verdict.finish_times,
                )
                self._probe = _PendingProbe(
                    probe_deadline=probe_deadline,
                    client_ids=frozenset(
                        ctx.uploads[i].client_id
                        for i in probe_verdict.accepted
                    ),
                    close_time=probe_verdict.close_time,
                )
            if verdict.dropped_ids:
                # Tight regime: the deadline (or the over-selection cap)
                # cut uploads, so also replay the gate *looser* at
                # d'' > d — the late arrival times are already known, so
                # this probe is as free as the downward one.  Rounds
                # that dropped nothing skip it: the d''-gate would admit
                # the identical upload set and estimate nothing.
                probe_up = self.policy.schedule.probe_deadline_up(
                    ctx.round_index
                )
                if probe_up is not None:
                    up_verdict = self.policy.admit(
                        ctx.round_index,
                        ctx.uploads,
                        self.timing,
                        self.profiles,
                        target_uploads=self.target_uploads,
                        deadline_override=probe_up,
                        finish_times=verdict.finish_times,
                    )
                    actually_accepted = set(verdict.accepted)
                    self._probe_up = _PendingProbe(
                        probe_deadline=probe_up,
                        client_ids=frozenset(
                            ctx.uploads[i].client_id
                            for i in up_verdict.accepted
                        ),
                        close_time=up_verdict.close_time,
                    )
                    # Uploads only the looser gate admits are about to
                    # be filtered out of ctx (and never preprocessed);
                    # keep the raw copies for the counterfactual
                    # aggregation.
                    self._probe_up_raw = [
                        ctx.uploads[i]
                        for i in up_verdict.accepted
                        if i not in actually_accepted
                    ]
        accepted = set(verdict.accepted)
        self._dropped_clients = [
            client
            for i, client in enumerate(ctx.participants)
            if i not in accepted
        ]
        for client in self._dropped_clients:
            # The unsent residual stays put; forgetting the upload keeps a
            # later (mistaken) reset from clearing coordinates the server
            # never received.
            client.drop_upload()
        ctx.uploads = [ctx.uploads[i] for i in verdict.accepted]
        ctx.participants = [ctx.participants[i] for i in verdict.accepted]
        if ctx.participant_ids is not None:
            ctx.participant_ids = [
                c.client_id for c in ctx.participants
            ]
        ctx.dropped_ids = verdict.dropped_ids
        self._close_time = verdict.close_time
        tel = ctx.engine.telemetry
        if tel.enabled:
            recovered = [up.client_id for up in ctx.uploads
                         if up.client_id in self._ever_dropped]
            if recovered:
                tel.event("recovery", round=ctx.round_index,
                          client_ids=recovered)
                self._ever_dropped.difference_update(recovered)
            if verdict.dropped_ids:
                tel.event("drop", round=ctx.round_index,
                          client_ids=list(verdict.dropped_ids),
                          deadline=self._played_deadline,
                          close_time=verdict.close_time)
                self._ever_dropped.update(verdict.dropped_ids)
        if self.stats is not None:
            self.stats.record_round(
                ctx.round_index, len(cohort), len(ctx.uploads),
                verdict.dropped_ids, verdict.close_time,
                self.policy.deadline_for(ctx.round_index),
            )

    def after_aggregate(self, ctx: RoundContext) -> None:
        # ctx.uploads here is the accepted, *preprocessed* upload list
        # (quantization etc. already applied) — the probes must see the
        # same degraded values the server actually aggregates.  The
        # upward probe additionally re-admits uploads the real gate cut;
        # those never went through preprocessing, so they get the
        # counterfactual (state-preserving) variant.
        self._derive_probe_weights(ctx, self._probe, extra_raw=None)
        self._derive_probe_weights(
            ctx, self._probe_up, extra_raw=self._probe_up_raw
        )
        if self._honest_uploads:
            # The server has consumed the poisoned payloads; restore the
            # honest ones before the engine's residual reset, so each
            # adversarial client's error-feedback bookkeeping subtracts
            # what its residual actually holds (the honest values) —
            # mirroring how dropped uploads keep residual state honest.
            ctx.uploads = [
                self._honest_uploads.get(up.client_id, up)
                for up in ctx.uploads
            ]
            self._honest_uploads = {}
        aggregator = ctx.engine.server.aggregator
        if aggregator is not None and aggregator.last_flags:
            flagged_ids = [cid for cid, _ in aggregator.last_flags]
            if self.stats is not None:
                self.stats.record_flagged(flagged_ids)
            tel = ctx.engine.telemetry
            if tel.enabled:
                tel.event(
                    "flagged",
                    round=ctx.round_index,
                    client_ids=flagged_ids,
                    detector=aggregator.name,
                    scores=[score for _, score in aggregator.last_flags],
                )

    @staticmethod
    def _derive_probe_weights(
        ctx: RoundContext,
        probe: "_PendingProbe | None",
        extra_raw: list | None,
    ) -> None:
        if probe is None:
            return
        probe_uploads = [
            up for up in ctx.uploads
            if up.client_id in probe.client_ids
        ]
        if extra_raw:
            sparsifier = ctx.engine.sparsifier
            probe_uploads = probe_uploads + (
                sparsifier.preprocess_uploads_counterfactual(extra_raw)
            )
        if not probe_uploads:
            return
        # The counterfactual round's update, derived from the actual
        # round's result: same selection J, aggregated over only the
        # probe arrivals (the stateless server makes this a pure
        # recomputation) — the dual of the adaptive-k trainer's
        # server-side k'-GS derivation, and like that derivation it
        # applies the plain SGD rule even when a server-side optimizer
        # is configured (a stateful optimizer has no side-effect-free
        # counterfactual step; the probe loss is an estimate either
        # way).
        # ``commit=False``: a counterfactual aggregation must not advance
        # a robust aggregator's reputation state or overwrite the flags
        # the real round recorded.
        downlink = ctx.engine.server.aggregate(
            probe_uploads, ctx.selection,
            total_weight=ctx.aggregation_weight,
            commit=False,
        )
        payload = downlink.payload
        w_probe = ctx.w_prev.copy()
        w_probe[payload.indices] -= (
            ctx.engine.learning_rate * payload.values
        )
        probe.w_probe = w_probe

    def round_timing(self, ctx: RoundContext) -> RoundTiming | None:
        if self._close_time is None:
            return None
        # The downlink broadcast reaches the whole cohort (dropped clients
        # still apply the synchronized update), so it is paced by the
        # cohort's slowest link.  Base-class transfer time on purpose: a
        # HeterogeneousTimingModel's sparse_round already applies its
        # worst-of-all-clients factor, which would double-count here.
        downlink = (
            TimingModel.sparse_round(
                self.timing, 0, ctx.selection.downlink_element_count
            ).downlink
            * self._worst_comm
        )
        computation = self.timing.computation_time
        return RoundTiming(
            computation=computation,
            uplink=max(0.0, self._close_time - computation),
            downlink=downlink,
        )

    def after_update(self, ctx: RoundContext) -> None:
        if (
            ctx.engine.sparsifier is not None
            and ctx.engine.sparsifier.discards_residual
        ):
            for client in self._dropped_clients:
                client.reset_all()
        if self._probe is None and self._probe_up is None:
            return
        engine = ctx.engine
        if self._loss_prev is None:
            self._loss_prev = self._loss_at(engine, ctx.w_prev, ctx.w_new)
        # Model already holds w(m); evaluate in place, and hand the
        # value to the engine so eval-cadence rounds don't re-run the
        # identical deterministic forward pass.
        loss_now = float(
            engine.model.loss_value(engine._eval_x, engine._eval_y)
        )
        ctx.eval_loss = loss_now
        loss_probe = None
        if self._probe is not None and self._probe.w_probe is not None:
            loss_probe = self._loss_at(
                engine, self._probe.w_probe, ctx.w_new
            )
        loss_probe_up = None
        if self._probe_up is not None and self._probe_up.w_probe is not None:
            loss_probe_up = self._loss_at(
                engine, self._probe_up.w_probe, ctx.w_new
            )
        self._pending_losses = (
            self._loss_prev, loss_now, loss_probe, loss_probe_up
        )
        # w(m) is next round's w(m-1): carry the evaluation over.
        self._loss_prev = loss_now

    @staticmethod
    def _loss_at(engine, weights: np.ndarray, restore: np.ndarray) -> float:
        """Evaluation-pool loss at ``weights``; model restored exactly."""
        engine.model.set_weights(weights)
        try:
            return float(
                engine.model.loss_value(engine._eval_x, engine._eval_y)
            )
        finally:
            engine.model.set_weights(restore)

    def observe(self, ctx: RoundContext) -> None:
        schedule = self.policy.schedule
        if not schedule.adaptive or self._played_deadline is None:
            return
        probe = self._probe
        probe_up = self._probe_up
        if self._pending_losses is not None:
            loss_prev, loss_now, loss_probe, loss_probe_up = (
                self._pending_losses
            )
        else:
            loss_prev = loss_now = float("nan")
            loss_probe = loss_probe_up = None
        probe_round_time = None
        if probe is not None and self._close_time is not None:
            # Only the uplink-phase close differs between d and d'; the
            # computation/downlink/extra charges carry over unchanged.
            probe_round_time = (
                ctx.round_time - self._close_time + probe.close_time
            )
        probe_round_time_up = None
        if probe_up is not None and self._close_time is not None:
            probe_round_time_up = (
                ctx.round_time - self._close_time + probe_up.close_time
            )
        tel = ctx.engine.telemetry
        if tel.enabled:
            tel.event(
                "deadline",
                round=ctx.round_index,
                deadline=self._played_deadline,
                probe_deadline=(
                    probe.probe_deadline if probe is not None else None
                ),
                probe_deadline_up=(
                    probe_up.probe_deadline if probe_up is not None else None
                ),
                arrived=len(ctx.uploads),
                dropped=len(ctx.dropped_ids),
                round_time=ctx.round_time,
            )
        schedule.observe(DeadlineObservation(
            deadline=self._played_deadline,
            round_time=ctx.round_time,
            loss_prev=loss_prev,
            loss_now=loss_now,
            loss_probe=loss_probe,
            probe_deadline=(
                probe.probe_deadline if probe is not None else None
            ),
            probe_round_time=probe_round_time,
            loss_probe_up=loss_probe_up,
            probe_deadline_up=(
                probe_up.probe_deadline if probe_up is not None else None
            ),
            probe_round_time_up=probe_round_time_up,
            arrived=len(ctx.uploads),
            dropped=len(ctx.dropped_ids),
        ))


class DeploymentScenario:
    """One materialized deployment regime: sampler + hooks + shared stats.

    A scenario instance holds mutable state (availability chains, the
    sampling RNG, the delivery log), so — like the sharded backend's
    federation convention — every trainer gets a *freshly built*
    scenario; never share one across runs.
    """

    def __init__(
        self,
        config: ScenarioConfig,
        sampler: ScenarioSampler,
        hooks: ScenarioHooks,
        stats: ScenarioStats,
        profiles: list[ClientProfile],
        aggregator: RobustAggregator | None = None,
    ) -> None:
        self.config = config
        self.sampler = sampler
        self.hooks = hooks
        self.stats = stats
        self.profiles = profiles
        #: optional RobustAggregator the trainer threads into its engine
        #: (None = the paper's weighted mean, the unmodified server path)
        self.aggregator = aggregator

    @classmethod
    def build(
        cls,
        config: ScenarioConfig,
        client_ids: list[int],
        timing: TimingModel,
        profiles: list[ClientProfile] | None = None,
    ) -> "DeploymentScenario":
        """Materialize ``config`` for a concrete population and timing.

        ``profiles`` defaults to the config's seeded straggler
        designation (:meth:`ScenarioConfig.build_profiles`); pass an
        explicit list to reuse the profiles a
        :class:`~repro.simulation.heterogeneous.HeterogeneousTimingModel`
        was built with.
        """
        if profiles is None:
            profiles = config.build_profiles(client_ids)
        stats = ScenarioStats()
        availability = build_availability(config, client_ids)
        sampler = ScenarioSampler(
            availability,
            count=config.participants,
            over_selection=config.over_selection,
            seed=config.seed,
            stats=stats,
        )
        policy = DeadlineRoundPolicy(
            build_deadline_schedule(config),
            over_selection=config.over_selection,
            min_uploads=config.min_uploads,
        )
        hooks = ScenarioHooks(
            policy,
            timing,
            profiles={p.client_id: p for p in profiles},
            target_uploads=config.participants or None,
            reweight=config.reweight,
            stats=stats,
            adversary=build_adversary(config),
        )
        aggregator = build_aggregator(
            config.aggregator, trim_fraction=config.trim_fraction
        )
        return cls(config, sampler, hooks, stats, profiles, aggregator)


def build_deadline_schedule(config: ScenarioConfig) -> DeadlinePolicy:
    """The deadline policy a :class:`ScenarioConfig` names.

    ``ScenarioConfig.__post_init__`` already normalized the field family
    (tuple ⇒ cycling, adaptive interval derived/validated), so this is a
    straight dispatch.  Adaptive policies are stateful — like the rest
    of a :class:`DeploymentScenario`, build a fresh one per run.
    """
    if config.deadline_policy == "adaptive":
        assert config.deadline_min is not None
        assert config.deadline_max is not None
        return AdaptiveDeadlinePolicy(
            SearchInterval(config.deadline_min, config.deadline_max),
            d1=config.deadline,
            probe=config.deadline_probe,
        )
    if config.deadline_policy == "cycling":
        return CyclingDeadlinePolicy(config.deadline)
    return FixedDeadlinePolicy(config.deadline)


def build_availability(
    config: ScenarioConfig, client_ids: list[int]
) -> ClientAvailability:
    """The availability process a :class:`ScenarioConfig` names."""
    if config.availability == "always":
        return AlwaysAvailable(client_ids)
    if config.availability == "markov":
        return MarkovAvailability(
            client_ids,
            p_drop=config.p_drop,
            p_recover=config.p_recover,
            seed=config.seed,
        )
    if config.availability == "diurnal":
        return DiurnalAvailability(
            client_ids,
            period=config.period,
            duty=config.duty,
            seed=config.seed,
        )
    assert config.availability == "trace"
    assert config.trace is not None
    return TraceAvailability(
        client_ids,
        [list(entry) for entry in config.trace],
        cycle=config.trace_cycle,
    )
