"""Client-availability processes: who *can* participate in a round.

The paper's protocol assumes every sampled client computes and uploads;
deployment reality (its Section VI remark on heterogeneous clients, and
every production FL system) is that devices come and go — phones leave
Wi-Fi, laptops sleep, edge nodes reboot.  An availability process answers,
for each round ``m``, "which clients are online?"; the
:class:`~repro.scenarios.scenario.ScenarioSampler` then samples the
round's cohort from that set only.

Determinism contract (load-bearing for backend bit-identity): the set of
available clients is a pure function of ``(construction arguments,
round_index)`` — it never reads training state, wall-clock, or global
RNG, and repeated queries for the same round return the same ids.  All
three execution backends consult availability in the parent process in
the same order, so scenario runs stay bit-identical across serial,
vectorized and sharded execution.

Four processes ship:

- :class:`AlwaysAvailable` — the degenerate process; a scenario built on
  it reproduces the plain (scenario-free) trainer exactly.
- :class:`MarkovAvailability` — per-client two-state (on/off) Markov
  chains, the standard churn model: an online client drops with
  ``p_drop`` per round, an offline one recovers with ``p_recover``.
- :class:`DiurnalAvailability` — deterministic day/night duty cycle with
  a seeded per-client phase, modelling timezone-spread populations.
- :class:`TraceAvailability` — replay of an explicit per-round schedule
  (inline or from a JSON file), for reproducing a recorded deployment.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np


class ClientAvailability:
    """Interface: the deterministic per-round set of online clients."""

    def __init__(self, client_ids: list[int]) -> None:
        if not client_ids:
            raise ValueError("need at least one client")
        if len(set(client_ids)) != len(client_ids):
            raise ValueError("duplicate client ids")
        self.client_ids = sorted(int(c) for c in client_ids)

    def available_ids(self, round_index: int) -> list[int]:
        """Sorted ids of the clients online in round ``round_index`` (1-based).

        May be empty; callers decide how an empty round is handled (the
        scenario sampler waits the round out on the full population).
        """
        raise NotImplementedError

    def _check_round(self, round_index: int) -> None:
        if round_index < 1:
            raise ValueError("round_index is 1-based and must be >= 1")


class AlwaysAvailable(ClientAvailability):
    """Every client is online every round (the paper's implicit model)."""

    def available_ids(self, round_index: int) -> list[int]:
        self._check_round(round_index)
        return list(self.client_ids)


class MarkovAvailability(ClientAvailability):
    """Independent per-client on/off Markov chains (seeded).

    All clients start online; each round an online client goes offline
    with probability ``p_drop`` and an offline one comes back with
    probability ``p_recover``.  States are extended lazily and cached, so
    querying any round (in any order, repeatedly) yields one fixed
    realization of the chain per (seed, p_drop, p_recover, client set).
    """

    def __init__(
        self,
        client_ids: list[int],
        p_drop: float = 0.1,
        p_recover: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(client_ids)
        if not 0.0 <= p_drop <= 1.0 or not 0.0 <= p_recover <= 1.0:
            raise ValueError("transition probabilities must be in [0, 1]")
        self.p_drop = p_drop
        self.p_recover = p_recover
        self._rng = np.random.default_rng((seed, 0xC4A1))
        # _states[m] is the (num_clients,) online mask of round m+1.
        self._states: list[np.ndarray] = []

    def available_ids(self, round_index: int) -> list[int]:
        self._check_round(round_index)
        while len(self._states) < round_index:
            if not self._states:
                prev = np.ones(len(self.client_ids), dtype=bool)
            else:
                prev = self._states[-1]
            draw = self._rng.random(len(self.client_ids))
            nxt = np.where(prev, draw >= self.p_drop, draw < self.p_recover)
            self._states.append(nxt)
        mask = self._states[round_index - 1]
        return [cid for cid, up in zip(self.client_ids, mask) if up]


class DiurnalAvailability(ClientAvailability):
    """Deterministic duty cycle with a seeded per-client phase.

    Client ``i`` is online in round ``m`` iff
    ``(m - 1 + phase_i) mod period < duty * period`` — a population
    spread over timezones where each device is up for a fixed fraction
    of every ``period``-round "day".
    """

    def __init__(
        self,
        client_ids: list[int],
        period: int = 24,
        duty: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(client_ids)
        if period < 1:
            raise ValueError("period must be >= 1")
        if not 0.0 < duty <= 1.0:
            raise ValueError("duty must be in (0, 1]")
        self.period = period
        self.duty = duty
        rng = np.random.default_rng((seed, 0xD1A7))
        self._phases = rng.integers(0, period, size=len(self.client_ids))
        self._window = max(1, int(round(duty * period)))

    def available_ids(self, round_index: int) -> list[int]:
        self._check_round(round_index)
        slot = (round_index - 1 + self._phases) % self.period
        return [
            cid
            for cid, s in zip(self.client_ids, slot)
            if s < self._window
        ]


class TraceAvailability(ClientAvailability):
    """Replay an explicit per-round availability schedule.

    ``rounds`` is a sequence of id lists: ``rounds[m - 1]`` is the online
    set of round ``m``.  Past the end the trace either cycles
    (``cycle=True``, the default) or holds its last entry — both keep
    arbitrarily long runs well-defined.  Ids not in ``client_ids`` are a
    construction error (a trace for the wrong federation).
    """

    def __init__(
        self,
        client_ids: list[int],
        rounds: list[list[int]],
        cycle: bool = True,
    ) -> None:
        super().__init__(client_ids)
        if not rounds:
            raise ValueError("trace needs at least one round entry")
        known = set(self.client_ids)
        self.rounds = []
        for entry in rounds:
            ids = sorted(int(c) for c in entry)
            unknown = [c for c in ids if c not in known]
            if unknown:
                raise ValueError(f"trace names unknown client ids {unknown}")
            if len(set(ids)) != len(ids):
                raise ValueError("duplicate ids in a trace round")
            self.rounds.append(ids)
        self.cycle = cycle

    def available_ids(self, round_index: int) -> list[int]:
        self._check_round(round_index)
        if self.cycle:
            entry = self.rounds[(round_index - 1) % len(self.rounds)]
        else:
            entry = self.rounds[min(round_index - 1, len(self.rounds) - 1)]
        return list(entry)

    @classmethod
    def from_json(
        cls, path: str | Path, client_ids: list[int]
    ) -> "TraceAvailability":
        """Load a schedule written as ``{"rounds": [[ids...], ...],
        "cycle": bool}``."""
        rounds, cycle = load_trace_json(path)
        return cls(client_ids, rounds, cycle=cycle)


def load_trace_json(path: str | Path) -> tuple[list[list[int]], bool]:
    """Parse the trace-schedule JSON schema: ``(rounds, cycle)``.

    The one place the ``{"rounds": ..., "cycle": ...}`` schema is read —
    :meth:`TraceAvailability.from_json` and the CLI's ``--trace`` flag
    both route through it, so file-format validation cannot drift.
    """
    data = json.loads(Path(path).read_text())
    if "rounds" not in data:
        raise ValueError(f"{path}: trace JSON needs a 'rounds' key")
    return data["rounds"], bool(data.get("cycle", True))
