"""Seeded Byzantine clients: upload corruption as a deployment process.

Determinism contract
--------------------
Adversaries follow the same law as every other scenario process: pure
functions of ``(seed, client_id, round)``.  Which clients are malicious
is decided by one Bernoulli draw per client from the tagged stream
``(seed, 0xBAD0, cid)`` — fixed for the whole run, independent of call
order, round count, or execution backend.  The only stochastic attack
(additive Gaussian noise) draws from a *fresh* generator keyed
``(seed, 0xBAD1, cid, round)`` on every call, so corrupting the same
upload twice — or on a different backend, or after a counterfactual
probe — yields byte-equal results.  All corruption happens parent-side
in :class:`~repro.scenarios.scenario.ScenarioHooks`, after the backend
returns honest uploads; backends never see the adversary, which is what
lets the serial/vectorized/sharded bit-identity matrix extend over every
attack × defense configuration unchanged.

Threat model
------------
Attacks corrupt the *wire payload only*: the values of the client's
top-k upload change, its index support does not, and the client's
residual bookkeeping proceeds as if the honest values had been sent
(the honest payload is restored before error-feedback reset — see
``ScenarioHooks.after_aggregate``).  This mirrors the dropped-upload
design: scenario effects live at the transport seam, client learning
state stays honest, and what the optimizer ultimately recovers through
FAB/top-k is the honest gradient information.

The ``topk`` attack is the threat unique to this paper's setting: the
adversary knows its sparsifier selected exactly the coordinates the
server is most likely to include in ``J``, and poisons precisely those —
maximal damage per uploaded byte.
"""

from __future__ import annotations

import numpy as np

from repro.sparsify.base import ClientUpload, SparseVector

#: ``ScenarioConfig.adversary`` values.  ``"none"`` maps to no adversary
#: object at all, keeping the degenerate scenario byte-identical to the
#: plain trainer.
ADVERSARY_KINDS = ("none", "sign_flip", "scale", "noise", "topk")

_DESIGNATION_TAG = 0xBAD0
_NOISE_TAG = 0xBAD1


class AdversaryProcess:
    """One attack law: ``corrupt(values, cid, round)`` → poisoned values.

    Pure in ``(seed, cid, round)`` and the honest values: repeated calls
    with the same arguments are byte-equal, across instances and call
    orders.  Subclasses must not keep mutable state.
    """

    name = "abstract"

    def __init__(self, seed: int, scale: float = 10.0) -> None:
        if scale <= 0.0:
            raise ValueError("adversary scale must be positive")
        self.seed = seed
        self.scale = scale

    def corrupt(
        self, values: np.ndarray, client_id: int, round_index: int
    ) -> np.ndarray:
        """Return the poisoned copy of ``values`` (input untouched)."""
        raise NotImplementedError


class SignFlipAdversary(AdversaryProcess):
    """Model-poisoning classic: upload ``−scale · v`` — push the global
    model *up* the loss surface, amplified."""

    name = "sign_flip"

    def corrupt(self, values, client_id, round_index):
        return -self.scale * values


class ScaleAdversary(AdversaryProcess):
    """Magnitude inflation: ``scale · v``.  Direction stays honest, so
    this probes pure-magnitude defenses (trimming catches it, cosine
    similarity alone does not)."""

    name = "scale"

    def corrupt(self, values, client_id, round_index):
        return self.scale * values


class NoiseAdversary(AdversaryProcess):
    """Additive Gaussian noise at ``scale ×`` the upload's RMS.

    The draw comes from a fresh ``default_rng((seed, 0xBAD1, cid,
    round))`` per call — the generator is never stored, so corruption
    stays a pure function of its arguments no matter how often or in
    what order uploads are corrupted.
    """

    name = "noise"

    def corrupt(self, values, client_id, round_index):
        rng = np.random.default_rng(
            (self.seed, _NOISE_TAG, client_id, round_index)
        )
        rms = float(np.sqrt(np.mean(values**2))) if values.size else 0.0
        if rms == 0.0:
            rms = 1.0
        return values + self.scale * rms * rng.standard_normal(values.size)


class TopKAwareAdversary(AdversaryProcess):
    """Sparsification-aware poisoning: every selected coordinate is set
    to ``−scale · max|v| · sign(v)`` — the largest-magnitude wrong-way
    value the attacker can justify.  Because top-k selection already
    concentrated the upload on the residual's heaviest coordinates,
    this poisons exactly the entries the server's selection ``J`` is
    most likely to keep."""

    name = "topk"

    def corrupt(self, values, client_id, round_index):
        peak = float(np.max(np.abs(values))) if values.size else 0.0
        return -self.scale * peak * np.sign(values)


_PROCESS_CLASSES = {
    cls.name: cls
    for cls in (
        SignFlipAdversary,
        ScaleAdversary,
        NoiseAdversary,
        TopKAwareAdversary,
    )
}


class AdversaryModel:
    """Designation law + attack process for one deployment.

    Holds no per-round state: :meth:`is_adversary` replays the client's
    designation draw from its tagged stream on every call (cached per
    cid purely as an optimization — the draw is deterministic), and
    :meth:`corrupt_upload` delegates to the pure attack process.  Works
    unchanged at population scale (the law is per-cid, never per-roster).
    """

    def __init__(
        self, kind: str, fraction: float, seed: int, scale: float = 10.0
    ) -> None:
        if kind not in _PROCESS_CLASSES:
            raise ValueError(
                f"unknown adversary kind {kind!r}; "
                f"expected one of {ADVERSARY_KINDS[1:]}"
            )
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("adversary fraction must be in [0, 1]")
        self.kind = kind
        self.fraction = fraction
        self.seed = seed
        self.process: AdversaryProcess = _PROCESS_CLASSES[kind](
            seed, scale=scale
        )
        self._designation_cache: dict[int, bool] = {}

    def is_adversary(self, client_id: int) -> bool:
        """Whether ``client_id`` is Byzantine — fixed for the whole run."""
        cached = self._designation_cache.get(client_id)
        if cached is None:
            draw = np.random.default_rng(
                (self.seed, _DESIGNATION_TAG, client_id)
            ).random()
            cached = bool(draw < self.fraction)
            self._designation_cache[client_id] = cached
        return cached

    def corrupt_upload(
        self, upload: ClientUpload, round_index: int
    ) -> ClientUpload:
        """The poisoned wire payload: same support, corrupted values."""
        payload = upload.payload
        poisoned = self.process.corrupt(
            payload.values, upload.client_id, round_index
        )
        return ClientUpload(
            client_id=upload.client_id,
            payload=SparseVector.from_sorted(
                payload.indices, poisoned, payload.dimension
            ),
            sample_count=upload.sample_count,
        )


def build_adversary(config) -> AdversaryModel | None:
    """The adversary a :class:`~repro.scenarios.config.ScenarioConfig`
    names; ``"none"`` or fraction 0 returns ``None`` (no corruption seam
    at all — the degenerate scenario stays byte-identical)."""
    if config.adversary == "none" or config.adversary_fraction == 0.0:
        return None
    return AdversaryModel(
        kind=config.adversary,
        fraction=config.adversary_fraction,
        seed=config.seed,
        scale=config.adversary_scale,
    )
