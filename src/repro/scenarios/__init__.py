"""Deployment-scenario simulation: availability, churn, deadlines.

Wraps any engine-based trainer in a realistic client population — who is
online each round (:mod:`~repro.scenarios.availability`), which uploads
beat the server deadline (:mod:`~repro.scenarios.deadline`), which
clients are Byzantine and how their poisoned uploads are aggregated
robustly (:mod:`~repro.scenarios.adversary` + :mod:`repro.fl.robust`) —
all declared by a JSON-serializable
:class:`~repro.scenarios.config.ScenarioConfig` and materialized by
:class:`~repro.scenarios.scenario.DeploymentScenario`.
"""

from repro.scenarios.adversary import (
    ADVERSARY_KINDS,
    AdversaryModel,
    AdversaryProcess,
    NoiseAdversary,
    ScaleAdversary,
    SignFlipAdversary,
    TopKAwareAdversary,
    build_adversary,
)
from repro.scenarios.availability import (
    AlwaysAvailable,
    ClientAvailability,
    DiurnalAvailability,
    MarkovAvailability,
    TraceAvailability,
)
from repro.scenarios.config import (
    AVAILABILITY_KINDS,
    DEADLINE_POLICY_KINDS,
    REWEIGHT_MODES,
    ScenarioConfig,
)
from repro.scenarios.deadline import (
    AdaptiveDeadlinePolicy,
    CyclingDeadlinePolicy,
    DeadlineObservation,
    DeadlinePolicy,
    DeadlineRoundPolicy,
    DeadlineVerdict,
    FixedDeadlinePolicy,
    resolve_deadline_schedule,
    upload_finish_times,
)
from repro.scenarios.population import (
    PopulationSampler,
    build_population_scenario,
)
from repro.scenarios.scenario import (
    DeploymentScenario,
    ScenarioHooks,
    ScenarioSampler,
    ScenarioStats,
    build_availability,
    build_deadline_schedule,
)

__all__ = [
    "ADVERSARY_KINDS",
    "AVAILABILITY_KINDS",
    "DEADLINE_POLICY_KINDS",
    "REWEIGHT_MODES",
    "AdaptiveDeadlinePolicy",
    "AdversaryModel",
    "AdversaryProcess",
    "AlwaysAvailable",
    "ClientAvailability",
    "CyclingDeadlinePolicy",
    "DeadlineObservation",
    "DeadlinePolicy",
    "DeadlineRoundPolicy",
    "DeadlineVerdict",
    "DeploymentScenario",
    "DiurnalAvailability",
    "FixedDeadlinePolicy",
    "MarkovAvailability",
    "NoiseAdversary",
    "PopulationSampler",
    "ScaleAdversary",
    "ScenarioConfig",
    "ScenarioHooks",
    "ScenarioSampler",
    "ScenarioStats",
    "SignFlipAdversary",
    "TopKAwareAdversary",
    "TraceAvailability",
    "build_adversary",
    "build_availability",
    "build_deadline_schedule",
    "build_population_scenario",
    "resolve_deadline_schedule",
    "upload_finish_times",
]
