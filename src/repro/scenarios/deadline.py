"""Deadline-driven partial aggregation: which uploads make the round.

In the paper every round waits for its slowest participant (the
straggler tail the synchronous protocol inherits).  A deployment-grade
server instead sets a *deadline*: uploads that arrive in time are
aggregated, late ones are dropped, and the round's clock charge is
bounded by the deadline rather than the tail.  Because Algorithm 1
accumulates every gradient into the client residual *before* selection,
a dropped upload is not lost information — the untransmitted residual
simply rides along and is recovered by top-k/FAB selection in a later
round (``tests/test_scenarios.py`` proves the recovery is exact).

Per-client finish times come from the same speed profiles that drive
:class:`repro.simulation.heterogeneous.HeterogeneousTimingModel`:

    finish_i = computation_time · compute_factor_i
             + uplink_time(nnz_i) · comm_factor_i

with ``uplink_time`` the base :class:`~repro.simulation.timing.
TimingModel` sparse transfer of the client's upload size.  Everything is
a pure function of (uploads, profiles, round_index), so deadline verdicts
are identical across execution backends.

Round-close semantics ("charge the deadline, not the straggler tail"):

- over-selection satisfied early (more in-time uploads than the target
  ``m``): the server closes when the ``m``-th acceptee finishes;
- every upload arrived in time: close at the last acceptee's finish;
- someone missed the deadline: the server waited until the deadline to
  learn that, so close at the deadline;
- fewer than ``min_uploads`` arrived: the server extends the round for
  the fastest ``min_uploads`` clients (close at the last forced
  acceptee) — partial aggregation never degenerates to an empty round.

``deadline`` may be a single number or a per-round sequence that
*cycles* (``deadline[(m - 1) mod len]``), which lets a server run
periodic straggler amnesty — a few tight rounds, then one loose round in
which slow clients flush their accumulated residuals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.simulation.heterogeneous import ClientProfile
from repro.simulation.timing import TimingModel
from repro.sparsify.base import ClientUpload


@dataclass(frozen=True)
class DeadlineVerdict:
    """Outcome of one round's deadline gate.

    ``accepted`` holds positions into the round's upload list (ascending,
    so filtered lists keep their participant order), ``dropped_ids`` the
    client ids whose uploads were discarded, and ``close_time`` the
    normalized time at which the server closed the uplink phase.
    """

    accepted: tuple[int, ...]
    dropped_ids: tuple[int, ...]
    close_time: float
    finish_times: tuple[float, ...]

    @property
    def dropped_count(self) -> int:
        return len(self.dropped_ids)


class DeadlineRoundPolicy:
    """Server-side deadline gate with optional over-selection.

    Parameters
    ----------
    deadline:
        Normalized-time budget of a round's compute+uplink phase — a
        float, a cycling per-round sequence, or ``None`` for "wait for
        everyone" (no drops; useful to isolate availability effects).
    over_selection:
        The ε of "sample ``m·(1+ε)`` clients, aggregate the first ``m``
        to finish" — the policy only consumes the *target* ``m``; the
        extra sampling itself is the scenario sampler's job.
    min_uploads:
        Floor on accepted uploads: if fewer finish in time the server
        extends the round for the fastest ``min_uploads`` clients.
    """

    def __init__(
        self,
        deadline: float | Sequence[float] | None,
        over_selection: float = 0.0,
        min_uploads: int = 1,
    ) -> None:
        if over_selection < 0.0:
            raise ValueError("over_selection must be >= 0")
        if min_uploads < 1:
            raise ValueError("min_uploads must be >= 1 (the server cannot "
                             "aggregate an empty round)")
        if deadline is not None and not isinstance(deadline, (int, float)):
            deadline = tuple(float(d) for d in deadline)
            if not deadline:
                raise ValueError("empty deadline sequence")
            if any(d <= 0 for d in deadline):
                raise ValueError("deadlines must be positive")
        elif isinstance(deadline, (int, float)):
            if deadline <= 0:
                raise ValueError("deadlines must be positive")
            deadline = float(deadline)
        self.deadline = deadline
        self.over_selection = over_selection
        self.min_uploads = min_uploads

    # ------------------------------------------------------------------
    def deadline_for(self, round_index: int) -> float | None:
        """The deadline in force for 1-based round ``round_index``."""
        if round_index < 1:
            raise ValueError("round_index is 1-based and must be >= 1")
        if self.deadline is None or isinstance(self.deadline, float):
            return self.deadline
        return self.deadline[(round_index - 1) % len(self.deadline)]

    def finish_times(
        self,
        uploads: list[ClientUpload],
        timing: TimingModel,
        profiles: dict[int, ClientProfile] | None = None,
    ) -> np.ndarray:
        """Per-upload compute+uplink finish times (normalized)."""
        times = np.empty(len(uploads))
        for i, up in enumerate(uploads):
            profile = (profiles or {}).get(up.client_id)
            cf = profile.compute_factor if profile is not None else 1.0
            mf = profile.comm_factor if profile is not None else 1.0
            # Base-class transfer time: a HeterogeneousTimingModel's own
            # sparse_round already folds in its worst-client comm factor,
            # which would double-count the per-client ``mf`` here.
            uplink = TimingModel.sparse_round(timing, up.payload.nnz, 0).uplink
            times[i] = timing.computation_time * cf + uplink * mf
        return times

    def admit(
        self,
        round_index: int,
        uploads: list[ClientUpload],
        timing: TimingModel,
        profiles: dict[int, ClientProfile] | None = None,
        target_uploads: int | None = None,
    ) -> DeadlineVerdict:
        """Gate one round's uploads; deterministic in its arguments.

        ``target_uploads`` is the over-selection target ``m`` (``None``
        means "as many as arrive" — plain deadline semantics).
        """
        if not uploads:
            raise ValueError("no uploads to admit")
        deadline = self.deadline_for(round_index)
        finish = self.finish_times(uploads, timing, profiles)
        # Deterministic service order: finish time, then client id.
        order = sorted(
            range(len(uploads)),
            key=lambda i: (finish[i], uploads[i].client_id),
        )
        if deadline is None:
            in_time = list(order)
        else:
            in_time = [i for i in order if finish[i] <= deadline]
        target = (
            len(uploads) if target_uploads is None
            else max(self.min_uploads, target_uploads)
        )
        accepted = in_time[:target]
        extended = False
        if len(accepted) < self.min_uploads:
            accepted = order[: self.min_uploads]
            extended = True

        if extended:
            close = float(max(finish[i] for i in accepted))
        elif (
            target_uploads is not None
            and len(accepted) == target
            and len(uploads) > target
        ):
            # Over-selection reached its target: the server has its m
            # uploads the moment the m-th finisher lands and closes
            # there — whether or not stragglers would also have made the
            # deadline.  (``accepted`` is still in service order here,
            # so its last element is the m-th finisher.)
            close = float(finish[accepted[-1]])
        elif deadline is None or len(in_time) == len(uploads):
            close = float(max(finish[i] for i in accepted))
        else:
            # Someone missed; the server only learns so at the deadline.
            close = float(deadline)

        accepted_set = set(accepted)
        dropped = tuple(
            uploads[i].client_id
            for i in range(len(uploads))
            if i not in accepted_set
        )
        return DeadlineVerdict(
            accepted=tuple(sorted(accepted)),
            dropped_ids=dropped,
            close_time=close,
            finish_times=tuple(float(t) for t in finish),
        )

    # ------------------------------------------------------------------
    def applies(self, target_uploads: int | None) -> bool:
        """Whether this policy can drop or re-time a round.

        True with a deadline, and also for pure over-selection (no
        deadline, but the server still closes once the first
        ``target_uploads`` of the over-sampled cohort finish).
        """
        return self.deadline is not None or (
            self.over_selection > 0 and target_uploads is not None
        )

    @property
    def active(self) -> bool:
        """Whether a deadline is configured (see :meth:`applies`)."""
        return self.deadline is not None
