"""Deadline-driven partial aggregation: which uploads make the round.

In the paper every round waits for its slowest participant (the
straggler tail the synchronous protocol inherits).  A deployment-grade
server instead sets a *deadline*: uploads that arrive in time are
aggregated, late ones are dropped, and the round's clock charge is
bounded by the deadline rather than the tail.  Because Algorithm 1
accumulates every gradient into the client residual *before* selection,
a dropped upload is not lost information — the untransmitted residual
simply rides along and is recovered by top-k/FAB selection in a later
round (``tests/test_scenarios.py`` proves the recovery is exact).

Per-client finish times come from the same speed profiles that drive
:class:`repro.simulation.heterogeneous.HeterogeneousTimingModel`:

    finish_i = computation_time · compute_factor_i
             + uplink_time(nnz_i) · comm_factor_i

computed by :func:`upload_finish_times`, the one arrival-time helper
every deadline policy shares.  Everything is a pure function of
(uploads, profiles, round_index), so deadline verdicts are identical
across execution backends.

Round-close semantics ("charge the deadline, not the straggler tail"):

- over-selection satisfied early (more in-time uploads than the target
  ``m``): the server closes when the ``m``-th acceptee finishes;
- every upload arrived in time: close at the last acceptee's finish;
- someone missed the deadline: the server waited until the deadline to
  learn that, so close at the deadline;
- fewer than ``min_uploads`` arrived: the server extends the round for
  the fastest ``min_uploads`` clients (close at the last forced
  acceptee) — partial aggregation never degenerates to an empty round.

The deadline *in force* each round comes from a :class:`DeadlinePolicy`:

- :class:`FixedDeadlinePolicy` — one constant budget (or ``None``, wait
  for everyone);
- :class:`CyclingDeadlinePolicy` — a per-round sequence that cycles
  (``schedule[(m - 1) mod len]``), which lets a server run periodic
  straggler amnesty — a few tight rounds, then one loose round in which
  slow clients flush their accumulated residuals;
- :class:`AdaptiveDeadlinePolicy` — the server *learns* the deadline
  online, the exact dual of the paper's learned sparsity k: a
  :class:`~repro.online.algorithm2.SignOGD` walk over a deadline
  interval, fed by the Section IV-E sign estimator applied to a free
  counterfactual probe (see the class docstring).

``DeadlineRoundPolicy(deadline=...)`` keeps accepting the raw float /
sequence / ``None`` forms and resolves them to the matching policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.online.algorithm2 import SignOGD
from repro.online.estimator import estimate_sign
from repro.online.interval import SearchInterval
from repro.simulation.heterogeneous import ClientProfile
from repro.simulation.timing import TimingModel
from repro.sparsify.base import ClientUpload


def upload_finish_times(
    uploads: list[ClientUpload],
    timing: TimingModel,
    profiles: dict[int, ClientProfile] | None = None,
) -> np.ndarray:
    """Per-upload compute+uplink finish times (normalized).

    The single arrival-time computation every deadline policy consumes:
    ``computation_time · compute_factor + uplink(nnz) · comm_factor``,
    with a unit profile for clients missing from ``profiles``.
    """
    times = np.empty(len(uploads))
    for i, up in enumerate(uploads):
        profile = (profiles or {}).get(up.client_id)
        cf = profile.compute_factor if profile is not None else 1.0
        mf = profile.comm_factor if profile is not None else 1.0
        # Base-class transfer time: a HeterogeneousTimingModel's own
        # sparse_round already folds in its worst-client comm factor,
        # which would double-count the per-client ``mf`` here.
        uplink = TimingModel.sparse_round(timing, up.payload.nnz, 0).uplink
        times[i] = timing.computation_time * cf + uplink * mf
    return times


# ----------------------------------------------------------------------
# Deadline policies: what budget is in force each round
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeadlineObservation:
    """Feedback one round hands an adaptive deadline policy.

    The dual of :class:`repro.online.policy.RoundObservation` with the
    decision variable renamed k → deadline.

    Attributes
    ----------
    deadline:
        The deadline that was in force, d_m.
    round_time:
        Realized normalized time of the round, τ_m(d_m).
    loss_prev, loss_now:
        Evaluation-pool losses L(w(m−1)) and L(w(m)).
    loss_probe:
        L(w'(m)) of the counterfactual d'-round, else None.
    probe_deadline:
        The probed d' < d (None when no probe ran).
    probe_round_time:
        θ_m(d'): what the round would have cost under d'.
    loss_probe_up, probe_deadline_up, probe_round_time_up:
        The same triple for the *upward* probe d'' > d the hooks replay
        when the round dropped uploads (the tight regime, where the
        one-sided d' probe alone is slow to discover that loosening
        helps); all None when no upward probe ran.
    arrived, dropped:
        Upload delivery counts of the round — available to custom
        policies even though the sign-based update does not consume them.
    """

    deadline: float
    round_time: float
    loss_prev: float
    loss_now: float
    loss_probe: float | None = None
    probe_deadline: float | None = None
    probe_round_time: float | None = None
    loss_probe_up: float | None = None
    probe_deadline_up: float | None = None
    probe_round_time_up: float | None = None
    arrived: int = 0
    dropped: int = 0


class DeadlinePolicy:
    """Interface: the per-round deadline schedule, optionally adaptive."""

    name = "abstract"
    #: whether :meth:`observe` feedback can move the deadline
    adaptive = False

    def deadline_for(self, round_index: int) -> float | None:
        """The deadline in force for 1-based round ``round_index``."""
        raise NotImplementedError

    def probe_deadline(self, round_index: int) -> float | None:
        """The d' < d this policy wants probed this round (None = none)."""
        del round_index
        return None

    def probe_deadline_up(self, round_index: int) -> float | None:
        """The d'' > d this policy wants probed when the round dropped
        uploads (None = no upward probe)."""
        del round_index
        return None

    def observe(self, observation: DeadlineObservation) -> None:
        """Consume the round's feedback (no-op for fixed schedules)."""
        del observation

    @property
    def active(self) -> bool:
        """Whether this policy ever bounds a round."""
        return True

    @staticmethod
    def _check_round(round_index: int) -> None:
        if round_index < 1:
            raise ValueError("round_index is 1-based and must be >= 1")


class FixedDeadlinePolicy(DeadlinePolicy):
    """One constant deadline, or ``None`` for "wait for everyone"."""

    name = "fixed"

    def __init__(self, deadline: float | None) -> None:
        if deadline is not None:
            deadline = float(deadline)
            if deadline <= 0:
                raise ValueError("deadlines must be positive")
        self.deadline = deadline

    def deadline_for(self, round_index: int) -> float | None:
        self._check_round(round_index)
        return self.deadline

    @property
    def active(self) -> bool:
        return self.deadline is not None


class CyclingDeadlinePolicy(DeadlinePolicy):
    """A per-round deadline sequence that cycles (straggler amnesty)."""

    name = "cycling"

    def __init__(self, schedule: Sequence[float]) -> None:
        schedule = tuple(float(d) for d in schedule)
        if not schedule:
            raise ValueError("empty deadline sequence")
        if any(d <= 0 for d in schedule):
            raise ValueError("deadlines must be positive")
        self.schedule = schedule

    def deadline_for(self, round_index: int) -> float:
        self._check_round(round_index)
        return self.schedule[(round_index - 1) % len(self.schedule)]


class AdaptiveDeadlinePolicy(DeadlinePolicy):
    """Online-learned deadline — the exact dual of the learned k.

    The server plays a continuous deadline d_m from a
    :class:`~repro.online.interval.SearchInterval` and walks it with the
    paper's Algorithm-2 :class:`~repro.online.algorithm2.SignOGD`
    (``d_{m+1} = P([dmin, dmax])(d_m − δ_m · ŝ_m)``, ``δ_m = B/√(2m)``).
    The sign ŝ_m comes from the Section IV-E estimator
    (:func:`repro.online.estimator.estimate_sign`) with k replaced by d:
    each round the scenario hook evaluates a *free counterfactual probe*
    at d' = d − δ_m/2 — because the server already observed every
    upload's arrival time, it can replay the deadline gate at d' and
    re-aggregate the uploads that would have made it, entirely
    server-side, with no extra client communication (unlike the k-probe,
    which ships a difference downlink).  τ_m(d) is the round's realized
    charge, θ_m(d') the counterfactual charge, and the loss interval is
    mapped exactly as eq. (10) does for k.

    The probe point is clamped to ``max(d − δ_m/2, d/2)`` — strictly
    below d and strictly positive, so (unlike the k-probe's floor at 1)
    the estimate is never unavailable at the interval's lower edge and
    the walk cannot get stuck there.  When the round's losses make the
    estimate unusable the decision stays unchanged, matching the paper's
    rule for k.  With ``probe=False`` the policy never updates — useful
    as a "frozen adaptive" control.

    The probe is *two-sided* in the tight regime: when the round
    actually dropped uploads the hooks additionally replay the gate at
    d'' = d + δ_m/2 (:meth:`probe_deadline_up`) — still free, the late
    arrival times are already server knowledge.  The d'-estimate stays
    primary (whenever it is usable the walk is the one-sided walk,
    unchanged); the d''-estimate substitutes exactly when the
    d'-estimate is unavailable — the deadlock round a one-sided policy
    freezes on (`update(None)`) because the tighter counterfactual made
    no loss progress.  A d whose tightness is costing uploads therefore
    learns from a direct looser-deadline comparison instead of waiting
    out the freeze, which converges it out of the tight regime faster;
    rounds that dropped nothing behave exactly as the one-sided probe
    did.

    All state lives in the parent process, so adaptive-deadline runs are
    bit-identical across the serial/vectorized/sharded backends.
    """

    name = "adaptive"
    adaptive = True

    def __init__(
        self,
        interval: SearchInterval,
        d1: float | None = None,
        probe: bool = True,
    ) -> None:
        self.interval = interval
        self.algorithm = SignOGD(interval, k1=d1)
        self.probe = probe

    @property
    def deadline(self) -> float:
        """The continuous decision d_m for the current round."""
        return self.algorithm.k

    @property
    def deadline_history(self) -> list[float]:
        """Every decision played so far (the learned {d_m} trace)."""
        return self.algorithm.k_history

    def deadline_for(self, round_index: int) -> float:
        self._check_round(round_index)
        return self.algorithm.k

    def probe_deadline(self, round_index: int) -> float | None:
        self._check_round(round_index)
        if not self.probe:
            return None
        d = self.algorithm.k
        return max(d - self.algorithm.step_size() / 2.0, d / 2.0)

    def probe_deadline_up(self, round_index: int) -> float | None:
        self._check_round(round_index)
        if not self.probe:
            return None
        return self.algorithm.k + self.algorithm.step_size() / 2.0

    def observe(self, observation: DeadlineObservation) -> None:
        # The downward probe is the primary estimator (the exact dual of
        # the paper's k-probe); whenever it yields a sign the walk is the
        # one-sided walk, unchanged.  The upward replay only speaks when
        # the d'-estimate is unavailable — in the tight regime that is
        # precisely the deadlock round (the tighter counterfactual made
        # no loss progress, so eq. (10) is undefined and a one-sided
        # policy would freeze), and the d''-estimate turns it into a
        # step out of the regime instead.
        sign = self._one_sided_sign(
            observation,
            observation.loss_probe,
            observation.probe_deadline,
            observation.probe_round_time,
        )
        if sign is None:
            sign = self._one_sided_sign(
                observation,
                observation.loss_probe_up,
                observation.probe_deadline_up,
                observation.probe_round_time_up,
            )
        self.algorithm.update(sign)

    @staticmethod
    def _one_sided_sign(
        observation: DeadlineObservation,
        loss_probe: float | None,
        probe_deadline: float | None,
        probe_round_time: float | None,
    ) -> int | None:
        if loss_probe is None or probe_deadline is None:
            return None
        assert probe_round_time is not None
        return estimate_sign(
            loss_prev=observation.loss_prev,
            loss_now=observation.loss_now,
            loss_probe=loss_probe,
            round_time=observation.round_time,
            probe_round_time=probe_round_time,
            # estimate_sign divides by (d - d'), so the d' < d and the
            # d'' > d replay both yield the derivative's sign with no
            # case split.
            k=observation.deadline,
            k_probe=probe_deadline,
        )


def resolve_deadline_schedule(
    deadline: float | Sequence[float] | DeadlinePolicy | None,
) -> DeadlinePolicy:
    """Normalize a raw deadline spec into a :class:`DeadlinePolicy`."""
    if isinstance(deadline, DeadlinePolicy):
        return deadline
    if deadline is None or isinstance(deadline, (int, float)):
        return FixedDeadlinePolicy(deadline)
    return CyclingDeadlinePolicy(deadline)


#: sentinel distinguishing "use the policy's deadline" from None
_USE_SCHEDULE = object()


@dataclass(frozen=True)
class DeadlineVerdict:
    """Outcome of one round's deadline gate.

    ``accepted`` holds positions into the round's upload list (ascending,
    so filtered lists keep their participant order), ``dropped_ids`` the
    client ids whose uploads were discarded, and ``close_time`` the
    normalized time at which the server closed the uplink phase.
    """

    accepted: tuple[int, ...]
    dropped_ids: tuple[int, ...]
    close_time: float
    finish_times: tuple[float, ...]

    @property
    def dropped_count(self) -> int:
        return len(self.dropped_ids)


class DeadlineRoundPolicy:
    """Server-side deadline gate with optional over-selection.

    Parameters
    ----------
    deadline:
        Normalized-time budget of a round's compute+uplink phase — a
        float, a cycling per-round sequence, a :class:`DeadlinePolicy`
        instance (fixed / cycling / adaptive), or ``None`` for "wait for
        everyone" (no drops; useful to isolate availability effects).
    over_selection:
        The ε of "sample ``m·(1+ε)`` clients, aggregate the first ``m``
        to finish" — the policy only consumes the *target* ``m``; the
        extra sampling itself is the scenario sampler's job.
    min_uploads:
        Floor on accepted uploads: if fewer finish in time the server
        extends the round for the fastest ``min_uploads`` clients.
    """

    def __init__(
        self,
        deadline: float | Sequence[float] | DeadlinePolicy | None,
        over_selection: float = 0.0,
        min_uploads: int = 1,
    ) -> None:
        if over_selection < 0.0:
            raise ValueError("over_selection must be >= 0")
        if min_uploads < 1:
            raise ValueError("min_uploads must be >= 1 (the server cannot "
                             "aggregate an empty round)")
        self.schedule = resolve_deadline_schedule(deadline)
        #: legacy raw spec (None for policy instances beyond fixed/cycling)
        if isinstance(self.schedule, FixedDeadlinePolicy):
            self.deadline = self.schedule.deadline
        elif isinstance(self.schedule, CyclingDeadlinePolicy):
            self.deadline = self.schedule.schedule
        else:
            self.deadline = None
        self.over_selection = over_selection
        self.min_uploads = min_uploads

    # ------------------------------------------------------------------
    def deadline_for(self, round_index: int) -> float | None:
        """The deadline in force for 1-based round ``round_index``."""
        return self.schedule.deadline_for(round_index)

    def finish_times(
        self,
        uploads: list[ClientUpload],
        timing: TimingModel,
        profiles: dict[int, ClientProfile] | None = None,
    ) -> np.ndarray:
        """Per-upload finish times (see :func:`upload_finish_times`)."""
        return upload_finish_times(uploads, timing, profiles)

    def admit(
        self,
        round_index: int,
        uploads: list[ClientUpload],
        timing: TimingModel,
        profiles: dict[int, ClientProfile] | None = None,
        target_uploads: int | None = None,
        deadline_override: float | None | object = _USE_SCHEDULE,
        finish_times: np.ndarray | None = None,
    ) -> DeadlineVerdict:
        """Gate one round's uploads; deterministic in its arguments.

        ``target_uploads`` is the over-selection target ``m`` (``None``
        means "as many as arrive" — plain deadline semantics).
        ``deadline_override`` replaces the schedule's deadline for this
        verdict only, and ``finish_times`` reuses already-computed
        arrival times — together they make the counterfactual replay an
        adaptive policy's probe runs a pure threshold change.
        """
        if not uploads:
            raise ValueError("no uploads to admit")
        if deadline_override is _USE_SCHEDULE:
            deadline = self.deadline_for(round_index)
        else:
            deadline = deadline_override
        if finish_times is not None:
            finish = np.asarray(finish_times, dtype=float)
        else:
            finish = self.finish_times(uploads, timing, profiles)
        # Deterministic service order: finish time, then client id.
        order = sorted(
            range(len(uploads)),
            key=lambda i: (finish[i], uploads[i].client_id),
        )
        if deadline is None:
            in_time = list(order)
        else:
            in_time = [i for i in order if finish[i] <= deadline]
        target = (
            len(uploads) if target_uploads is None
            else max(self.min_uploads, target_uploads)
        )
        accepted = in_time[:target]
        extended = False
        if len(accepted) < self.min_uploads:
            accepted = order[: self.min_uploads]
            extended = True

        if extended:
            close = float(max(finish[i] for i in accepted))
        elif (
            target_uploads is not None
            and len(accepted) == target
            and len(uploads) > target
        ):
            # Over-selection reached its target: the server has its m
            # uploads the moment the m-th finisher lands and closes
            # there — whether or not stragglers would also have made the
            # deadline.  (``accepted`` is still in service order here,
            # so its last element is the m-th finisher.)
            close = float(finish[accepted[-1]])
        elif deadline is None or len(in_time) == len(uploads):
            close = float(max(finish[i] for i in accepted))
        else:
            # Someone missed; the server only learns so at the deadline.
            close = float(deadline)

        accepted_set = set(accepted)
        dropped = tuple(
            uploads[i].client_id
            for i in range(len(uploads))
            if i not in accepted_set
        )
        return DeadlineVerdict(
            accepted=tuple(sorted(accepted)),
            dropped_ids=dropped,
            close_time=close,
            finish_times=tuple(float(t) for t in finish),
        )

    # ------------------------------------------------------------------
    def applies(self, target_uploads: int | None) -> bool:
        """Whether this policy can drop or re-time a round.

        True with an active deadline schedule, and also for pure
        over-selection (no deadline, but the server still closes once
        the first ``target_uploads`` of the over-sampled cohort finish).
        """
        return self.schedule.active or (
            self.over_selection > 0 and target_uploads is not None
        )

    @property
    def active(self) -> bool:
        """Whether a deadline is configured (see :meth:`applies`)."""
        return self.schedule.active
