"""Stochastic uniform quantization, composable with any sparsifier.

QSGD-style quantization (Alistarh et al.; the paper's reference [30] uses
the same family): a vector v is encoded as its max-magnitude scale ``s``
plus, per element, a sign and an integer level in {0, ..., L}, where the
level is drawn stochastically so the decoded value is **unbiased**:

    E[decode(encode(v))] = v.

With L levels a value costs ``1 + ceil(log2(L+1))`` bits instead of 32,
which the timing model can credit via :func:`pair_cost_elements`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sparsify.base import ClientUpload, SelectionResult, Sparsifier, SparseVector


@dataclass(frozen=True)
class QuantizedValues:
    """Encoded values: shared scale, per-element signed levels."""

    scale: float
    levels: np.ndarray  # signed ints in [-L, L]
    num_levels: int

    def decode(self) -> np.ndarray:
        """Reconstruct (unbiased) float values."""
        return self.scale * self.levels.astype(np.float64) / self.num_levels

    @property
    def bits_per_value(self) -> int:
        """Sign bit + level bits (scale amortized across the vector)."""
        return 1 + max(1, math.ceil(math.log2(self.num_levels + 1)))


class UniformQuantizer:
    """Stochastic uniform quantizer with ``num_levels`` positive levels."""

    def __init__(self, num_levels: int = 15, seed: int = 0) -> None:
        if num_levels < 1:
            raise ValueError("need at least one quantization level")
        self.num_levels = num_levels
        self._rng = np.random.default_rng(seed)

    def encode(self, values: np.ndarray) -> QuantizedValues:
        values = np.asarray(values, dtype=np.float64)
        scale = float(np.abs(values).max()) if values.size else 0.0
        if scale == 0.0:
            return QuantizedValues(
                scale=0.0,
                levels=np.zeros(values.shape, dtype=np.int64),
                num_levels=self.num_levels,
            )
        normalized = np.abs(values) / scale * self.num_levels
        floor = np.floor(normalized)
        frac = normalized - floor
        up = self._rng.random(values.shape) < frac
        magnitude = (floor + up).astype(np.int64)
        levels = np.sign(values).astype(np.int64) * magnitude
        return QuantizedValues(
            scale=scale, levels=levels, num_levels=self.num_levels
        )

    def roundtrip(self, values: np.ndarray) -> np.ndarray:
        """encode + decode in one call."""
        return self.encode(values).decode()


def pair_cost_elements(
    num_pairs: int,
    value_bits: int,
    index_bits: int = 32,
    element_bits: int = 32,
) -> float:
    """Convert quantized (index, value) pairs into timing-model elements.

    The timing model measures transfers in 32-bit "elements" (a dense
    gradient entry).  An unquantized pair costs 2 elements (the paper's
    footnote-5 factor); quantization shrinks the value part.
    """
    if num_pairs < 0 or value_bits < 1 or index_bits < 1 or element_bits < 1:
        raise ValueError("invalid bit/pair counts")
    return num_pairs * (index_bits + value_bits) / element_bits


class QuantizedSparsifier(Sparsifier):
    """Wrap a sparsifier so uploaded values are quantized before selection.

    The inner scheme decides *which* indices travel; this wrapper replaces
    the uploaded values with their quantized reconstruction, modelling the
    information loss of sending low-bit values.  ``uplink_value_bits``
    exposes the per-value cost for timing adjustments.

    Note: clients still keep full-precision residuals locally; only the
    transmitted copy is degraded, matching real quantized-GS systems
    (error feedback happens through the residual mechanism already).
    """

    def __init__(self, inner: Sparsifier, quantizer: UniformQuantizer) -> None:
        self.inner = inner
        self.quantizer = quantizer
        self.name = f"quantized({inner.name})"

    @property
    def discards_residual(self) -> bool:  # type: ignore[override]
        return self.inner.discards_residual

    @property
    def uplink_value_bits(self) -> int:
        probe = self.quantizer.encode(np.array([1.0]))
        return probe.bits_per_value

    def client_select(
        self, residual: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self.inner.client_select(residual, k, rng)

    def supports_batched_select(self) -> bool:
        return self.inner.supports_batched_select()

    def client_select_batched(
        self, residuals: np.ndarray, k: int
    ) -> np.ndarray | None:
        return self.inner.client_select_batched(residuals, k)

    def preprocess_uploads(
        self, uploads: list[ClientUpload]
    ) -> list[ClientUpload]:
        return [self._quantize_upload(up) for up in uploads]

    def preprocess_uploads_counterfactual(
        self, uploads: list[ClientUpload]
    ) -> list[ClientUpload]:
        # Stochastic rounding draws from the quantizer's stream; a
        # counterfactual replay must not advance it (the next real
        # round's quantization would diverge from a non-probing run), so
        # quantize against a snapshot and restore the state after.
        state = self.quantizer._rng.bit_generator.state
        try:
            return self.preprocess_uploads(uploads)
        finally:
            self.quantizer._rng.bit_generator.state = state

    def server_select(
        self, uploads: list[ClientUpload], k: int, dimension: int
    ) -> SelectionResult:
        return self.inner.server_select(uploads, k, dimension)

    def _quantize_upload(self, upload: ClientUpload) -> ClientUpload:
        encoded = self.quantizer.encode(upload.payload.values)
        # The index row comes from an already-validated payload (sorted,
        # unique, in range), so the rewrapped upload takes the trusted
        # constructor instead of re-validating every round.
        return ClientUpload(
            client_id=upload.client_id,
            payload=SparseVector.from_sorted(
                upload.payload.indices,
                encoded.decode(),
                upload.payload.dimension,
            ),
            sample_count=upload.sample_count,
        )
