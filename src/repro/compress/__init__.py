"""Compression techniques orthogonal to gradient sparsification.

The paper (Section II): "There exist other model compression techniques
such as quantization [30], which are orthogonal to GS and can be applied
together with GS."  This package provides that composition:

- :class:`~repro.compress.quantization.UniformQuantizer` — QSGD-style
  stochastic uniform quantization of the sparse values, unbiased with
  bounded variance.
- :class:`~repro.compress.quantization.QuantizedSparsifier` — wraps any
  :class:`~repro.sparsify.base.Sparsifier`, quantizing uploaded values;
  the timing helper :func:`~repro.compress.quantization.pair_cost_elements`
  converts (index bits + value bits) into the timing model's element
  units so quantized pairs are charged proportionally less.
"""

from repro.compress.quantization import (
    QuantizedSparsifier,
    UniformQuantizer,
    pair_cost_elements,
)

__all__ = [
    "QuantizedSparsifier",
    "UniformQuantizer",
    "pair_cost_elements",
]
