"""ShardedBackend: the round's gradient phase on a multiprocessing pool.

The round skeleton (:class:`repro.fl.engine.RoundEngine`) stays in the
parent process and keeps owning *all* client state — residuals, momentum,
selection/probe RNG.  Only the embarrassingly parallel piece moves out:
each participant's minibatch draw and gradient computation runs on the
worker owning that client's shard (:class:`repro.parallel.pool.
WorkerPool`), with the synchronized weights broadcast through shared
memory and each client's dataset pickled to its worker exactly once —
or, for virtual clients, never: registration ships only the federation's
:class:`~repro.data.virtual.VirtualSpec` and the worker regenerates the
shard from ``(spec, client_id)`` on first participation.

Bit-identity with :class:`repro.fl.backends.SerialBackend` holds by
construction, the same argument as the vectorized backend's:

- per-client RNG streams are disjoint, so executing clients on different
  workers cannot reorder any stream's draws;
- a client's minibatch stream has exactly one consumer — the worker-side
  dataset copy, registered before its first draw (the parent's copy is
  never drawn from while sharded) — so it yields the serial sequence;
- ``FlatModel.gradient`` is a deterministic function of (weights, batch)
  and every worker runs the same NumPy build as the parent;
- residual accumulation, top-k selection, probe draws and residual reset
  all run in the parent on the parent's clients, in participant order,
  exactly as :class:`~repro.fl.backends.SerialBackend` interleaves them.

``tests/test_engine.py`` enforces the invariant across the sparsifier
matrix (histories, weights, residuals).

When real parallelism is unavailable — one usable core, a daemonic
parent (nested pools), or a pool that failed to start — the backend
degrades to the in-process serial path, which is trivially identical.
The same fallback covers models whose gradient is *not* a pure function
of (weights, batch) — active Dropout draws per-call RNG, so worker
replicas could not share the serial model's single stream
(``FlatModel.deterministic_gradients``).
"""

from __future__ import annotations

import warnings
import weakref

import numpy as np

from repro.fl.backends import ExecutionBackend, SerialBackend
from repro.fl.client import Client
from repro.nn.flat import FlatModel
from repro.parallel.pool import (
    WorkerPool,
    default_worker_count,
    in_daemon_process,
)
from repro.sparsify.base import ClientUpload, Sparsifier


class ShardedBackend(ExecutionBackend):
    """Execution backend fanning the gradient phase across worker shards.

    Parameters
    ----------
    jobs:
        Worker process count; ``None``/``0`` means all usable CPUs.  With
        ``jobs=1`` no pool is spawned and the backend runs the serial
        path in process.
    start_method:
        Multiprocessing start method override (default: ``fork`` where
        available).

    Unlike the serial/vectorized backends this one holds resources (the
    worker pool) and per-trainer RNG continuations (the worker-side
    dataset copies), so it must not be used again after :meth:`close`,
    and every trainer fed into it must bring a freshly built federation
    — the repo-wide convention of the figure drivers and tests.
    """

    name = "sharded"

    def __init__(
        self, jobs: int | None = None, start_method: str | None = None
    ) -> None:
        self.jobs = int(jobs) if jobs else default_worker_count()
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self._start_method = start_method
        self._pool: WorkerPool | None = None
        self._serial = SerialBackend()
        self._closed = False
        self._warned_fallback = False
        # model -> session token; dead models just strand a token.
        self._tokens: "weakref.WeakKeyDictionary[FlatModel, int]" = (
            weakref.WeakKeyDictionary()
        )
        self._issued_tokens: set[int] = set()
        self._next_token = 0
        # (token, client_id) -> weakref to the registered Client, so a new
        # trainer's client (same id, new object) re-registers its fresh
        # dataset while the same client never registers twice.
        self._registered: dict[tuple[int, int], weakref.ref] = {}

    # ------------------------------------------------------------------
    # ExecutionBackend interface
    # ------------------------------------------------------------------
    def local_steps(
        self,
        model: FlatModel,
        participants: list[Client],
        k: int,
        sparsifier: Sparsifier,
        draw_probes: bool = False,
    ) -> list[ClientUpload]:
        grads = self._compute(model, participants, want_batches=draw_probes)
        for client, grad in zip(participants, grads):
            client.accumulate_gradient(grad)
        uploads = [
            client.select_upload(k, sparsifier) for client in participants
        ]
        if draw_probes:
            for client in participants:
                client.draw_probe_sample()
        return uploads

    def compute_gradients(
        self, model: FlatModel, participants: list[Client]
    ) -> list[np.ndarray]:
        return self._compute(model, participants, want_batches=False)

    def reset_residuals(
        self,
        participants: list[Client],
        uploads: list[ClientUpload],
        selected: np.ndarray,
    ) -> None:
        # Residuals live in the parent, so this *could* still work after
        # close() — but a closed backend means the training run is over
        # (ROADMAP convention); enforce it uniformly rather than let half
        # the interface keep functioning.
        self._ensure_open()
        super().reset_residuals(participants, uploads, selected)

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "ShardedBackend used after close(); worker-side RNG state "
                "is gone, so resuming would break bit-identity — build a "
                "fresh backend (and trainer) instead"
            )

    def _compute(
        self,
        model: FlatModel,
        participants: list[Client],
        want_batches: bool,
    ) -> list[np.ndarray]:
        self._ensure_open()
        if not model.deterministic_gradients():
            # Active Dropout: the gradient depends on the model's RNG
            # stream position, which worker replicas cannot share.  Run
            # in process on the one true model, like the vectorized
            # backend's fallback — slower, never different.
            return self._serial.compute_gradients(model, participants)
        pool = self._ensure_pool(model)
        if pool is None:
            return self._serial.compute_gradients(model, participants)
        # Engines attach telemetry after construction; forward the current
        # reference so pool-level IPC counters land in the same stream.
        pool.telemetry = self.telemetry
        token = self._session_token(pool, model)
        self._register_missing(pool, token, participants)
        results = pool.compute_gradients(
            token,
            [client.client_id for client in participants],
            model.get_weights(),
            want_batches=want_batches,
        )
        grads = []
        for client, (grad, batch) in zip(participants, results):
            if batch is not None:
                # The worker drew the minibatch; mirror it so probe draws
                # see the round's batch exactly as under serial execution.
                client.adopt_minibatch(*batch)
            grads.append(grad)
        return grads

    def close(self) -> None:
        """Shut the worker pool down; the backend is unusable afterwards."""
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._tokens = weakref.WeakKeyDictionary()
        self._issued_tokens.clear()
        self._registered.clear()

    # ------------------------------------------------------------------
    # Pool/session bookkeeping
    # ------------------------------------------------------------------
    def _ensure_pool(self, model: FlatModel) -> WorkerPool | None:
        """The live pool for this model's dimension, or None to fall back."""
        if self.jobs <= 1 or in_daemon_process():
            return None
        if self._pool is not None and not self._pool.alive:
            # The pool tore itself down after a worker failure; the
            # worker-side RNG continuations died with it, so restarting
            # here would silently diverge from the serial histories.
            self.close()
            raise RuntimeError(
                "ShardedBackend's worker pool died mid-run; restart "
                "training from a fresh trainer and backend"
            )
        if self._pool is not None and self._pool.dimension != model.dimension:
            # A new engine with a different architecture; earlier sessions
            # are complete (trainers run back to back), so restart clean.
            self._pool.close()
            self._pool = None
            self._tokens = weakref.WeakKeyDictionary()
            self._issued_tokens.clear()
            self._registered.clear()
        if self._pool is None:
            try:
                self._pool = WorkerPool(
                    self.jobs, model.dimension, self._start_method
                )
            except OSError as exc:  # pragma: no cover - resource limits
                if not self._warned_fallback:
                    warnings.warn(
                        "sharded backend could not start its worker pool "
                        f"({exc}); falling back to serial execution",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    self._warned_fallback = True
                self.jobs = 1
                return None
        return self._pool

    def _session_token(self, pool: WorkerPool, model: FlatModel) -> int:
        token = self._tokens.get(model)
        if token is None:
            token = self._next_token
            self._next_token += 1
            self._tokens[model] = token
            # Sessions whose model died (trainer finished and was
            # collected) are done for good; have the workers drop their
            # replicas/shards so memory tracks *live* trainers only.
            dead = self._issued_tokens - set(self._tokens.values())
            self._issued_tokens -= dead
            self._issued_tokens.add(token)
            if dead:
                self._registered = {
                    key: ref
                    for key, ref in self._registered.items()
                    if key[0] not in dead
                }
            pool.broadcast_model(token, model, drop_tokens=tuple(dead))
        return token

    def _register_missing(
        self, pool: WorkerPool, token: int, participants: list[Client]
    ) -> None:
        pending: dict[int, dict[int, tuple]] = {}
        for client in participants:
            known = self._registered.get((token, client.client_id))
            if known is not None and known() is client:
                continue
            worker = pool.worker_of(client.client_id)
            # Virtual clients register as their federation's tiny spec —
            # the worker regenerates the dataset from (spec, cid) at the
            # first gradient request, so no sample arrays ever cross the
            # pipe and first participation costs the same IPC as steady
            # state (ids out, gradients back).
            shard = getattr(client.dataset, "virtual_spec", client.dataset)
            pending.setdefault(worker, {})[client.client_id] = (
                shard,
                client.batch_size,
            )
            self._registered[(token, client.client_id)] = weakref.ref(client)
        for worker, clients in pending.items():
            pool.register_clients(worker, token, clients)
