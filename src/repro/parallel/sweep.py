"""Sweep orchestrator: experiment grids over a process pool, cached.

A :class:`SweepSpec` declares a grid of figure × scale × seed × backend
configurations.  :func:`run_sweep` expands the grid, skips every unit
whose content key already sits in the :class:`~repro.parallel.store.
ResultsStore`, fans the remaining units out across a process pool, and
persists each finished unit (config + all figure artifacts as JSON) back
into the store — so re-running a sweep only computes what changed, and a
fully cached re-run costs a directory scan.

Units are whole figure runs: the figure drivers are already the unit of
reproduction everywhere else (CLI, benchmarks), and one driver is large
enough that process dispatch overhead is noise.  Grid axes multiply, so
a spec with 6 figures × 2 seeds × 2 backends is 24 independent runs.

Use from Python::

    spec = SweepSpec(figures=("fig4", "fig5"), scales=("bench",),
                     seeds=(0, 1))
    report = run_sweep(spec, cache_dir="results/sweep-cache", jobs=4)

or from the CLI: ``python -m repro.cli sweep --scale smoke --jobs 2``.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.config import (
    SCALE_NAMES,
    ExperimentConfig,
    scaled_config,
)
from repro.experiments.io import (
    SCHEMA_VERSION,
    figure_to_dict,
    history_to_dict,
    write_json,
)
from repro.fl.backends import BACKEND_NAMES
from repro.parallel.pool import in_daemon_process, preferred_start_method
from repro.parallel.store import ResultsStore, content_key

SWEEP_FIGURES = (
    "fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "scenario", "adversary",
)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of figure runs (axes multiply)."""

    figures: tuple[str, ...] = SWEEP_FIGURES
    scales: tuple[str, ...] = ("bench",)
    seeds: tuple[int, ...] = (0,)
    backends: tuple[str, ...] = ("serial",)
    #: optional round-count override applied to every unit
    rounds: int | None = None
    #: ExperimentConfig.jobs for sharded units (0 = all usable CPUs)
    jobs_per_run: int = 0
    #: optional JSONL trace destination applied to every unit
    #: (observation-only; excluded from cache keys)
    telemetry: str | None = None

    def __post_init__(self) -> None:
        for figure in self.figures:
            if figure not in SWEEP_FIGURES:
                raise ValueError(
                    f"unknown figure {figure!r}; expected one of "
                    f"{SWEEP_FIGURES}"
                )
        for scale in self.scales:
            if scale not in SCALE_NAMES:
                raise ValueError(
                    f"unknown scale {scale!r}; expected one of {SCALE_NAMES}"
                )
        for backend in self.backends:
            if backend not in BACKEND_NAMES:
                raise ValueError(
                    f"unknown backend {backend!r}; expected one of "
                    f"{BACKEND_NAMES}"
                )


@dataclass(frozen=True)
class SweepUnit:
    """One expanded grid point: a figure at a fully resolved config."""

    figure: str
    scale: str
    config: ExperimentConfig

    @property
    def run_id(self) -> str:
        """Human-readable artifact-directory name (unique within a grid)."""
        return (
            f"{self.figure}_{self.scale}_seed{self.config.seed}"
            f"_{self.config.backend}"
        )

    def key(self) -> str:
        """Content address: figure + full config + artifact schema.

        Telemetry is excluded: it is observation-only (traced runs are
        bit-identical to untraced), so a trace destination must neither
        invalidate cached results nor fork the cache.
        """
        config = self.config.to_dict()
        config.pop("telemetry", None)
        return content_key({
            "kind": "figure-run",
            "schema": SCHEMA_VERSION,
            "figure": self.figure,
            "config": config,
        })


@dataclass
class UnitResult:
    unit: SweepUnit
    key: str
    status: str  # "cached" | "computed"
    seconds: float
    artifacts: tuple[str, ...]


@dataclass
class SweepReport:
    results: list[UnitResult] = field(default_factory=list)
    seconds: float = 0.0
    #: ResultsStore.load outcomes over the whole sweep — first-class so
    #: CI asserts on them directly instead of grepping the summary line.
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cached(self) -> int:
        return sum(1 for r in self.results if r.status == "cached")

    @property
    def computed(self) -> int:
        return sum(1 for r in self.results if r.status == "computed")


def expand(spec: SweepSpec) -> list[SweepUnit]:
    """Every grid point of ``spec`` as a concrete figure run."""
    units = []
    for figure in spec.figures:
        for scale in spec.scales:
            for seed in spec.seeds:
                for backend in spec.backends:
                    overrides: dict = {"seed": seed, "backend": backend}
                    if spec.rounds is not None:
                        overrides["num_rounds"] = spec.rounds
                    if backend == "sharded":
                        overrides["jobs"] = spec.jobs_per_run
                    if spec.telemetry is not None:
                        overrides["telemetry"] = spec.telemetry
                    config = scaled_config(scale, figure).with_overrides(
                        **overrides
                    )
                    units.append(SweepUnit(figure, scale, config))
    return units


def collect_artifacts(figure: str, config: ExperimentConfig) -> dict[str, dict]:
    """Run one figure driver; return its artifacts as JSON-ready dicts.

    The artifact names and payloads match what ``python -m repro.cli
    <figure>`` writes, so cached sweep results re-export byte-compatible
    files.
    """
    # Imports are local so sweep pool workers pay them lazily and a
    # broken driver only fails the units that need it.
    if figure == "fig1":
        from repro.experiments.fig1 import run_fig1

        result = run_fig1(config)
        return {"fig1_post_switch_loss": figure_to_dict(result.figure)}
    if figure == "fig4":
        from repro.experiments.fig4 import run_fig4

        result = run_fig4(config)
        artifacts = {
            "fig4_loss_vs_time": figure_to_dict(result.loss_vs_time),
            "fig4_accuracy_vs_time": figure_to_dict(result.accuracy_vs_time),
            "fig4_contribution_cdf": figure_to_dict(result.contribution_cdf),
        }
        for method, history in result.histories.items():
            artifacts[f"fig4_history_{method}"] = history_to_dict(history)
        return artifacts
    if figure == "fig5":
        from repro.experiments.fig5 import run_fig5

        result = run_fig5(config)
        return {
            "fig5_loss_vs_time": figure_to_dict(result.loss_vs_time),
            "fig5_accuracy_vs_time": figure_to_dict(result.accuracy_vs_time),
            "fig5_k_traces": figure_to_dict(result.k_traces),
        }
    if figure == "fig6":
        from repro.experiments.fig6 import run_fig6

        result = run_fig6(config)
        return {
            "fig6_loss_vs_time": figure_to_dict(result.loss_vs_time),
            "fig6_k_traces": figure_to_dict(result.k_traces),
        }
    if figure == "scenario":
        from repro.experiments.scenario import (
            resolve_scenario_config,
            run_deadline_adaptation,
            run_scenario,
            supports_deadline_comparison,
        )
        from repro.scenarios import ScenarioConfig

        result = run_scenario(config)
        artifacts = {
            "scenario_loss_vs_time": figure_to_dict(result.loss_vs_time),
            "scenario_accuracy_vs_time": figure_to_dict(
                result.accuracy_vs_time
            ),
            "scenario_k_traces": figure_to_dict(result.k_traces),
            "scenario_delivery": figure_to_dict(result.delivery),
        }
        for method, history in result.histories.items():
            artifacts[f"scenario_history_{method}"] = history_to_dict(history)
        resolved = resolve_scenario_config(config)
        assert resolved.scenario is not None
        resolved_scenario = ScenarioConfig.from_dict(resolved.scenario)
        if supports_deadline_comparison(resolved_scenario):
            adaptation = run_deadline_adaptation(config)
            artifacts["scenario_deadline_policies"] = figure_to_dict(
                adaptation.loss_vs_time
            )
            artifacts["scenario_deadline_traces"] = figure_to_dict(
                adaptation.deadline_traces
            )
        if resolved_scenario.async_mode:
            from repro.experiments.scenario import run_async_comparison

            comparison = run_async_comparison(config)
            artifacts["scenario_async_loss_vs_time"] = figure_to_dict(
                comparison.loss_vs_time
            )
            artifacts["scenario_async_staleness"] = figure_to_dict(
                comparison.staleness
            )
            for label, history in comparison.histories.items():
                slug = label.replace("-", "_")
                artifacts[f"scenario_async_history_{slug}"] = (
                    history_to_dict(history)
                )
        return artifacts
    if figure == "adversary":
        from repro.experiments.adversary import run_adversary_panel

        result = run_adversary_panel(config)
        artifacts = {
            "adversary_final_loss": figure_to_dict(result.final_loss),
            "adversary_loss_vs_time": figure_to_dict(result.loss_vs_time),
        }
        for label, history in result.histories.items():
            # "trimmed_mean/sparse/f=0.25" -> "trimmed_mean_sparse_f0.25"
            slug = label.replace("/", "_").replace("=", "")
            artifacts[f"adversary_history_{slug}"] = history_to_dict(history)
        return artifacts
    if figure in ("fig7", "fig8"):
        from repro.experiments.fig7 import run_fig7, run_fig8

        runner = run_fig7 if figure == "fig7" else run_fig8
        result = runner(config)
        assert result.k_traces is not None
        artifacts = {f"{figure}_k_traces": figure_to_dict(result.k_traces)}
        for beta, fig_data in result.loss_curves.items():
            artifacts[f"{figure}_replay_beta_{beta:g}"] = figure_to_dict(
                fig_data
            )
        return artifacts
    raise ValueError(f"unknown figure {figure!r}")


def _run_unit(payload: tuple[str, dict]) -> tuple[dict[str, dict], float]:
    """Pool-dispatchable unit runner (module-level for picklability)."""
    figure, config_dict = payload
    config = ExperimentConfig.from_dict(config_dict)
    start = time.perf_counter()
    artifacts = collect_artifacts(figure, config)
    return artifacts, time.perf_counter() - start


def run_sweep(
    spec: SweepSpec,
    cache_dir: str | Path,
    out: str | Path | None = None,
    jobs: int = 1,
    force: bool = False,
    echo=None,
) -> SweepReport:
    """Run every unit of ``spec``, computing only what the cache misses.

    ``jobs`` is the sweep pool's process count (1 = run inline); each
    *unit* additionally honors its own config's backend/jobs for
    within-run parallelism.  ``force`` recomputes (and overwrites) cached
    units.  With ``out`` set, every unit's artifacts are (re-)exported as
    ``<out>/<run_id>/<name>.json`` whether cached or computed.
    """
    say = echo if echo is not None else (lambda message: None)
    start = time.perf_counter()
    store = ResultsStore(cache_dir)
    entries: list[dict] = []
    for unit in expand(spec):
        key = unit.key()
        payload = None if force else store.load(key)
        entries.append({
            "unit": unit,
            "key": key,
            "payload": payload,
            "status": "cached" if payload is not None else "computed",
            "seconds": 0.0,
        })
    pending = [e for e in entries if e["payload"] is None]
    say(
        f"sweep: {len(entries)} runs ({len(entries) - len(pending)} cached, "
        f"{len(pending)} to compute) with {jobs} sweep worker(s)"
    )
    if pending:
        tasks = [
            (e["unit"].figure, e["unit"].config.to_dict()) for e in pending
        ]
        workers = min(jobs, len(tasks))
        if workers > 1 and not in_daemon_process():
            context = mp.get_context(preferred_start_method())
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            ) as pool:
                outcomes = list(pool.map(_run_unit, tasks))
        else:
            outcomes = [_run_unit(task) for task in tasks]
        for entry, (artifacts, seconds) in zip(pending, outcomes):
            unit = entry["unit"]
            payload = {
                "schema": SCHEMA_VERSION,
                "kind": "sweep-unit",
                "figure": unit.figure,
                "scale": unit.scale,
                "config": unit.config.to_dict(),
                "seconds": round(seconds, 6),
                "artifacts": artifacts,
            }
            store.store(entry["key"], payload)
            entry["payload"] = payload
            entry["seconds"] = seconds
            say(f"  computed {unit.run_id} in {seconds:.2f}s")

    report = SweepReport(cache_hits=store.hits, cache_misses=store.misses)
    out_dir = Path(out) if out is not None else None
    for entry in entries:
        unit, payload = entry["unit"], entry["payload"]
        names = tuple(sorted(payload["artifacts"]))
        if out_dir is not None:
            for name in names:
                write_json(
                    out_dir / unit.run_id / f"{name}.json",
                    payload["artifacts"][name],
                )
        report.results.append(UnitResult(
            unit=unit,
            key=entry["key"],
            status=entry["status"],
            seconds=entry["seconds"],
            artifacts=names,
        ))
    report.seconds = time.perf_counter() - start
    say(
        f"sweep finished in {report.seconds:.2f}s: "
        f"{report.computed} computed, {report.cached} cached"
    )
    return report
