"""Parallel execution subsystem: multi-core training and cached sweeps.

Two layers built on the round-engine seam (see ROADMAP.md, "Parallel
execution & sweeps"):

- :mod:`repro.parallel.sharded` — :class:`ShardedBackend`, an
  :class:`repro.fl.backends.ExecutionBackend` that partitions clients into
  per-worker shards and runs the round's gradient phase in a persistent
  multiprocessing pool (:mod:`repro.parallel.pool`), producing histories
  bit-identical to the serial reference.
- :mod:`repro.parallel.sweep` — declarative experiment grids
  (figure × scale × seed × backend) fanned out over a process pool, with
  completed runs cached in a content-addressed on-disk store
  (:mod:`repro.parallel.store`) so re-running a sweep only computes what
  changed.
"""

from repro.parallel.sharded import ShardedBackend
from repro.parallel.store import ResultsStore, content_key
from repro.parallel.sweep import SweepReport, SweepSpec, run_sweep

__all__ = [
    "ShardedBackend",
    "ResultsStore",
    "content_key",
    "SweepSpec",
    "SweepReport",
    "run_sweep",
]
