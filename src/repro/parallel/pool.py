"""Persistent multiprocessing worker pool for the sharded backend.

A :class:`WorkerPool` owns N long-lived worker processes plus one
shared-memory buffer holding the flat model weights.  Each round the
parent writes the synchronized weights ``w(m-1)`` into the buffer once
(the broadcast), then sends every worker only the ids of the clients it
should step; workers reply with the computed gradients.  Client state —
the local dataset with its minibatch RNG — is pickled to its worker
*once*, on registration, and lives there for the rest of the run, so the
steady-state per-round traffic is ids out, gradients back.

Virtual clients (:class:`repro.data.virtual.LazyClientDataset`) never
ship arrays at all: registration sends the federation's tiny
:class:`~repro.data.virtual.VirtualSpec` per client, and the worker
regenerates the dataset from ``(spec, client_id)`` on the client's first
gradient request — construction cost lands worker-side, and first
participation costs the same IPC as steady state.

Workers are grouped into *sessions*: one session per registered model
(one per trainer/engine).  A worker keeps an independent model replica
and client shard per session, which makes a single pool safe to reuse
across the several trainers a figure driver runs back to back — each
trainer's clients keep their own uninterrupted RNG streams.

Determinism: a worker's dataset copy is the *only* consumer of that
client's minibatch RNG stream (the parent's copy is never drawn from
while the pool is in use), and ``FlatModel.gradient`` is a pure function
of (weights, batch).  Both are therefore bit-identical to the serial
reference — see :class:`repro.parallel.sharded.ShardedBackend` for the
full invariant and ``tests/test_engine.py`` for its enforcement.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
import traceback
import weakref

import numpy as np

from repro.data.virtual import VirtualFederation, VirtualSpec
from repro.obs import NULL_TELEMETRY
from repro.obs.telemetry import WorkerTelemetry


def preferred_start_method() -> str:
    """``fork`` where available (cheap, COW pages); ``spawn`` otherwise."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def default_worker_count() -> int:
    """Usable CPUs for this process (affinity-aware where supported)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def in_daemon_process() -> bool:
    """Daemonic processes (e.g. sweep pool workers) cannot fork children."""
    return mp.current_process().daemon


def _worker_main(conn, weights_buf, dimension: int, worker_id: int) -> None:
    """Worker loop: serve gradient requests against per-session state.

    ``weights_buf`` is the shared flat-weight buffer; it is re-read at
    every ``grads`` request, so the parent's single write per round
    broadcasts to all workers.

    When a ``grads`` request arrives with its trace flag set, the worker
    times the request on a lazily built buffered
    :class:`~repro.obs.telemetry.WorkerTelemetry` and ships the drained
    events back alongside the gradients; untraced requests do no
    telemetry work at all and ship ``None`` in the events slot.
    """
    weights = np.frombuffer(weights_buf, dtype=np.float64, count=dimension)
    wtel: WorkerTelemetry | None = None
    models: dict[int, object] = {}
    # session token -> {client_id: (ClientDataset | VirtualSpec, batch_size)}
    shards: dict[int, dict[int, tuple]] = {}
    # (session token, VirtualSpec) -> VirtualFederation: per-session so
    # each trainer's clients keep their own uninterrupted minibatch RNG
    # streams, exactly like the per-session model replicas/shards.
    federations: dict[tuple, VirtualFederation] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        try:
            cmd = msg[0]
            if cmd == "stop":
                conn.close()
                return
            if cmd == "model":
                _, token, model, drop_tokens = msg
                for dead in drop_tokens:
                    models.pop(dead, None)
                    shards.pop(dead, None)
                    for key in [k for k in federations if k[0] == dead]:
                        del federations[key]
                models[token] = model
                shards.setdefault(token, {})
                conn.send(("ok", None))
            elif cmd == "register":
                _, token, clients = msg
                shards.setdefault(token, {}).update(clients)
                conn.send(("ok", None))
            elif cmd == "grads":
                _, token, client_ids, want_batches, trace = msg
                if trace:
                    if wtel is None:
                        wtel = WorkerTelemetry(f"worker-{worker_id}")
                    request_start = time.perf_counter()
                model = models[token]
                model.set_weights(weights.copy())
                out = []
                regenerated = 0
                for cid in client_ids:
                    dataset, batch_size = shards[token][cid]
                    if isinstance(dataset, VirtualSpec):
                        # First gradient request for a virtual client:
                        # regenerate its dataset from (spec, cid) — the
                        # identity-stable federation keeps the minibatch
                        # RNG stream across the session even when the
                        # bounded LRU later drops the arrays.
                        fed = federations.get((token, dataset))
                        if fed is None:
                            fed = VirtualFederation(dataset)
                            federations[(token, dataset)] = fed
                        dataset = fed.client_dataset(cid)
                        shards[token][cid] = (dataset, batch_size)
                        regenerated += 1
                    x, y = dataset.minibatch(batch_size)
                    grad, _ = model.gradient(x, y)
                    out.append((cid, grad, (x, y) if want_batches else None))
                if trace:
                    wtel.event(
                        "span",
                        name="worker.gradients",
                        seconds=time.perf_counter() - request_start,
                        clients=len(client_ids),
                        regenerated=regenerated,
                    )
                    conn.send(("ok", (out, wtel.drain())))
                else:
                    conn.send(("ok", (out, None)))
            else:
                conn.send(("error", f"unknown command {cmd!r}"))
        except Exception:
            conn.send(("error", traceback.format_exc()))


class WorkerPool:
    """N persistent workers around one shared flat-weight buffer.

    The pool is sized for one model dimension; the sharded backend
    recreates it if a model of a different dimension shows up.  All
    methods are synchronous and must be called from the owning process.
    """

    #: observation-only; the sharded backend forwards the engine's
    #: telemetry here so IPC traffic and worker utilization get counted.
    telemetry = NULL_TELEMETRY

    def __init__(
        self,
        num_workers: int,
        dimension: int,
        start_method: str | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if dimension < 1:
            raise ValueError("dimension must be >= 1")
        ctx = mp.get_context(start_method or preferred_start_method())
        self.num_workers = num_workers
        self.dimension = dimension
        self._weights = ctx.RawArray("d", dimension)
        self._weights_view = np.frombuffer(self._weights, dtype=np.float64)
        self._conns = []
        self._procs = []
        for worker_id in range(num_workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, self._weights, dimension, worker_id),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._finalizer = weakref.finalize(
            self, _shutdown, list(self._conns), list(self._procs)
        )

    # ------------------------------------------------------------------
    def worker_of(self, client_id: int) -> int:
        """Stable shard layout: clients assigned round-robin by id."""
        return client_id % self.num_workers

    def broadcast_model(
        self, token: int, model, drop_tokens: tuple[int, ...] = ()
    ) -> None:
        """Open session ``token`` on every worker with a model replica.

        ``drop_tokens`` names finished sessions (their models were
        garbage-collected in the parent) whose replicas and shards the
        workers release first — without this, a driver running many
        trainers on one pool would grow worker memory per trainer.
        """
        tel = self.telemetry
        if tel.enabled:
            start = time.perf_counter()
            tel.count(
                "pool.ipc_bytes_out",
                len(pickle.dumps(("model", token, model, drop_tokens)))
                * len(self._conns),
            )
        for conn in self._conns:
            conn.send(("model", token, model, drop_tokens))
        for worker in range(self.num_workers):
            self._receive(worker)
        if tel.enabled:
            tel.count("pool.model_broadcast_seconds",
                      time.perf_counter() - start)

    def register_clients(self, worker: int, token: int, clients: dict) -> None:
        """Pickle client shards (dataset + batch size) to one worker, once."""
        tel = self.telemetry
        if tel.enabled:
            tel.count("pool.ipc_bytes_out",
                      len(pickle.dumps(("register", token, clients))))
            specs = sum(1 for dataset, _ in clients.values()
                        if isinstance(dataset, VirtualSpec))
            if specs:
                tel.count("pool.register_spec", specs)
            if len(clients) - specs:
                tel.count("pool.register_array", len(clients) - specs)
            tel.count(f"pool.worker{worker}.clients", len(clients))
        self._conns[worker].send(("register", token, clients))
        self._receive(worker)

    def compute_gradients(
        self,
        token: int,
        client_ids: list[int],
        weights: np.ndarray,
        want_batches: bool = False,
    ) -> list[tuple[np.ndarray, tuple[np.ndarray, np.ndarray] | None]]:
        """One parallel gradient phase over ``client_ids`` at ``weights``.

        Returns, in ``client_ids`` order, each client's flat gradient
        and — only with ``want_batches`` (probe rounds) — the minibatch
        it was computed on; shipping batches every round would roughly
        double the steady-state IPC for nothing.

        With telemetry enabled the trace flag rides the request, and
        each worker's buffered events come back in its reply; they are
        re-emitted here through the parent telemetry in deterministic
        ``(round, worker_id, seq)`` order (round = stream position, the
        reply loop below walks workers in ascending id, each buffer is
        already seq-ordered), so two identical traced runs merge to the
        same stream.
        """
        tel = self.telemetry
        trace = tel.enabled
        if trace:
            start = time.perf_counter()
        self._weights_view[:] = weights
        if trace:
            tel.count("pool.weights_broadcast_seconds",
                      time.perf_counter() - start)
        by_worker: dict[int, list[int]] = {}
        for cid in client_ids:
            by_worker.setdefault(self.worker_of(cid), []).append(cid)
        for worker, cids in by_worker.items():
            if trace:
                tel.count(
                    "pool.ipc_bytes_out",
                    len(pickle.dumps(
                        ("grads", token, cids, want_batches, trace)
                    )),
                )
                tel.count(f"pool.worker{worker}.requests")
                tel.count(f"pool.worker{worker}.clients_stepped", len(cids))
            self._conns[worker].send(
                ("grads", token, cids, want_batches, trace)
            )
        results = {}
        events_by_worker: dict[int, list[dict]] = {}
        for worker in by_worker:
            payload, events = self._receive(worker)
            if trace:
                tel.count("pool.ipc_bytes_back", sum(
                    grad.nbytes
                    + (batch[0].nbytes + batch[1].nbytes if batch else 0)
                    for _, grad, batch in payload
                ))
                if events:
                    events_by_worker[worker] = events
            for cid, grad, batch in payload:
                results[cid] = (grad, batch)
        if trace and events_by_worker:
            round_index = tel.current_round
            for worker in sorted(events_by_worker):
                for event in events_by_worker[worker]:
                    fields = dict(event)
                    kind = fields.pop("type")
                    fields.setdefault("round", round_index)
                    tel.event(kind, **fields)
        return [results[cid] for cid in client_ids]

    def _receive(self, worker: int):
        try:
            status, payload = self._conns[worker].recv()
        except EOFError as exc:
            self.close()
            raise RuntimeError(
                f"sharded worker {worker} died unexpectedly"
            ) from exc
        if status != "ok":
            # The request fanned out to several workers; their queued
            # replies would be mistaken for the *next* request's answers
            # if this pool were used again.  Tear it down so a caught
            # error can never turn into silently stale gradients.
            self.close()
            raise RuntimeError(f"sharded worker {worker} failed:\n{payload}")
        return payload

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._finalizer.alive

    def close(self) -> None:
        """Stop the workers; idempotent (also runs on garbage collection)."""
        self._finalizer()


def _shutdown(conns, procs) -> None:
    for conn in conns:
        try:
            conn.send(("stop",))
        except (OSError, ValueError):
            pass
    for proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - stuck worker
            proc.terminate()
            proc.join(timeout=1.0)
    for conn in conns:
        conn.close()
