"""Content-addressed on-disk store for completed experiment runs.

The sweep orchestrator caches every finished run under a key derived
from the run's *content* — the figure name plus the full experiment
configuration — so a re-run of a sweep recomputes only the entries whose
configuration actually changed.  Keys are hex SHA-256 digests of the
canonical (sorted-key, separator-free) JSON encoding of the spec; any
field change, including seed or backend, yields a new key, while field
order and formatting never do.

Entries are single JSON files (``<key>.json``) written atomically, so a
store shared by several sweep processes is safe: concurrent writers of
the same key produce the same content, and readers never observe a
partial file.  Execution backend choice is deliberately *part* of the
key even though histories are backend-independent — a cache hit must
prove the exact requested configuration ran, not an equivalent one.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.experiments.io import write_json

STORE_VERSION = 1


def canonical_json(payload: dict) -> str:
    """Deterministic JSON encoding (sorted keys, fixed separators)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_key(spec: dict) -> str:
    """Hex digest addressing ``spec``; stable across field order."""
    body = canonical_json({"store_version": STORE_VERSION, "spec": spec})
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


class ResultsStore:
    """A directory of ``<content key> -> JSON payload`` cache entries."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        #: lifetime load() outcomes; the sweep report surfaces these as
        #: first-class fields (no log grepping).
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def load(self, key: str) -> dict | None:
        """The cached payload, or None when missing or unreadable.

        A corrupt entry (interrupted legacy writer, disk fault) is
        treated as a miss — the run recomputes and overwrites it.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, key: str, payload: dict) -> Path:
        """Atomically persist ``payload`` under ``key``."""
        path = self.path_for(key)
        write_json(path, payload, indent=None)
        return path

    def keys(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))
