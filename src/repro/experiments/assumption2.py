"""Empirical validation of Assumption 2 — the premise behind Algorithms 2/3.

The paper assumes the time-per-unit-loss-decrease density t(k, l) is
(a) convex in k, (b) has bounded ∂t/∂k, and (c) is minimized at the same
k* for every loss level l.  It validates Assumption 1 experimentally
(Fig. 1) but takes Assumption 2 on faith ("from an empirical point of
view, our algorithms work even without Assumption 2").  This experiment
measures t(k, l) on the actual FL system:

for each k in a grid:
    train with k-element FAB-top-k GS;
    record the normalized time spent inside each loss band [l_i, l_{i+1}];
    t̂(k, band) = time spent in band / loss decrease across band.

and reports, per loss band, the measured curve over k — its approximate
convexity (fraction of nonnegative second differences) and its argmin.
Qualitative expectations: curves are U-shaped (or monotone when the
optimum is at a boundary) and the argmin moves little across bands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    FigureData,
    build_federation,
    build_backend,
    build_model,
    build_timing,
)
from repro.fl.trainer import FLTrainer
from repro.sparsify.fab_topk import FABTopK


@dataclass
class Assumption2Result:
    """Measured t̂(k, band) surface plus summary statistics."""

    k_grid: list[int]
    loss_bands: list[tuple[float, float]]
    #: time per unit loss decrease, indexed [band][k-grid position];
    #: NaN when a run never traversed the band.
    t_hat: np.ndarray = field(default_factory=lambda: np.empty(0))
    figure: FigureData | None = None

    def band_argmin(self, band_index: int) -> int | None:
        """k (not index) minimizing the measured density in a band."""
        row = self.t_hat[band_index]
        if np.all(np.isnan(row)):
            return None
        return int(self.k_grid[int(np.nanargmin(row))])

    def convexity_score(self, band_index: int) -> float:
        """Fraction of nonnegative discrete second differences in a band.

        1.0 = perfectly convex sequence over the k grid (in the sampled
        points); tolerant of measurement noise.
        """
        row = self.t_hat[band_index]
        valid = row[~np.isnan(row)]
        if valid.size < 3:
            return 1.0
        second = valid[2:] - 2 * valid[1:-1] + valid[:-2]
        scale = max(float(np.nanmax(valid)), 1e-12)
        return float(np.mean(second >= -0.05 * scale))

    def argmin_spread(self) -> float:
        """Relative spread of per-band argmins (0 = Assumption 2c exact)."""
        argmins = [self.band_argmin(i) for i in range(len(self.loss_bands))]
        argmins = [a for a in argmins if a is not None]
        if len(argmins) < 2:
            return 0.0
        return float((max(argmins) - min(argmins)) / max(max(argmins), 1))


def run_assumption2(
    config: ExperimentConfig,
    k_grid: list[int] | None = None,
    num_bands: int = 3,
    max_rounds: int | None = None,
) -> Assumption2Result:
    """Measure t(k, l) over a k-grid on the configured federation."""
    if num_bands < 1:
        raise ValueError("need at least one loss band")
    probe_model = build_model(config)
    dimension = probe_model.dimension
    if k_grid is None:
        lo = max(2, int(0.002 * dimension))
        k_grid = sorted(set(
            int(round(k)) for k in np.geomspace(lo, dimension * 0.5, 6)
        ))
    max_rounds = max_rounds if max_rounds is not None else config.num_rounds

    backend = build_backend(config)
    try:
        # Establish the common loss range from a pilot run at the middle k.
        pilot = _run(config, k_grid[len(k_grid) // 2], max_rounds, backend)
        losses = [r.loss for r in pilot if r.loss == r.loss]
        top = losses[0]
        bottom = min(losses)
        edges = np.linspace(top, bottom, num_bands + 1)
        loss_bands = [(float(edges[i]), float(edges[i + 1]))
                      for i in range(num_bands)]

        t_hat = np.full((num_bands, len(k_grid)), np.nan)
        for j, k in enumerate(k_grid):
            history = _run(config, k, max_rounds, backend)
            for i, (hi, lo_band) in enumerate(loss_bands):
                t_hat[i, j] = _band_density(history, hi, lo_band)
    finally:
        backend.close()

    figure = FigureData(title="Assumption 2: measured t(k, l) per loss band")
    for i, (hi, lo_band) in enumerate(loss_bands):
        figure.add(
            f"loss {hi:.2f}->{lo_band:.2f}",
            [float(k) for k in k_grid],
            [float(v) for v in t_hat[i]],
        )
    return Assumption2Result(
        k_grid=list(k_grid), loss_bands=loss_bands, t_hat=t_hat, figure=figure,
    )


def _run(config: ExperimentConfig, k: int, max_rounds: int, backend=None):
    model = build_model(config)
    federation = build_federation(config)
    trainer = FLTrainer(
        model, federation, FABTopK(),
        timing=build_timing(config, model.dimension),
        learning_rate=config.learning_rate,
        batch_size=config.batch_size,
        eval_every=1,  # need the loss at every round for band accounting
        eval_max_samples=config.eval_max_samples,
        backend=backend if backend is not None else build_backend(config),
        seed=config.seed,
    )
    trainer.run(max_rounds, k=min(k, model.dimension))
    return trainer.history


def _band_density(history, band_hi: float, band_lo: float) -> float:
    """Normalized time per unit loss decrease inside [band_lo, band_hi].

    Uses the running-minimum loss so noisy upward blips don't create
    negative densities; NaN when the run never crossed the band.
    """
    time_in_band = 0.0
    loss_in_band = 0.0
    prev_loss = None
    prev_time = 0.0
    best = np.inf
    for record in history:
        if record.loss != record.loss:
            continue
        best = min(best, record.loss)
        if prev_loss is not None and best < prev_loss:
            # Overlap of [best, prev_loss] with [band_lo, band_hi].
            hi = min(prev_loss, band_hi)
            lo = max(best, band_lo)
            if hi > lo:
                fraction = (hi - lo) / (prev_loss - best)
                time_in_band += fraction * (record.cumulative_time - prev_time)
                loss_in_band += hi - lo
        prev_loss = best if prev_loss is None else min(prev_loss, best)
        prev_loss = best
        prev_time = record.cumulative_time
    if loss_in_band <= 1e-9:
        return float("nan")
    return time_in_band / loss_in_band
