"""Fig. 6 — Algorithm 3 vs Algorithm 2 at large communication time.

With β = 100 the optimal k is small, so Algorithm 2's step size
δ_m = B/√(2m) (with B = kmax − kmin ≈ D) overshoots and keeps k
fluctuating high — spending heavily on communication.  Algorithm 3's
shrinking search interval suppresses the fluctuation.  The figure reports
loss/accuracy vs time and both k_m traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    FigureData,
    build_federation,
    build_backend,
    build_model,
    build_search_interval,
    build_telemetry,
    build_timing,
)
from repro.fl.metrics import TrainingHistory
from repro.online.adaptive_trainer import AdaptiveKTrainer
from repro.online.algorithm2 import SignOGD
from repro.online.algorithm3 import AdaptiveSignOGD
from repro.online.policy import SignPolicy
from repro.sparsify.fab_topk import FABTopK


@dataclass
class Fig6Result:
    loss_vs_time: FigureData
    k_traces: FigureData
    histories: dict[str, TrainingHistory] = field(default_factory=dict)

    def k_fluctuation(self) -> dict[str, float]:
        """Std of k over the second half of each trace."""
        out = {}
        for s in self.k_traces.series:
            tail = np.array(s.y[len(s.y) // 2:])
            out[s.label] = float(tail.std())
        return out

    def loss_at_time(self, t: float) -> dict[str, float]:
        return {s.label: s.y_at(t) for s in self.loss_vs_time.series}


def run_fig6(
    config: ExperimentConfig,
    comm_time: float = 100.0,
    num_rounds: int | None = None,
) -> Fig6Result:
    num_rounds = num_rounds if num_rounds is not None else config.num_rounds
    loss_fig = FigureData(title="Fig6 loss vs normalized time")
    k_fig = FigureData(title="Fig6 k_m traces")
    result = Fig6Result(loss_vs_time=loss_fig, k_traces=k_fig)

    backend = build_backend(config)
    telemetry = build_telemetry(config)
    try:
        for label in ("algorithm3", "algorithm2"):
            telemetry.annotate(figure="fig6", method=label)
            model = build_model(config)
            federation = build_federation(config)
            timing = build_timing(config, model.dimension, comm_time)
            interval = build_search_interval(config, model.dimension)
            if label == "algorithm3":
                algorithm = AdaptiveSignOGD(
                    interval, alpha=config.alpha,
                    update_window=config.update_window,
                )
            else:
                algorithm = SignOGD(interval)
            trainer = AdaptiveKTrainer(
                model, federation, FABTopK(), SignPolicy(algorithm), timing,
                learning_rate=config.learning_rate,
                batch_size=config.batch_size,
                eval_every=config.eval_every,
                eval_max_samples=config.eval_max_samples,
                backend=backend,
                telemetry=(telemetry if telemetry.enabled else None),
                seed=config.seed,
            )
            trainer.run(num_rounds)
            result.histories[label] = trainer.history
            xs = [
                r.cumulative_time for r in trainer.history if r.loss == r.loss
            ]
            ys = [r.loss for r in trainer.history if r.loss == r.loss]
            loss_fig.add(label, xs, ys)
            k_fig.add(
                label,
                [float(r.round_index) for r in trainer.history],
                trainer.history.ks(),
            )
    finally:
        # Nested so a backend teardown failure still flushes and closes
        # the telemetry sink (buffered events must survive mid-run raises).
        try:
            backend.close()
        finally:
            telemetry.close()
    return result
