"""Fig. 4 — comparison of GS methods at fixed k (paper Section V-A).

Six methods, all with the same sparsity k and communication time β = 10:

1. FAB-top-k (proposed)
2. FUB-top-k (fairness-unaware bidirectional) [28], [31]
3. Unidirectional top-k [22]
4. Periodic-k (random subset) [8], [30]
5. FedAvg sending everything every ⌊D/(2k)⌋ rounds (comm-matched) [2]
6. Always-send-all

Outputs the three panels of Fig. 4: loss vs normalized time, accuracy vs
normalized time, and the CDF of the number of gradient elements used from
each client (the fairness panel).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    FigureData,
    build_backend,
    build_federation,
    build_model,
    build_telemetry,
    build_timing,
    contribution_cdf,
)
from repro.fl.fedavg import AlwaysSendAllTrainer, FedAvgTrainer
from repro.fl.metrics import TrainingHistory
from repro.fl.trainer import FLTrainer
from repro.sparsify.fab_topk import FABTopK
from repro.sparsify.fub_topk import FUBTopK
from repro.sparsify.periodic import PeriodicK
from repro.sparsify.unidirectional import UnidirectionalTopK

METHODS = (
    "fab-top-k",
    "fub-top-k",
    "unidirectional-top-k",
    "periodic-k",
    "fedavg",
    "always-send-all",
)


@dataclass
class Fig4Result:
    k: int
    loss_vs_time: FigureData
    accuracy_vs_time: FigureData
    contribution_cdf: FigureData
    histories: dict[str, TrainingHistory] = field(default_factory=dict)

    def loss_at_time(self, t: float) -> dict[str, float]:
        """Loss of each method at normalized time t (step interpolation)."""
        return {s.label: s.y_at(t) for s in self.loss_vs_time.series}

    def ranking_at_time(self, t: float) -> list[str]:
        """Methods ordered best (lowest loss) first at time t."""
        at = self.loss_at_time(t)
        return sorted(at, key=at.get)

    def min_client_contribution(self, method: str) -> int:
        """Smallest total contribution across clients (fairness floor)."""
        totals = self.histories[method].contribution_counts()
        if not totals:
            return 0
        return min(totals.values())


def run_fig4(
    config: ExperimentConfig,
    k: int | None = None,
    time_budget: float | None = None,
) -> Fig4Result:
    """Run all six methods for an equal normalized-time budget."""
    probe_model = build_model(config)
    dimension = probe_model.dimension
    if k is None:
        # Paper: k = 1000 with D > 4·10⁵ and N = 156, i.e. k ≈ 0.4·D/N.
        # Preserving kN/D (not k/D) keeps the regime that separates the
        # methods: unidirectional's downlink of up to kN elements is a
        # large fraction of D, while bidirectional schemes ship only k.
        k = max(2, int(0.4 * dimension / config.num_clients))

    timing = build_timing(config, dimension)
    if time_budget is None:
        # Paper runs each method the same wall-clock; our budget is the
        # time FAB-top-k needs for config.num_rounds rounds.
        time_budget = config.num_rounds * timing.sparse_round(k, k).total

    loss_fig = FigureData(title="Fig4 loss vs normalized time")
    acc_fig = FigureData(title="Fig4 accuracy vs normalized time")
    cdf_fig = FigureData(title="Fig4 per-client contribution CDF")
    result = Fig4Result(
        k=k, loss_vs_time=loss_fig, accuracy_vs_time=acc_fig,
        contribution_cdf=cdf_fig,
    )

    backend = build_backend(config)
    telemetry = build_telemetry(config)
    try:
        for method in METHODS:
            telemetry.annotate(figure="fig4", method=method)
            history = _run_method(
                method, config, k, timing, time_budget, backend, telemetry
            )
            result.histories[method] = history
            xs, losses, accs = [], [], []
            for record in history:
                if record.loss == record.loss:  # skip NaN (non-eval rounds)
                    xs.append(record.cumulative_time)
                    losses.append(record.loss)
                    if record.accuracy is not None:
                        accs.append(record.accuracy)
            loss_fig.add(method, xs, losses)
            acc_fig.add(method, xs, accs)
            if method in ("fab-top-k", "fub-top-k", "unidirectional-top-k"):
                totals = history.contribution_counts()
                if totals:
                    values, cdf = contribution_cdf(totals)
                    cdf_fig.add(method, values.tolist(), cdf.tolist())
    finally:
        # Nested so a backend teardown failure still flushes and closes
        # the telemetry sink (buffered events must survive mid-run raises).
        try:
            backend.close()
        finally:
            telemetry.close()
    return result


def _run_method(
    method: str,
    config: ExperimentConfig,
    k: int,
    timing,
    time_budget: float,
    backend,
    telemetry=None,
) -> TrainingHistory:
    model = build_model(config)
    federation = build_federation(config)
    common = dict(
        learning_rate=config.learning_rate,
        batch_size=config.batch_size,
        eval_every=config.eval_every,
        eval_max_samples=config.eval_max_samples,
        backend=backend,
        telemetry=(
            telemetry if telemetry is not None and telemetry.enabled else None
        ),
        seed=config.seed,
    )
    if method == "fedavg":
        trainer = FedAvgTrainer(
            model, federation, timing,
            aggregation_period=timing.fedavg_period(k), **common,
        )
        return _run_for_time(trainer, time_budget)
    if method == "always-send-all":
        trainer = AlwaysSendAllTrainer(model, federation, timing, **common)
        return _run_for_time(trainer, time_budget)
    sparsifiers = {
        "fab-top-k": FABTopK,
        "fub-top-k": FUBTopK,
        "unidirectional-top-k": UnidirectionalTopK,
    }
    if method == "periodic-k":
        sparsifier = PeriodicK(model.dimension, seed=config.seed)
    else:
        sparsifier = sparsifiers[method]()
    trainer = FLTrainer(model, federation, sparsifier, timing=timing, **common)
    return _run_gs_for_time(trainer, k, time_budget)


def _run_for_time(trainer, time_budget: float) -> TrainingHistory:
    while trainer.clock < time_budget:
        trainer.step()
    return trainer.history


def _run_gs_for_time(trainer: FLTrainer, k: int, time_budget: float
                     ) -> TrainingHistory:
    while trainer.clock < time_budget:
        trainer.step(k)
    return trainer.history
