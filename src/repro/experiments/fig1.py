"""Fig. 1 — empirical validation of Assumption 1 (independent costs).

Protocol (paper Section IV-A1): train with different sparsity levels k'
until the global loss first reaches a target ψ, then switch every run to a
*common* k.  Assumption 1 predicts the post-switch loss trajectories
coincide regardless of the pre-switch k', because the model state relevant
to future progress is captured by the loss level.

The result reports, per pre-switch k', the post-switch loss series
(indexed by rounds after the switch) and the maximum cross-run deviation,
which should be small relative to the loss scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    FigureData,
    build_backend,
    build_federation,
    build_model,
    build_telemetry,
    build_timing,
)
from repro.fl.trainer import FLTrainer
from repro.sparsify.fab_topk import FABTopK


@dataclass
class Fig1Result:
    """Post-switch loss curves for each pre-switch k'."""

    psi: float
    k_common: int
    figure: FigureData
    pre_rounds: dict[int, int] = field(default_factory=dict)

    def max_deviation(self) -> float:
        """Max over aligned rounds of (max − min) post-switch loss."""
        if len(self.figure.series) < 2:
            return 0.0
        length = min(len(s.y) for s in self.figure.series)
        stacked = np.array([s.y[:length] for s in self.figure.series])
        return float((stacked.max(axis=0) - stacked.min(axis=0)).max())

    def mean_post_loss_spread(self) -> float:
        """Mean over aligned rounds of the cross-run standard deviation."""
        length = min(len(s.y) for s in self.figure.series)
        stacked = np.array([s.y[:length] for s in self.figure.series])
        return float(stacked.std(axis=0).mean())


def run_fig1(
    config: ExperimentConfig,
    psi: float | None = None,
    pre_ks: list[int] | None = None,
    k_common: int | None = None,
    post_rounds: int | None = None,
) -> Fig1Result:
    """Reproduce Fig. 1 at the configured scale.

    ``psi`` defaults to 85% of the initial loss (the paper picks absolute
    targets 1.5/1.0 for its loss scale); ``pre_ks`` defaults to
    {D, D/4, D/40, D/400} mirroring the paper's {D, 10⁴, 5·10³, 10³} for
    D > 4·10⁵.
    """
    probe_model = build_model(config)
    dimension = probe_model.dimension
    if pre_ks is None:
        pre_ks = sorted(
            {dimension, dimension // 4, dimension // 40, max(dimension // 400, 2)},
            reverse=True,
        )
    if k_common is None:
        k_common = max(dimension // 40, 2)
    post_rounds = post_rounds if post_rounds is not None else config.num_rounds

    figure = FigureData(title=f"Fig1 Assumption-1 validation")
    result = Fig1Result(psi=0.0, k_common=k_common, figure=figure)

    backend = build_backend(config)
    telemetry = build_telemetry(config)
    try:
        for i, k_pre in enumerate(pre_ks):
            telemetry.annotate(figure="fig1", method=f"pre-k={k_pre}")
            model = build_model(config)
            federation = build_federation(config)
            timing = build_timing(config, model.dimension)
            trainer = FLTrainer(
                model,
                federation,
                FABTopK(),
                timing=timing,
                learning_rate=config.learning_rate,
                batch_size=config.batch_size,
                eval_every=1,
                eval_max_samples=config.eval_max_samples,
                backend=backend,
                telemetry=(telemetry if telemetry.enabled else None),
                seed=config.seed,
            )
            if psi is None and i == 0:
                psi = trainer.global_loss() * 0.85
            assert psi is not None
            result.psi = psi

            trainer.run_until_loss(
                psi, k=k_pre, max_rounds=config.num_rounds * 10
            )
            result.pre_rounds[k_pre] = len(trainer.history)
            post_losses = [trainer.global_loss()]
            for _ in range(post_rounds):
                record = trainer.step(k_common)
                post_losses.append(record.loss)
            figure.add(
                label=f"pre-k={k_pre}",
                x=list(range(len(post_losses))),
                y=post_losses,
            )
    finally:
        # Nested so a backend teardown failure still flushes and closes
        # the telemetry sink (buffered events must survive mid-run raises).
        try:
            backend.close()
        finally:
            telemetry.close()
    figure.notes.append(
        f"psi={result.psi:.4f}, common k={k_common}, dimension={dimension}"
    )
    return result
