"""Experiment configuration presets.

The paper's scale (156 FEMNIST clients, D > 400,000, thousands of rounds)
is reproducible here by :func:`ExperimentConfig.paper_scale`, but the
default presets are deliberately laptop-scale: the claims under test are
*qualitative orderings* (which method wins, how learned k moves with β),
which are preserved at reduced dimension — see DESIGN.md §7.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from repro.fl.backends import BACKEND_NAMES


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to build a federation, model, and trainer.

    ``dataset`` is "femnist" (writer-partitioned, 62 classes) or "cifar"
    (one class per client, 10 classes).
    """

    dataset: str = "femnist"
    num_clients: int = 20
    #: when positive, replace the eager federation with a
    #: :class:`~repro.data.virtual.VirtualFederation` of this many
    #: clients (``num_clients`` is then ignored); requires a scenario
    #: with an explicit participants target so rounds stay O(cohort)
    population: int = 0
    #: "auto" follows the paper's mapping (femnist → by writer, cifar →
    #: by class); "dirichlet" applies a Dirichlet(α) label-skew split
    partition: str = "auto"
    dirichlet_alpha: float = 0.5
    samples_per_client: int = 30
    image_size: int = 12
    num_classes: int = 62
    classes_per_writer: int = 8
    hidden: tuple[int, ...] = (32,)
    learning_rate: float = 0.05
    batch_size: int = 32
    comm_time: float = 10.0
    num_rounds: int = 300
    eval_every: int = 5
    eval_max_samples: int = 1000
    kmin_fraction: float = 0.002  # paper: kmin = 0.002 * D
    alpha: float = 1.5            # paper: α = 1.5
    update_window: int = 20       # paper: M_u = 20
    backend: str = "serial"       # execution: serial | vectorized | sharded
    jobs: int = 0                 # sharded worker count; 0 = all usable CPUs
    #: deployment scenario as a ScenarioConfig.to_dict() mapping (kept as
    #: a plain dict so configs stay import-light and sweep-cacheable);
    #: None = the paper's ideal population (everyone, always, no deadline)
    scenario: dict | None = None
    #: JSONL trace destination (``--telemetry out.jsonl``); None disables.
    #: Observation-only: traced runs are bit-identical to untraced ones,
    #: and sweep cache keys exclude this field.
    telemetry: str | None = None
    seed: int = 0
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.dataset not in ("femnist", "cifar"):
            raise ValueError(f"unknown dataset {self.dataset!r}")
        if self.num_clients < 1 or self.samples_per_client < 1:
            raise ValueError("need at least one client and one sample")
        if self.population < 0:
            raise ValueError("population must be >= 0 (0 = eager federation)")
        if self.population and self.dataset != "femnist":
            raise ValueError(
                "virtual populations are femnist-like; use dataset='femnist'"
            )
        if self.population and self.partition != "auto":
            raise ValueError(
                "virtual populations carry their own per-client generator; "
                "partition overrides only apply to eager federations"
            )
        if self.partition not in ("auto", "dirichlet"):
            raise ValueError(
                f"unknown partition {self.partition!r}; "
                "expected 'auto' or 'dirichlet'"
            )
        if self.dirichlet_alpha <= 0:
            raise ValueError("dirichlet_alpha must be positive")
        if self.num_rounds < 1:
            raise ValueError("num_rounds must be positive")
        if not 0.0 < self.kmin_fraction < 1.0:
            raise ValueError("kmin_fraction must be in (0, 1)")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {BACKEND_NAMES}"
            )
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = all usable CPUs)")
        if self.scenario is not None and not isinstance(self.scenario, dict):
            raise ValueError(
                "scenario must be a ScenarioConfig.to_dict() mapping or None"
            )
        if self.telemetry is not None and not isinstance(self.telemetry, str):
            raise ValueError("telemetry must be a JSONL path string or None")

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Copy with fields replaced (configs are immutable)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Serialization (sweep cache keys, cross-process dispatch)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready mapping of every field; round-trips via from_dict."""
        data = asdict(self)
        data["hidden"] = list(self.hidden)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output (or parsed JSON)."""
        data = dict(data)
        if "hidden" in data:
            data["hidden"] = tuple(data["hidden"])
        return cls(**data)

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """Tiny preset for unit/integration tests (seconds)."""
        return cls(
            num_clients=6,
            samples_per_client=15,
            image_size=8,
            num_classes=10,
            classes_per_writer=4,
            hidden=(8,),
            num_rounds=30,
            eval_every=5,
            batch_size=16,
        )

    @classmethod
    def default(cls) -> "ExperimentConfig":
        """Benchmark preset: minutes for the full figure suite."""
        return cls()

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The paper's FEMNIST setup (156 clients, D > 400k). Hours."""
        return cls(
            num_clients=156,
            samples_per_client=222,   # ≈ 34,659 training samples total
            image_size=28,
            num_classes=62,
            hidden=(512,),            # D ≈ 28²·512 + 512·62 ≈ 430k
            learning_rate=0.01,
            batch_size=32,
            num_rounds=5000,
            eval_every=20,
            eval_max_samples=4000,
        )

    @classmethod
    def cifar_default(cls) -> "ExperimentConfig":
        """CIFAR-like preset for Fig. 8 (one class per client)."""
        return cls(
            dataset="cifar",
            num_clients=20,
            samples_per_client=40,
            image_size=8,
            num_classes=10,
            hidden=(32,),
        )


SCALE_NAMES = ("smoke", "bench", "default", "paper")


def scaled_config(scale: str, figure: str | None = None) -> ExperimentConfig:
    """The preset behind a CLI/sweep ``--scale`` name, per target figure.

    ``smoke`` runs in seconds, ``bench`` in tens of seconds (the
    benchmark suite's setting), ``default`` in minutes, ``paper`` at the
    paper's 156-client scale (hours).  Fig. 8 swaps in the CIFAR-like
    federation while keeping the scale's round/evaluation budget.
    """
    if scale == "smoke":
        base = ExperimentConfig.smoke()
    elif scale == "bench":
        base = ExperimentConfig(
            num_clients=24, samples_per_client=25, image_size=10,
            num_classes=16, classes_per_writer=5, hidden=(16,),
            learning_rate=0.05, batch_size=16, num_rounds=150,
            eval_every=5, eval_max_samples=300,
        )
    elif scale == "default":
        base = ExperimentConfig.default()
    elif scale == "paper":
        base = ExperimentConfig.paper_scale()
    else:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of {SCALE_NAMES}"
        )
    if figure == "fig8":
        cifar = ExperimentConfig.cifar_default()
        base = cifar.with_overrides(
            num_rounds=base.num_rounds, eval_every=base.eval_every,
            learning_rate=base.learning_rate, batch_size=base.batch_size,
        )
    return base
