"""Quantitative comparison of training runs.

Turns a set of named :class:`~repro.fl.metrics.TrainingHistory` objects
into a comparison table: final loss, time-to-target, fitted convergence
rate, communication share of the total time budget, and fairness index.
This is how the benchmark reports and examples summarize "who wins and by
how much" instead of eyeballing curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.convergence import fit_power_law, time_to_target
from repro.fl.diagnostics import fairness_index
from repro.fl.metrics import TrainingHistory


@dataclass(frozen=True)
class RunSummary:
    """One run's headline numbers."""

    name: str
    final_loss: float
    total_time: float
    rounds: int
    time_to_target: float | None
    convergence_rate: float | None
    fairness: float | None

    def row(self) -> list[str]:
        return [
            self.name,
            f"{self.final_loss:.4f}",
            f"{self.total_time:.0f}",
            str(self.rounds),
            "-" if self.time_to_target is None else f"{self.time_to_target:.0f}",
            "-" if self.convergence_rate is None
            else f"{self.convergence_rate:.2f}",
            "-" if self.fairness is None else f"{self.fairness:.3f}",
        ]

    @staticmethod
    def headers() -> list[str]:
        return ["run", "final loss", "time", "rounds", "t(target)",
                "fit rate", "fairness"]


def summarize_run(
    name: str,
    history: TrainingHistory,
    target_loss: float | None = None,
) -> RunSummary:
    """Summarize one history; fit/target fields degrade gracefully."""
    times, losses = [], []
    for record in history:
        if record.loss == record.loss:
            times.append(record.cumulative_time)
            losses.append(record.loss)
    if not losses:
        raise ValueError(f"run {name!r} has no evaluated rounds")

    reach = None
    if target_loss is not None:
        reach = time_to_target(times, losses, target_loss)

    rate = None
    if len(losses) >= 5 and min(times) > 0:
        try:
            fit = fit_power_law(times, losses)
            if fit.r_squared > 0.3:
                rate = fit.rate
        except ValueError:
            rate = None

    contributions = history.contribution_counts()
    fairness = fairness_index(contributions) if contributions else None

    return RunSummary(
        name=name,
        final_loss=losses[-1],
        total_time=history.total_time,
        rounds=len(history),
        time_to_target=reach,
        convergence_rate=rate,
        fairness=fairness,
    )


def compare_histories(
    histories: dict[str, TrainingHistory],
    target_loss: float | None = None,
) -> list[RunSummary]:
    """Summaries for every run, ordered best final loss first.

    When ``target_loss`` is None a common default is chosen: the worst
    run's final loss (so every run's time-to-target is defined for at
    least one run).
    """
    if not histories:
        raise ValueError("no histories to compare")
    if target_loss is None:
        finals = []
        for history in histories.values():
            losses = [r.loss for r in history if r.loss == r.loss]
            if losses:
                finals.append(min(losses))
        target_loss = max(finals) if finals else None
    summaries = [
        summarize_run(name, history, target_loss)
        for name, history in histories.items()
    ]
    return sorted(summaries, key=lambda s: s.final_loss)


def speedup_at_target(
    histories: dict[str, TrainingHistory],
    baseline: str,
    target_loss: float,
) -> dict[str, float | None]:
    """Time speedup of each run vs ``baseline`` at reaching the target.

    > 1 means faster than the baseline; None when a run (or the baseline)
    never reaches the target.
    """
    if baseline not in histories:
        raise KeyError(baseline)
    summaries = {
        name: summarize_run(name, h, target_loss)
        for name, h in histories.items()
    }
    base = summaries[baseline].time_to_target
    out: dict[str, float | None] = {}
    for name, summary in summaries.items():
        if base is None or summary.time_to_target is None:
            out[name] = None
        else:
            out[name] = base / summary.time_to_target
    return out
