"""Figs. 7 and 8 — cross-application of learned k sequences across β.

For each communication time β ∈ {0.1, 1, 10, 100}, run Algorithm 3 to
learn a sequence {k_m,β}.  Then replay *every* learned sequence under
*every* communication time with plain FAB-top-k training and compare the
loss reached within a common time budget.  The paper's claims:

- the learned k is (on average) decreasing in β;
- the matched sequence {k_m,β} performs best (or ties) at its own β;
- on CIFAR-like data (Fig. 8, extreme one-class-per-client skew) the
  spread between sequences is smaller because even large β needs a large
  k (paper footnote 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    FigureData,
    build_federation,
    build_backend,
    build_model,
    build_search_interval,
    build_telemetry,
    build_timing,
)
from repro.fl.trainer import FLTrainer
from repro.online.adaptive_trainer import AdaptiveKTrainer
from repro.online.algorithm3 import AdaptiveSignOGD
from repro.online.policy import SignPolicy
from repro.sparsify.fab_topk import FABTopK

COMM_TIMES = (0.1, 1.0, 10.0, 100.0)


@dataclass
class CrossApplicationResult:
    """Learned sequences plus the replay matrix."""

    comm_times: tuple[float, ...]
    sequences: dict[float, list[float]] = field(default_factory=dict)
    #: (sequence_beta, replay_beta) -> final loss within the time budget
    final_loss: dict[tuple[float, float], float] = field(default_factory=dict)
    k_traces: FigureData | None = None
    loss_curves: dict[float, FigureData] = field(default_factory=dict)

    def mean_k(self, beta: float) -> float:
        return float(np.mean(self.sequences[beta]))

    def mean_k_is_decreasing_in_beta(self) -> bool:
        """The paper's headline qualitative claim for Fig. 7."""
        means = [self.mean_k(b) for b in self.comm_times]
        return all(m2 <= m1 * 1.05 for m1, m2 in zip(means, means[1:]))

    def matched_sequence_rank(self, beta: float) -> int:
        """Rank (0 = best) of the matched sequence when replayed at beta."""
        losses = {
            seq_beta: self.final_loss[(seq_beta, beta)]
            for seq_beta in self.comm_times
        }
        ordered = sorted(losses, key=losses.get)
        return ordered.index(beta)

    def spread_at(self, beta: float) -> float:
        """Max − min replay loss at beta (cross-sequence sensitivity)."""
        values = [self.final_loss[(s, beta)] for s in self.comm_times]
        return float(max(values) - min(values))


def run_cross_application(
    config: ExperimentConfig,
    comm_times: tuple[float, ...] = COMM_TIMES,
    learn_rounds: int | None = None,
    replay_time_budget: float | None = None,
) -> CrossApplicationResult:
    learn_rounds = learn_rounds if learn_rounds is not None else config.num_rounds
    result = CrossApplicationResult(comm_times=comm_times)
    result.k_traces = FigureData(title="learned k_m sequences")

    backend = build_backend(config)
    telemetry = build_telemetry(config)
    try:
        # Phase 1: learn {k_m, beta} with Algorithm 3 at each beta.
        for beta in comm_times:
            telemetry.annotate(figure="fig7", method=f"learn-beta={beta:g}")
            model = build_model(config)
            federation = build_federation(config)
            timing = build_timing(config, model.dimension, beta)
            interval = build_search_interval(config, model.dimension)
            policy = SignPolicy(
                AdaptiveSignOGD(
                    interval, alpha=config.alpha,
                    update_window=config.update_window,
                )
            )
            trainer = AdaptiveKTrainer(
                model, federation, FABTopK(), policy, timing,
                learning_rate=config.learning_rate,
                batch_size=config.batch_size,
                eval_every=max(config.eval_every, 10),
                eval_max_samples=config.eval_max_samples,
                backend=backend,
                telemetry=(telemetry if telemetry.enabled else None),
                seed=config.seed,
            )
            trainer.run(learn_rounds)
            sequence = trainer.history.ks()
            result.sequences[beta] = sequence
            result.k_traces.add(
                f"beta={beta:g}",
                [float(i + 1) for i in range(len(sequence))],
                sequence,
            )

        # Phase 2: replay every sequence at every beta for a common budget.
        for replay_beta in comm_times:
            fig = FigureData(title=f"replay at beta={replay_beta:g}")
            result.loss_curves[replay_beta] = fig
            budget = replay_time_budget
            if budget is None:
                # Budget = the time the matched sequence's rounds take.
                model = build_model(config)
                timing = build_timing(config, model.dimension, replay_beta)
                matched = result.sequences[replay_beta]
                budget = sum(
                    timing.sparse_round(int(max(k, 1)), int(max(k, 1))).total
                    for k in matched
                )
            for seq_beta in comm_times:
                telemetry.annotate(
                    figure="fig7",
                    method=f"replay-seq={seq_beta:g}-at={replay_beta:g}",
                )
                history = _replay(config, result.sequences[seq_beta],
                                  replay_beta, budget, backend, telemetry)
                xs = [r.cumulative_time for r in history if r.loss == r.loss]
                ys = [r.loss for r in history if r.loss == r.loss]
                fig.add(f"k-seq(beta={seq_beta:g})", xs, ys)
                result.final_loss[(seq_beta, replay_beta)] = (
                    ys[-1] if ys else float("inf")
                )
    finally:
        # Nested so a backend teardown failure still flushes and closes
        # the telemetry sink (buffered events must survive mid-run raises).
        try:
            backend.close()
        finally:
            telemetry.close()
    return result


def _replay(
    config: ExperimentConfig,
    sequence: list[float],
    beta: float,
    time_budget: float,
    backend,
    telemetry=None,
):
    model = build_model(config)
    federation = build_federation(config)
    timing = build_timing(config, model.dimension, beta)
    trainer = FLTrainer(
        model, federation, FABTopK(), timing=timing,
        learning_rate=config.learning_rate,
        batch_size=config.batch_size,
        eval_every=config.eval_every,
        eval_max_samples=config.eval_max_samples,
        backend=backend,
        telemetry=(
            telemetry if telemetry is not None and telemetry.enabled else None
        ),
        seed=config.seed,
    )
    int_sequence = [max(1, min(int(round(k)), model.dimension)) for k in sequence]
    schedule = _hold_last(int_sequence)
    while trainer.clock < time_budget:
        trainer.step(schedule(trainer.round_index + 1))
    return trainer.history


def _hold_last(sequence: list[int]):
    def schedule(m: int) -> int:
        if m - 1 < len(sequence):
            return sequence[m - 1]
        return sequence[-1]
    return schedule


def run_fig7(config: ExperimentConfig | None = None, **kwargs
             ) -> CrossApplicationResult:
    """Fig. 7: FEMNIST-like cross-application."""
    if config is None:
        config = ExperimentConfig.default()
    if config.dataset != "femnist":
        raise ValueError("Fig. 7 uses the FEMNIST-like dataset")
    return run_cross_application(config, **kwargs)


def run_fig8(config: ExperimentConfig | None = None, **kwargs
             ) -> CrossApplicationResult:
    """Fig. 8: CIFAR-like (one class per client) cross-application."""
    if config is None:
        config = ExperimentConfig.cifar_default()
    if config.dataset != "cifar":
        raise ValueError("Fig. 8 uses the CIFAR-like dataset")
    return run_cross_application(config, **kwargs)
