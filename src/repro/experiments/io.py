"""Saving and loading experiment artifacts (JSON + CSV).

Every figure driver returns in-memory containers; this module persists
them so long experiment runs can be archived and re-plotted without
re-running.  The JSON schema is versioned and round-trips exactly.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.experiments.runner import FigureData, Series
from repro.fl.metrics import RoundRecord, TrainingHistory

SCHEMA_VERSION = 1


def write_json(path: str | Path, payload: dict, indent: int | None = 1) -> None:
    """Atomically write ``payload`` as JSON (tmp file + rename).

    Concurrent writers (the sweep orchestrator's pool workers and its
    results store) never leave a half-written artifact behind: readers
    see either the old file or the complete new one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            fd = -1  # the handle owns it now
            json.dump(payload, handle, indent=indent)
        # mkstemp creates 0600; widen to the umask-derived mode a plain
        # open() would have used, so artifacts stay world-readable.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp, 0o666 & ~umask)
        os.replace(tmp, path)
    except BaseException:
        if fd >= 0:
            os.close(fd)
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# FigureData
# ----------------------------------------------------------------------
def figure_to_dict(figure: FigureData) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "kind": "figure",
        "title": figure.title,
        "notes": list(figure.notes),
        "series": [
            {"label": s.label, "x": list(map(float, s.x)),
             "y": list(map(float, s.y))}
            for s in figure.series
        ],
    }


def figure_from_dict(data: dict) -> FigureData:
    _check(data, "figure")
    figure = FigureData(title=data["title"], notes=list(data.get("notes", [])))
    for s in data["series"]:
        figure.series.append(Series(s["label"], list(s["x"]), list(s["y"])))
    return figure


def save_figure(figure: FigureData, path: str | Path) -> None:
    write_json(path, figure_to_dict(figure))


def load_figure(path: str | Path) -> FigureData:
    return figure_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# TrainingHistory
# ----------------------------------------------------------------------
def history_to_dict(history: TrainingHistory) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "kind": "history",
        "records": [
            {
                "round": r.round_index,
                "k": r.k,
                "round_time": r.round_time,
                "cumulative_time": r.cumulative_time,
                "loss": r.loss,
                "accuracy": r.accuracy,
                "uplink": r.uplink_elements,
                "downlink": r.downlink_elements,
                "contributions": {str(k): v for k, v in r.contributions.items()},
            }
            for r in history.records
        ],
    }


def history_from_dict(data: dict) -> TrainingHistory:
    _check(data, "history")
    history = TrainingHistory()
    for r in data["records"]:
        history.append(
            RoundRecord(
                round_index=r["round"],
                k=r["k"],
                round_time=r["round_time"],
                cumulative_time=r["cumulative_time"],
                loss=r["loss"],
                accuracy=r.get("accuracy"),
                uplink_elements=r.get("uplink", 0),
                downlink_elements=r.get("downlink", 0),
                contributions={int(k): v
                               for k, v in r.get("contributions", {}).items()},
            )
        )
    return history


def save_history(history: TrainingHistory, path: str | Path) -> None:
    write_json(path, history_to_dict(history))


def load_history(path: str | Path) -> TrainingHistory:
    return history_from_dict(json.loads(Path(path).read_text()))


def export_figure_csv(figure: FigureData, path: str | Path) -> None:
    """Write the long-format CSV of a figure next to its JSON."""
    Path(path).write_text(figure.to_csv())


def _check(data: dict, kind: str) -> None:
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema {data.get('schema')!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    if data.get("kind") != kind:
        raise ValueError(f"expected kind {kind!r}, got {data.get('kind')!r}")
