"""Adversarial-robustness panel: attack × defense convergence grid.

The paper's protocol aggregates a weighted mean of sparse top-k uploads —
one Byzantine client scaling or sign-flipping its payload moves the
global model arbitrarily far.  This driver measures that failure and the
recovery delivered by the robust aggregators in :mod:`repro.fl.robust`:
for each (adversary fraction × aggregator) cell it runs the same
FAB-top-k trainer under the same seeded scenario realization, in both
the sparse regime (Fig. 4's ``k ≈ 0.4·D/cohort``) and dense uploads
(``k = D``), so the panel separates what sparsification changes about
the attack surface (adversary-exclusive coordinates defeat pure order
statistics; see the norm-clipping note in
:class:`repro.fl.robust.RobustAggregator`) from the defense itself.

Artifacts:

- ``final_loss`` — final evaluated loss vs adversary fraction, one
  series per (aggregator, regime).  The headline: the mean's curve
  blows up at ≥20% adversaries while trimmed-mean/median stay near the
  honest baseline.
- ``loss_vs_time`` — the full convergence curves behind those
  endpoints, labelled ``aggregator/regime/f=<fraction>``.

The attack kind/scale come from the config's scenario (default:
sign-flip at 10×).  Cells with fraction 0 run with ``adversary="none"``
— byte-identical to the plain trainer when the aggregator is ``"mean"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import json

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    FigureData,
    build_backend,
    build_federation,
    build_model,
    build_scenario,
    build_telemetry,
)
from repro.fl.metrics import TrainingHistory
from repro.fl.trainer import FLTrainer
from repro.scenarios import ScenarioConfig
from repro.sparsify.fab_topk import FABTopK

#: adversary fractions swept by default — honest baseline, the headline
#: regime (≥20% Byzantine clients), and a heavy-attack point.  The last
#: matters at tiny federations: designation is one Bernoulli draw per
#: client, so a 6-client smoke run can realize zero adversaries at 0.25.
DEFAULT_FRACTIONS = (0.0, 0.25, 0.5)

#: defenses compared by default; "mean" is the paper's (vulnerable)
#: aggregation and anchors the comparison.
DEFAULT_AGGREGATORS = ("mean", "trimmed_mean", "median")

#: upload regimes: the Fig. 4 sparsity and full-dimension uploads.
REGIMES = ("sparse", "dense")

#: attack mounted when the config's scenario does not name one.
DEFAULT_ATTACK = "sign_flip"


@dataclass
class AdversaryPanelResult:
    """Figures + histories + per-cell delivery/flag stats of one panel."""

    k: int
    attack: str
    scale: float
    scenario: dict
    final_loss: FigureData
    loss_vs_time: FigureData
    histories: dict[str, TrainingHistory] = field(default_factory=dict)
    stats: dict[str, dict] = field(default_factory=dict)

    @staticmethod
    def cell_label(aggregator: str, regime: str, fraction: float) -> str:
        """Key of one panel cell in ``histories``/``stats``."""
        return f"{aggregator}/{regime}/f={fraction:g}"

    def final_losses(self, aggregator: str, regime: str) -> list[float]:
        """The (fraction-ordered) final-loss series of one defense."""
        for series in self.final_loss.series:
            if series.label == f"{aggregator} ({regime})":
                return list(series.y)
        raise KeyError(f"no series for {aggregator!r} in {regime!r} regime")


def resolve_adversary_config(config: ExperimentConfig) -> ExperimentConfig:
    """Fill in the panel's base scenario when the config carries none.

    Unlike :func:`repro.experiments.scenario.resolve_scenario_config`
    the default here is an *always-available* population with no
    deadline — the panel isolates the adversary axis, and churn would
    confound which defense recovered convergence.  A config that does
    carry a scenario keeps it (attack under churn is a valid panel).
    """
    from repro.experiments.scenario import DEFAULT_POPULATION_COHORT

    if config.scenario is not None:
        scenario = ScenarioConfig.from_dict(config.scenario)
    else:
        scenario = ScenarioConfig(availability="always", seed=config.seed)
    if config.population and not scenario.participants:
        # Virtual populations never run all-available rounds.
        scenario = scenario.with_overrides(
            participants=DEFAULT_POPULATION_COHORT
        )
    return config.with_overrides(scenario=scenario.to_dict())


def _panel_base(
    config: ExperimentConfig,
) -> tuple[ScenarioConfig, str, float, int, int]:
    """(base scenario, attack kind, scale, dimension, sparse k)."""
    base = ScenarioConfig.from_dict(config.scenario or {})
    attack = base.adversary if base.adversary != "none" else DEFAULT_ATTACK
    dimension = build_model(config).dimension
    cohort = base.participants or config.num_clients
    k = max(2, int(0.4 * dimension / cohort))
    return base, attack, base.adversary_scale, dimension, k


def run_adversary_panel(
    config: ExperimentConfig,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    aggregators: tuple[str, ...] = DEFAULT_AGGREGATORS,
    regimes: tuple[str, ...] = REGIMES,
) -> AdversaryPanelResult:
    """Run the attack × defense grid under the config's scenario.

    Every cell reruns the same model/federation/scenario seeds — the
    only things that vary are the designated adversary set (a pure
    function of the fraction) and the server's aggregation rule, so
    differences between curves are attributable to the cell.
    """
    config = resolve_adversary_config(config)
    base, attack, scale, dimension, sparse_k = _panel_base(config)
    # A scenario that names its own fraction/aggregator (e.g. from the
    # CLI flags) joins the swept grid rather than being ignored.
    if base.adversary_fraction and base.adversary_fraction not in fractions:
        fractions = tuple(sorted(set(fractions) | {base.adversary_fraction}))
    if base.aggregator not in aggregators:
        aggregators = tuple(aggregators) + (base.aggregator,)

    final_fig = FigureData(title="Final loss vs adversary fraction")
    curve_fig = FigureData(title="Adversarial convergence vs time")
    result = AdversaryPanelResult(
        k=sparse_k, attack=attack, scale=scale,
        scenario=base.to_dict(), final_loss=final_fig,
        loss_vs_time=curve_fig,
    )

    backend = build_backend(config)
    telemetry = build_telemetry(config)
    try:
        for aggregator in aggregators:
            for regime in regimes:
                k = sparse_k if regime == "sparse" else dimension
                finals: list[float] = []
                for fraction in fractions:
                    label = result.cell_label(aggregator, regime, fraction)
                    telemetry.annotate(
                        figure="adversary", aggregator=aggregator,
                        regime=regime, fraction=fraction,
                    )
                    cell = base.with_overrides(
                        adversary=attack if fraction > 0.0 else "none",
                        adversary_fraction=fraction,
                        aggregator=aggregator,
                    )
                    cell_config = config.with_overrides(
                        scenario=cell.to_dict()
                    )
                    model = build_model(cell_config)
                    federation = build_federation(cell_config)
                    # Population-scale runs derive designation and
                    # profiles from per-cid laws — enumeration is O(N).
                    client_ids = (
                        [] if cell_config.population
                        else [c.client_id for c in federation.clients]
                    )
                    timing, scenario = build_scenario(
                        cell_config, client_ids, dimension
                    )
                    trainer = FLTrainer(
                        model, federation, FABTopK(),
                        learning_rate=cell_config.learning_rate,
                        batch_size=cell_config.batch_size,
                        eval_every=cell_config.eval_every,
                        eval_max_samples=cell_config.eval_max_samples,
                        timing=timing,
                        backend=backend,
                        scenario=scenario,
                        telemetry=(
                            telemetry if telemetry.enabled else None
                        ),
                        seed=cell_config.seed,
                    )
                    for _ in range(cell_config.num_rounds):
                        trainer.step(k)

                    result.histories[label] = trainer.history
                    assert scenario is not None
                    result.stats[label] = scenario.stats.to_dict()
                    xs, losses = [], []
                    for record in trainer.history:
                        if record.loss == record.loss:  # evaluated only
                            xs.append(record.cumulative_time)
                            losses.append(record.loss)
                    curve_fig.add(label, xs, losses)
                    finals.append(
                        losses[-1] if losses else float("nan")
                    )
                final_fig.add(
                    f"{aggregator} ({regime})",
                    [float(f) for f in fractions],
                    finals,
                )
    finally:
        # Nested so a backend teardown failure still flushes and closes
        # the telemetry sink (buffered events must survive mid-run raises).
        try:
            backend.close()
        finally:
            telemetry.close()

    final_fig.notes.append(
        json.dumps(
            {
                "attack": attack,
                "scale": scale,
                "fractions": list(fractions),
                "aggregators": list(aggregators),
                "regimes": list(regimes),
                "sparse_k": sparse_k,
                "dimension": dimension,
            },
            sort_keys=True,
        )
    )
    return result
