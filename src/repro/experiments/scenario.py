"""Deployment-scenario experiment: fixed-k vs adaptive-k under churn.

The paper's evaluation runs an ideal population — every client online,
every upload aggregated.  This driver wraps the same two protagonists in
a deployment scenario (availability churn, straggler profiles, a
deadline-gated server; :mod:`repro.scenarios`) and asks the question the
paper's Section VI points at: once rounds can lose uploads, does the
residual-accumulating sparsifier still convert communication savings
into convergence-per-time, and does the adaptive-k policy still find a
good operating point when its reward signal comes from partial rounds?

Methods (both FAB-top-k, both under the *same* scenario realization —
fresh per run, seeded identically):

- ``fixed-k``:   :class:`~repro.fl.trainer.FLTrainer` at the Fig. 4
  sparsity ``k ≈ 0.4·D/N``.
- ``adaptive-k``: :class:`~repro.online.adaptive_trainer.AdaptiveKTrainer`
  with the paper's proposed policy (Algorithm 3 + sign estimator).

Artifacts: loss/accuracy vs normalized time, the adaptive k-trace, and a
delivery panel (per-round arrivals and cumulative deadline drops) showing
how much of the round traffic the deadline gate actually cut.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import json

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig5 import make_policy
from repro.experiments.runner import (
    FigureData,
    build_backend,
    build_federation,
    build_model,
    build_scenario,
)
from repro.fl.metrics import TrainingHistory
from repro.fl.trainer import FLTrainer
from repro.online.adaptive_trainer import AdaptiveKTrainer
from repro.scenarios import ScenarioConfig
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK

METHODS = ("fixed-k", "adaptive-k")


@dataclass
class ScenarioRunResult:
    """Figures + histories + delivery stats of one scenario comparison."""

    k: int
    scenario: dict
    loss_vs_time: FigureData
    accuracy_vs_time: FigureData
    k_traces: FigureData
    delivery: FigureData
    histories: dict[str, TrainingHistory] = field(default_factory=dict)
    stats: dict[str, dict] = field(default_factory=dict)

    def loss_at_time(self, t: float) -> dict[str, float]:
        return {s.label: s.y_at(t) for s in self.loss_vs_time.series}

    def drop_rate(self, method: str) -> float:
        """Fraction of this method's cohort uploads the deadline cut."""
        stats = self.stats[method]
        total = stats["total_arrived"] + stats["total_dropped"]
        return stats["total_dropped"] / total if total else 0.0


def resolve_scenario_config(config: ExperimentConfig) -> ExperimentConfig:
    """Fill in the default churn scenario when the config carries none.

    The default realization is seeded from the experiment seed so sweep
    grids over seeds vary the churn too.
    """
    if config.scenario is not None:
        return config
    scenario = ScenarioConfig.default_churn().with_overrides(seed=config.seed)
    return config.with_overrides(scenario=scenario.to_dict())


def run_scenario(
    config: ExperimentConfig,
    k: int | None = None,
    time_budget: float | None = None,
) -> ScenarioRunResult:
    """Run both methods under the config's scenario for equal time."""
    config = resolve_scenario_config(config)
    probe_model = build_model(config)
    dimension = probe_model.dimension
    if k is None:
        # Fig. 4's sparsity regime (see run_fig4).
        k = max(2, int(0.4 * dimension / config.num_clients))
    if time_budget is None:
        # Budget in *base* round times: scenarios re-time rounds, so the
        # nominal (profile-free) k-GS round defines a comparable budget.
        base = TimingModel(dimension=dimension, comm_time=config.comm_time)
        time_budget = config.num_rounds * base.sparse_round(k, k).total
    max_rounds = max(1, 3 * config.num_rounds)

    loss_fig = FigureData(title="Scenario loss vs normalized time")
    acc_fig = FigureData(title="Scenario accuracy vs normalized time")
    k_fig = FigureData(title="Scenario k_m traces")
    delivery_fig = FigureData(title="Scenario per-round delivery")
    result = ScenarioRunResult(
        k=k, scenario=dict(config.scenario or {}), loss_vs_time=loss_fig,
        accuracy_vs_time=acc_fig, k_traces=k_fig, delivery=delivery_fig,
    )

    backend = build_backend(config)
    try:
        for method in METHODS:
            model = build_model(config)
            federation = build_federation(config)
            client_ids = [c.client_id for c in federation.clients]
            timing, scenario = build_scenario(config, client_ids, dimension)
            common = dict(
                learning_rate=config.learning_rate,
                batch_size=config.batch_size,
                eval_every=config.eval_every,
                eval_max_samples=config.eval_max_samples,
                backend=backend,
                scenario=scenario,
                seed=config.seed,
            )
            if method == "fixed-k":
                trainer = FLTrainer(
                    model, federation, FABTopK(), timing=timing, **common
                )
                while (
                    trainer.clock < time_budget
                    and trainer.round_index < max_rounds
                ):
                    trainer.step(k)
            else:
                trainer = AdaptiveKTrainer(
                    model, federation, FABTopK(),
                    make_policy("proposed", config, dimension),
                    timing, **common,
                )
                trainer.run_for_time(time_budget, max_rounds=max_rounds)

            result.histories[method] = trainer.history
            assert scenario is not None
            result.stats[method] = scenario.stats.to_dict()
            xs, losses, acc_xs, accs = [], [], [], []
            for record in trainer.history:
                if record.loss == record.loss:  # evaluated rounds only
                    xs.append(record.cumulative_time)
                    losses.append(record.loss)
                    if record.accuracy is not None:
                        acc_xs.append(record.cumulative_time)
                        accs.append(record.accuracy)
            loss_fig.add(method, xs, losses)
            acc_fig.add(method, acc_xs, accs)
            k_fig.add(
                method,
                [float(r.round_index) for r in trainer.history],
                trainer.history.ks(),
            )
            rounds = scenario.stats.rounds
            delivery_fig.add(
                f"{method} arrived",
                [float(r.round_index) for r in rounds],
                [float(r.arrived) for r in rounds],
            )
            cumulative, dropped = 0, []
            for r in rounds:
                cumulative += len(r.dropped_ids)
                dropped.append(float(cumulative))
            delivery_fig.add(
                f"{method} dropped (cumulative)",
                [float(r.round_index) for r in rounds],
                dropped,
            )
            delivery_fig.notes.append(
                f"{method}: {json.dumps(result.stats[method], sort_keys=True)}"
            )
    finally:
        backend.close()
    loss_fig.notes.append(f"scenario: {json.dumps(result.scenario, sort_keys=True)}")
    return result
