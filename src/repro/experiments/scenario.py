"""Deployment-scenario experiment: fixed-k vs adaptive-k under churn.

The paper's evaluation runs an ideal population — every client online,
every upload aggregated.  This driver wraps the same two protagonists in
a deployment scenario (availability churn, straggler profiles, a
deadline-gated server; :mod:`repro.scenarios`) and asks the question the
paper's Section VI points at: once rounds can lose uploads, does the
residual-accumulating sparsifier still convert communication savings
into convergence-per-time, and does the adaptive-k policy still find a
good operating point when its reward signal comes from partial rounds?

Methods (both FAB-top-k, both under the *same* scenario realization —
fresh per run, seeded identically):

- ``fixed-k``:   :class:`~repro.fl.trainer.FLTrainer` at the Fig. 4
  sparsity ``k ≈ 0.4·D/N``.
- ``adaptive-k``: :class:`~repro.online.adaptive_trainer.AdaptiveKTrainer`
  with the paper's proposed policy (Algorithm 3 + sign estimator).

Artifacts: loss/accuracy vs normalized time, the adaptive k-trace, and a
delivery panel (per-round arrivals and cumulative deadline drops) showing
how much of the round traffic the deadline gate actually cut.

A second driver, :func:`run_deadline_adaptation`, compares *deadline
policies* instead of k policies: the same fixed-k trainer under fixed
deadlines at the regime's interval endpoints, the cycling amnesty
schedule, and the online-learned adaptive deadline (the dual of the
learned k; :class:`repro.scenarios.deadline.AdaptiveDeadlinePolicy`) —
loss vs simulated time plus the per-round deadline each policy had in
force.

A third driver, :func:`run_async_comparison`, drops the deadline answer
to stragglers entirely and compares commit *disciplines*: the
synchronous full-barrier baseline against asynchronous staleness-
weighted commits (:class:`repro.fl.async_engine.AsyncFLTrainer`) under
each staleness discount, on the same heterogeneous timing — loss vs
simulated time plus per-commit staleness (and the adaptive discount's
learned exponent trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import json

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig5 import make_policy
from repro.experiments.runner import (
    FigureData,
    build_backend,
    build_federation,
    build_model,
    build_scenario,
    build_telemetry,
)
from repro.fl.async_engine import AsyncFLTrainer
from repro.fl.metrics import TrainingHistory
from repro.fl.trainer import FLTrainer
from repro.online.adaptive_trainer import AdaptiveKTrainer
from repro.scenarios import ScenarioConfig
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK

METHODS = ("fixed-k", "adaptive-k")

#: async comparison variants: the wait-for-everyone synchronous baseline
#: plus one async trainer per staleness-discount kind
ASYNC_VARIANTS = ("sync", "async-constant", "async-polynomial",
                  "async-adaptive")

#: cohort target a population-scale run falls back to when its scenario
#: does not name one — ``participants=0`` means "all available", which
#: is exactly the O(population) iteration virtual federations exist to
#: avoid, so it is never the right default at N = 10^6.
DEFAULT_POPULATION_COHORT = 10


@dataclass
class ScenarioRunResult:
    """Figures + histories + delivery stats of one scenario comparison."""

    k: int
    scenario: dict
    loss_vs_time: FigureData
    accuracy_vs_time: FigureData
    k_traces: FigureData
    delivery: FigureData
    histories: dict[str, TrainingHistory] = field(default_factory=dict)
    stats: dict[str, dict] = field(default_factory=dict)

    def loss_at_time(self, t: float) -> dict[str, float]:
        return {s.label: s.y_at(t) for s in self.loss_vs_time.series}

    def drop_rate(self, method: str) -> float:
        """Fraction of this method's cohort uploads the deadline cut."""
        stats = self.stats[method]
        total = stats["total_arrived"] + stats["total_dropped"]
        return stats["total_dropped"] / total if total else 0.0


def resolve_scenario_config(config: ExperimentConfig) -> ExperimentConfig:
    """Fill in the default churn scenario when the config carries none.

    The default realization is seeded from the experiment seed so sweep
    grids over seeds vary the churn too.
    """
    if config.scenario is not None:
        return config
    scenario = ScenarioConfig.default_churn().with_overrides(seed=config.seed)
    if config.population:
        scenario = scenario.with_overrides(
            participants=DEFAULT_POPULATION_COHORT
        )
    return config.with_overrides(scenario=scenario.to_dict())


def _scenario_budget(
    config: ExperimentConfig, k: int | None, time_budget: float | None
) -> tuple[int, int, float, int]:
    """(dimension, k, time_budget, max_rounds) both drivers share.

    k defaults to Fig. 4's sparsity regime (see run_fig4); the budget is
    counted in *base* round times — scenarios re-time rounds, so the
    nominal (profile-free) k-GS round defines a comparable budget.
    """
    dimension = build_model(config).dimension
    if k is None:
        cohort = config.num_clients
        if config.population:
            # Virtual populations never run full-participation rounds;
            # the per-round cohort is the scenario's participants target.
            cohort = int(
                (config.scenario or {}).get("participants")
                or DEFAULT_POPULATION_COHORT
            )
        k = max(2, int(0.4 * dimension / cohort))
    if time_budget is None:
        base = TimingModel(dimension=dimension, comm_time=config.comm_time)
        time_budget = config.num_rounds * base.sparse_round(k, k).total
    return dimension, k, time_budget, max(1, 3 * config.num_rounds)


def _step_for_budget(
    trainer: FLTrainer, k: int, time_budget: float, max_rounds: int
) -> None:
    """Fixed-k rounds until the normalized clock exhausts the budget."""
    while (
        trainer.clock < time_budget
        and trainer.round_index < max_rounds
    ):
        trainer.step(k)


def _evaluated_curves(
    history: TrainingHistory,
) -> tuple[list[float], list[float], list[float], list[float]]:
    """(time, loss, time, accuracy) series of a history's evaluated rounds."""
    xs, losses, acc_xs, accs = [], [], [], []
    for record in history:
        if record.loss == record.loss:  # evaluated rounds only
            xs.append(record.cumulative_time)
            losses.append(record.loss)
            if record.accuracy is not None:
                acc_xs.append(record.cumulative_time)
                accs.append(record.accuracy)
    return xs, losses, acc_xs, accs


def run_scenario(
    config: ExperimentConfig,
    k: int | None = None,
    time_budget: float | None = None,
) -> ScenarioRunResult:
    """Run both methods under the config's scenario for equal time."""
    config = resolve_scenario_config(config)
    dimension, k, time_budget, max_rounds = _scenario_budget(
        config, k, time_budget
    )

    loss_fig = FigureData(title="Scenario loss vs normalized time")
    acc_fig = FigureData(title="Scenario accuracy vs normalized time")
    k_fig = FigureData(title="Scenario k_m traces")
    delivery_fig = FigureData(title="Scenario per-round delivery")
    result = ScenarioRunResult(
        k=k, scenario=dict(config.scenario or {}), loss_vs_time=loss_fig,
        accuracy_vs_time=acc_fig, k_traces=k_fig, delivery=delivery_fig,
    )

    backend = build_backend(config)
    telemetry = build_telemetry(config)
    try:
        for method in METHODS:
            telemetry.annotate(figure="scenario", method=method)
            model = build_model(config)
            federation = build_federation(config)
            # Population-scale runs derive availability/profiles from
            # per-cid laws — enumerating client ids would be O(N).
            client_ids = (
                [] if config.population
                else [c.client_id for c in federation.clients]
            )
            timing, scenario = build_scenario(config, client_ids, dimension)
            common = dict(
                learning_rate=config.learning_rate,
                batch_size=config.batch_size,
                eval_every=config.eval_every,
                eval_max_samples=config.eval_max_samples,
                backend=backend,
                scenario=scenario,
                telemetry=(telemetry if telemetry.enabled else None),
                seed=config.seed,
            )
            if method == "fixed-k":
                trainer = FLTrainer(
                    model, federation, FABTopK(), timing=timing, **common
                )
                _step_for_budget(trainer, k, time_budget, max_rounds)
            else:
                trainer = AdaptiveKTrainer(
                    model, federation, FABTopK(),
                    make_policy("proposed", config, dimension),
                    timing, **common,
                )
                trainer.run_for_time(time_budget, max_rounds=max_rounds)

            result.histories[method] = trainer.history
            assert scenario is not None
            result.stats[method] = scenario.stats.to_dict()
            xs, losses, acc_xs, accs = _evaluated_curves(trainer.history)
            loss_fig.add(method, xs, losses)
            acc_fig.add(method, acc_xs, accs)
            k_fig.add(
                method,
                [float(r.round_index) for r in trainer.history],
                trainer.history.ks(),
            )
            rounds = scenario.stats.rounds
            delivery_fig.add(
                f"{method} arrived",
                [float(r.round_index) for r in rounds],
                [float(r.arrived) for r in rounds],
            )
            cumulative, dropped = 0, []
            for r in rounds:
                cumulative += len(r.dropped_ids)
                dropped.append(float(cumulative))
            delivery_fig.add(
                f"{method} dropped (cumulative)",
                [float(r.round_index) for r in rounds],
                dropped,
            )
            delivery_fig.notes.append(
                f"{method}: {json.dumps(result.stats[method], sort_keys=True)}"
            )
    finally:
        # Nested so a backend teardown failure still flushes and closes
        # the telemetry sink (buffered events must survive mid-run raises).
        try:
            backend.close()
        finally:
            telemetry.close()
    loss_fig.notes.append(f"scenario: {json.dumps(result.scenario, sort_keys=True)}")
    return result


def run_dirichlet_sweep(
    config: ExperimentConfig,
    alphas: tuple[float, ...] | list[float],
    k: int | None = None,
    time_budget: float | None = None,
) -> FigureData:
    """Scenario comparison across Dirichlet(α) label-skew severities.

    One :func:`run_scenario` per α (same scenario realization, same time
    budget), with the federation re-partitioned by
    :func:`~repro.data.partition.partition_dirichlet` — small α means
    near-single-class clients, large α approaches IID.  The panel
    overlays every method's loss-vs-time curve per α and notes each α's
    deadline drop rates, so one figure answers how label skew interacts
    with churn + partial aggregation.
    """
    if not alphas:
        raise ValueError("need at least one Dirichlet α")
    if config.population:
        raise ValueError(
            "the Dirichlet sweep re-partitions an eager dataset; virtual "
            "populations (population > 0) carry their own per-client "
            "generator"
        )
    fig = FigureData(title="Scenario loss vs normalized time across Dirichlet α")
    for alpha in alphas:
        variant = config.with_overrides(
            partition="dirichlet", dirichlet_alpha=float(alpha)
        )
        result = run_scenario(variant, k=k, time_budget=time_budget)
        for series in result.loss_vs_time.series:
            fig.add(f"{series.label} α={alpha:g}", series.x, series.y)
        fig.notes.append(
            f"α={alpha:g}: drop rates "
            + json.dumps(
                {m: round(result.drop_rate(m), 4) for m in METHODS},
                sort_keys=True,
            )
        )
    return fig


def _times_to_loss(
    histories: dict[str, TrainingHistory], target: float
) -> dict[str, float]:
    """Per-label simulated time to first recorded loss <= target.

    ``inf`` for labels that never reach it — the comparison both the
    adaptive-vs-best-fixed and the async-vs-sync acceptance rest on.
    """
    times: dict[str, float] = {}
    for label, history in histories.items():
        times[label] = float("inf")
        for record in history:
            if record.loss == record.loss and record.loss <= target:
                times[label] = record.cumulative_time
                break
    return times


def _last_losses(histories: dict[str, TrainingHistory]) -> dict[str, float]:
    """Last evaluated loss per label (the reachable-target anchor)."""
    losses: dict[str, float] = {}
    for label, history in histories.items():
        evaluated = [r.loss for r in history if r.loss == r.loss]
        losses[label] = evaluated[-1] if evaluated else float("inf")
    return losses


# ----------------------------------------------------------------------
# Deadline-policy comparison (fixed vs cycling vs adaptive)
# ----------------------------------------------------------------------
@dataclass
class DeadlineAdaptationResult:
    """Per-policy loss curves + deadline traces of one comparison."""

    k: int
    scenario: dict
    loss_vs_time: FigureData
    deadline_traces: FigureData
    histories: dict[str, TrainingHistory] = field(default_factory=dict)
    stats: dict[str, dict] = field(default_factory=dict)

    def time_to_loss(self, target: float) -> dict[str, float]:
        """Per-policy simulated time to first recorded loss <= target."""
        return _times_to_loss(self.histories, target)

    def final_losses(self) -> dict[str, float]:
        """Last evaluated loss per policy (the reachable-target anchor)."""
        return _last_losses(self.histories)


def supports_deadline_comparison(scenario: ScenarioConfig) -> bool:
    """Whether :func:`deadline_variants` can derive a regime to compare.

    Availability-only scenarios (``deadline=None``) and degenerate
    all-equal schedules have no deadline interval — callers (the sweep
    collector, the CLI) skip the comparison panel instead of failing a
    run whose primary artifacts are fine.
    """
    if scenario.deadline_policy == "adaptive":
        return True
    if isinstance(scenario.deadline, tuple):
        return min(scenario.deadline) < max(scenario.deadline)
    return scenario.deadline is not None


def deadline_variants(
    scenario: ScenarioConfig,
) -> dict[str, ScenarioConfig]:
    """Fixed-endpoint / cycling / adaptive variants of one regime.

    The deadline interval comes from the scenario itself: an adaptive
    config's ``[deadline_min, deadline_max]``, a cycling schedule's
    (min, max), or ``[d/2, 2d]`` around a fixed deadline.  The fixed
    variants sit at the interval's endpoints (the tight and the loose
    extreme the adaptive policy searches between); the cycling variant
    keeps the scenario's schedule (or three tight rounds plus one
    amnesty round when the scenario had none).
    """
    schedule: tuple[float, ...] | None = None
    if scenario.deadline_policy == "adaptive":
        dmin, dmax = scenario.deadline_min, scenario.deadline_max
    elif isinstance(scenario.deadline, tuple):
        dmin, dmax = min(scenario.deadline), max(scenario.deadline)
        schedule = scenario.deadline
    elif scenario.deadline is not None:
        dmin, dmax = scenario.deadline / 2.0, scenario.deadline * 2.0
    else:
        raise ValueError(
            "deadline comparison needs a scenario with a deadline (or an "
            "adaptive deadline interval)"
        )
    assert dmin is not None and dmax is not None
    if not dmin < dmax:
        raise ValueError(
            f"degenerate deadline interval [{dmin}, {dmax}]: the scenario's "
            "deadlines are all equal, nothing to compare"
        )
    if schedule is None:
        schedule = (dmin, dmin, dmin, dmax)
    base = scenario.with_overrides(
        deadline=None, deadline_policy="fixed",
        deadline_min=None, deadline_max=None,
    )
    return {
        f"fixed-{dmin:g}": base.with_overrides(deadline=dmin),
        f"fixed-{dmax:g}": base.with_overrides(deadline=dmax),
        "cycling": base.with_overrides(
            deadline=schedule, deadline_policy="cycling"
        ),
        "adaptive": base.with_overrides(
            deadline_policy="adaptive",
            deadline_min=dmin, deadline_max=dmax,
        ),
    }


def run_deadline_adaptation(
    config: ExperimentConfig,
    k: int | None = None,
    time_budget: float | None = None,
) -> DeadlineAdaptationResult:
    """Run the fixed-k trainer under every deadline variant, equal time.

    All variants share the availability realization, straggler profiles
    and cohort sampling (same scenario seed); only the deadline policy
    differs — so the panel isolates what learning the deadline buys.
    """
    config = resolve_scenario_config(config)
    dimension, k, time_budget, max_rounds = _scenario_budget(
        config, k, time_budget
    )
    assert config.scenario is not None
    variants = deadline_variants(ScenarioConfig.from_dict(config.scenario))

    loss_fig = FigureData(title="Deadline policies: loss vs normalized time")
    trace_fig = FigureData(title="Deadline policies: per-round deadline")
    result = DeadlineAdaptationResult(
        k=k, scenario=dict(config.scenario), loss_vs_time=loss_fig,
        deadline_traces=trace_fig,
    )

    backend = build_backend(config)
    telemetry = build_telemetry(config)
    try:
        for label, variant in variants.items():
            telemetry.annotate(figure="scenario-deadline", method=label)
            model = build_model(config)
            federation = build_federation(config)
            client_ids = (
                [] if config.population
                else [c.client_id for c in federation.clients]
            )
            timing, scenario = build_scenario(
                config.with_overrides(scenario=variant.to_dict()),
                client_ids, dimension,
            )
            assert scenario is not None
            trainer = FLTrainer(
                model, federation, FABTopK(), timing=timing,
                learning_rate=config.learning_rate,
                batch_size=config.batch_size,
                eval_every=config.eval_every,
                eval_max_samples=config.eval_max_samples,
                backend=backend, scenario=scenario,
                telemetry=(telemetry if telemetry.enabled else None),
                seed=config.seed,
            )
            _step_for_budget(trainer, k, time_budget, max_rounds)
            result.histories[label] = trainer.history
            result.stats[label] = scenario.stats.to_dict()
            xs, losses, _, _ = _evaluated_curves(trainer.history)
            loss_fig.add(label, xs, losses)
            rounds = scenario.stats.rounds
            trace_fig.add(
                label,
                [float(r.round_index) for r in rounds],
                [
                    float(r.deadline) if r.deadline is not None else 0.0
                    for r in rounds
                ],
            )
    finally:
        # Nested so a backend teardown failure still flushes and closes
        # the telemetry sink (buffered events must survive mid-run raises).
        try:
            backend.close()
        finally:
            telemetry.close()
    targets = result.final_losses()
    reachable = max(targets.values())
    loss_fig.notes.append(
        "time to shared target loss "
        f"{reachable:.6g}: {json.dumps(result.time_to_loss(reachable), sort_keys=True)}"
    )
    loss_fig.notes.append(
        f"scenario: {json.dumps(result.scenario, sort_keys=True)}"
    )
    return result


# ----------------------------------------------------------------------
# Asynchronous staleness-weighted commits vs the synchronous barrier
# ----------------------------------------------------------------------
@dataclass
class AsyncComparisonResult:
    """Per-variant loss curves + staleness traces of one comparison."""

    k: int
    commit_count: int
    scenario: dict
    loss_vs_time: FigureData
    staleness: FigureData
    histories: dict[str, TrainingHistory] = field(default_factory=dict)

    def time_to_loss(self, target: float) -> dict[str, float]:
        """Per-variant simulated time to first recorded loss <= target."""
        return _times_to_loss(self.histories, target)

    def final_losses(self) -> dict[str, float]:
        """Last evaluated loss per variant (the reachable-target anchor)."""
        return _last_losses(self.histories)


def resolve_commit_count(scenario: ScenarioConfig, num_clients: int) -> int:
    """The async commit batch size a scenario config implies.

    An explicit ``commit_count`` wins; 0 derives half the target cohort
    (the scenario's ``participants``, else the whole population) — the
    server commits once the fast half lands, so stragglers arrive stale
    instead of stalling the round.
    """
    if scenario.commit_count:
        return scenario.commit_count
    cohort = scenario.participants or num_clients
    return max(1, cohort // 2)


def run_async_comparison(
    config: ExperimentConfig,
    k: int | None = None,
    time_budget: float | None = None,
) -> AsyncComparisonResult:
    """Sync barrier vs async staleness-weighted commits, equal sim time.

    All variants share the availability realization, straggler profiles
    and cohort sampling (same scenario seed) with the deadline cleared —
    the synchronous baseline pays the full barrier (every round waits
    for its slowest participant under the heterogeneous timing model),
    while the async variants commit after ``commit_count`` arrivals and
    differ only in their staleness discount
    (:data:`repro.fl.async_engine.STALENESS_DISCOUNT_KINDS`).  The panel
    answers the question the async engine exists for: does decoupling
    commits from stragglers buy convergence per simulated second, and
    does discounting staleness keep the late uploads from hurting?
    """
    config = resolve_scenario_config(config)
    if config.population:
        raise ValueError(
            "the async comparison enumerates straggler profiles; virtual "
            "populations (population > 0) are not supported"
        )
    dimension, k, time_budget, max_rounds = _scenario_budget(
        config, k, time_budget
    )
    assert config.scenario is not None
    scenario_config = ScenarioConfig.from_dict(config.scenario)
    commit_count = resolve_commit_count(scenario_config, config.num_clients)
    # The deadline family is the synchronous answer to stragglers; both
    # sides run without it so the comparison isolates the commit
    # discipline (the async engine ignores deadline hooks by design).
    base = scenario_config.with_overrides(
        deadline=None, deadline_policy="fixed",
        deadline_min=None, deadline_max=None,
    )

    loss_fig = FigureData(title="Async commits: loss vs simulated time")
    stale_fig = FigureData(title="Async commits: per-commit staleness")
    result = AsyncComparisonResult(
        k=k, commit_count=commit_count, scenario=dict(config.scenario),
        loss_vs_time=loss_fig, staleness=stale_fig,
    )

    backend = build_backend(config)
    telemetry = build_telemetry(config)
    try:
        for label in ASYNC_VARIANTS:
            telemetry.annotate(figure="scenario-async", method=label)
            model = build_model(config)
            federation = build_federation(config)
            client_ids = [c.client_id for c in federation.clients]
            timing, scenario = build_scenario(
                config.with_overrides(scenario=base.to_dict()),
                client_ids, dimension,
            )
            assert scenario is not None
            common = dict(
                learning_rate=config.learning_rate,
                batch_size=config.batch_size,
                eval_every=config.eval_every,
                eval_max_samples=config.eval_max_samples,
                backend=backend,
                scenario=scenario,
                telemetry=(telemetry if telemetry.enabled else None),
                seed=config.seed,
            )
            if label == "sync":
                trainer = FLTrainer(
                    model, federation, FABTopK(), timing=timing, **common
                )
            else:
                trainer = AsyncFLTrainer(
                    model, federation, FABTopK(), timing=timing,
                    discount=label.removeprefix("async-"),
                    commit_count=commit_count, **common,
                )
            _step_for_budget(trainer, k, time_budget, max_rounds)
            result.histories[label] = trainer.history
            xs, losses, _, _ = _evaluated_curves(trainer.history)
            loss_fig.add(label, xs, losses)
            if isinstance(trainer, AsyncFLTrainer):
                trace = trainer.staleness_history
                stale_fig.add(
                    label,
                    [float(i + 1) for i in range(len(trace))],
                    trace,
                )
                if trainer.discount.adaptive:
                    exponents = trainer.discount.exponent_history
                    stale_fig.add(
                        f"{label} exponent",
                        [float(i + 1) for i in range(len(exponents))],
                        [float(a) for a in exponents],
                    )
    finally:
        # Nested so a backend teardown failure still flushes and closes
        # the telemetry sink (buffered events must survive mid-run raises).
        try:
            backend.close()
        finally:
            telemetry.close()
    reachable = max(result.final_losses().values())
    loss_fig.notes.append(
        "time to shared target loss "
        f"{reachable:.6g}: "
        f"{json.dumps(result.time_to_loss(reachable), sort_keys=True)}"
    )
    loss_fig.notes.append(f"commit_count: {commit_count}")
    loss_fig.notes.append(
        f"scenario: {json.dumps(result.scenario, sort_keys=True)}"
    )
    return result
