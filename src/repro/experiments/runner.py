"""Shared experiment machinery: builders, series containers, text tables."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field

import numpy as np

from repro.data.partition import (
    FederatedDataset,
    partition_by_class,
    partition_by_writer,
    partition_dirichlet,
)
from repro.data.synthetic import make_cifar_like, make_femnist_like
from repro.data.virtual import VirtualFederation
from repro.experiments.config import ExperimentConfig
from repro.fl.backends import ExecutionBackend, resolve_backend
from repro.nn.flat import FlatModel
from repro.nn.models import make_cnn, make_mlp
from repro.online.interval import SearchInterval
from repro.simulation.timing import TimingModel


def build_federation(config: ExperimentConfig):
    """Dataset + partition exactly as the paper's two settings.

    MLP configs get flat feature vectors; CNN configs
    (``extras={"model_type": "cnn"}``) keep the (channels, H, W) layout.
    ``config.population > 0`` swaps in a femnist-like
    :class:`~repro.data.virtual.VirtualFederation` whose clients
    regenerate on demand (O(cohort) rounds at any N);
    ``config.partition == "dirichlet"`` applies the Dirichlet(α)
    label-skew split to either eager dataset.
    """
    flatten = config.extras.get("model_type", "mlp") != "cnn"
    if config.population:
        return VirtualFederation.build(
            population=config.population,
            samples_per_client=config.samples_per_client,
            num_classes=config.num_classes,
            image_size=config.image_size,
            classes_per_writer=min(
                config.classes_per_writer, config.num_classes
            ),
            flatten=flatten,
            seed=config.seed,
        )
    if config.dataset == "femnist":
        ds = make_femnist_like(
            num_writers=config.num_clients,
            samples_per_writer=config.samples_per_client,
            num_classes=config.num_classes,
            image_size=config.image_size,
            classes_per_writer=min(config.classes_per_writer, config.num_classes),
            flatten=flatten,
            seed=config.seed,
        )
        if config.partition == "dirichlet":
            return partition_dirichlet(
                ds, num_clients=config.num_clients,
                alpha=config.dirichlet_alpha, seed=config.seed,
            )
        return partition_by_writer(ds, seed=config.seed)
    ds = make_cifar_like(
        num_clients=config.num_clients,
        samples_per_client=config.samples_per_client,
        num_classes=config.num_classes,
        image_size=config.image_size,
        flatten=flatten,
        seed=config.seed,
    )
    if config.partition == "dirichlet":
        return partition_dirichlet(
            ds, num_clients=config.num_clients,
            alpha=config.dirichlet_alpha, seed=config.seed,
        )
    return partition_by_class(ds, num_clients=config.num_clients, seed=config.seed)


def build_model(config: ExperimentConfig) -> FlatModel:
    """Fresh model with the config's architecture and seed.

    Default is an MLP (fast, laptop-scale); set
    ``extras={"model_type": "cnn"}`` to use the paper's CNN family
    (requires ``image_size`` divisible by 4 and image inputs).
    """
    channels = 1 if config.dataset == "femnist" else 3
    model_type = config.extras.get("model_type", "mlp")
    if model_type == "cnn":
        return make_cnn(
            image_size=config.image_size,
            channels=channels,
            num_classes=config.num_classes,
            dense_width=config.hidden[0] if config.hidden else 64,
            seed=config.seed,
        )
    if model_type != "mlp":
        raise ValueError(f"unknown model_type {model_type!r}")
    input_dim = channels * config.image_size**2
    return make_mlp(
        input_dim, config.num_classes, hidden=config.hidden, seed=config.seed
    )


def build_timing(
    config: ExperimentConfig, dimension: int, comm_time: float | None = None
) -> TimingModel:
    return TimingModel(
        dimension=dimension,
        comm_time=comm_time if comm_time is not None else config.comm_time,
    )


def build_scenario(
    config: ExperimentConfig,
    client_ids: list[int],
    dimension: int,
    comm_time: float | None = None,
):
    """(timing, scenario) for the config's deployment scenario, if any.

    With ``config.scenario`` unset this is just :func:`build_timing` and
    ``None`` — the paper's ideal population.  Otherwise the scenario's
    straggler profiles seed a :class:`~repro.simulation.heterogeneous.
    HeterogeneousTimingModel` (so availability-only scenarios still pay
    the straggler tail the deadline policy would cut), and the returned
    :class:`~repro.scenarios.DeploymentScenario` is freshly built —
    scenarios hold mutable per-run state (availability chains, sampling
    RNG, and under ``deadline_policy: "adaptive"`` the online deadline
    walk), so call this once per trainer.
    """
    if config.scenario is None:
        return build_timing(config, dimension, comm_time), None
    # Imported here: repro.scenarios pulls in the engine, which this
    # module's other builders do not need.
    from repro.scenarios import DeploymentScenario, ScenarioConfig
    from repro.simulation.heterogeneous import HeterogeneousTimingModel

    scenario_config = ScenarioConfig.from_dict(config.scenario)
    if config.population:
        # Population-scale path: per-cid laws instead of enumerated
        # lists — O(cohort) per round at any N (``client_ids`` unused).
        from repro.scenarios import build_population_scenario
        from repro.simulation.population import PopulationModel

        model = PopulationModel.from_scenario_config(
            scenario_config, config.population
        )
        if scenario_config.slow_fraction > 0.0:
            timing = HeterogeneousTimingModel(
                dimension=dimension,
                comm_time=(
                    comm_time if comm_time is not None else config.comm_time
                ),
                profiles=model.profiles,
            )
        else:
            timing = build_timing(config, dimension, comm_time)
        scenario = build_population_scenario(
            scenario_config, config.population, timing
        )
        return timing, scenario
    profiles = scenario_config.build_profiles(client_ids)
    heterogeneous = any(
        p.compute_factor != 1.0 or p.comm_factor != 1.0 for p in profiles
    )
    if heterogeneous:
        timing = HeterogeneousTimingModel(
            dimension=dimension,
            comm_time=comm_time if comm_time is not None else config.comm_time,
            profiles=profiles,
        )
    else:
        timing = build_timing(config, dimension, comm_time)
    scenario = DeploymentScenario.build(
        scenario_config, client_ids, timing, profiles
    )
    return timing, scenario


def build_telemetry(config: ExperimentConfig):
    """The config's telemetry: a JSONL-backed instance, or the no-op.

    Figure drivers open this once per run, pass it into every trainer,
    and close it in their ``finally`` block so counters flush with the
    backend teardown.  Telemetry is observation-only — it consumes no
    RNG and touches no numeric state, so artifacts are identical with
    or without it.
    """
    from repro.obs import open_telemetry

    return open_telemetry(config.telemetry)


def build_backend(config: ExperimentConfig) -> ExecutionBackend:
    """The execution backend the config's trainers should run on.

    ``config.backend`` is a name ("serial", "vectorized" or "sharded");
    every figure driver builds one instance per run and passes it into
    all its trainers, so a whole experiment switches backends from one
    config field (or the CLI's ``--backend``/``--jobs`` flags).
    Histories are backend-independent — only wall-clock speed changes.
    Sharded backends honor ``config.jobs`` (0 = all usable CPUs); the
    driver must call ``backend.close()`` when its trainers are done.
    """
    return resolve_backend(config.backend, jobs=config.jobs)


def build_search_interval(config: ExperimentConfig, dimension: int) -> SearchInterval:
    """K = [0.002·D, D] as in the paper's Fig. 5 setup."""
    kmin = max(2.0, config.kmin_fraction * dimension)
    return SearchInterval(kmin, float(dimension))


@dataclass
class Series:
    """One labelled (x, y) curve of a figure."""

    label: str
    x: list[float]
    y: list[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have equal length")

    def y_at(self, x_query: float) -> float:
        """Step-interpolated y at x_query (last value whose x <= query)."""
        if not self.x:
            raise ValueError("empty series")
        result = self.y[0]
        for xv, yv in zip(self.x, self.y):
            if xv <= x_query:
                result = yv
            else:
                break
        return result


@dataclass
class FigureData:
    """A figure as a set of labelled curves plus free-form notes."""

    title: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, label: str, x: list[float], y: list[float]) -> None:
        self.series.append(Series(label, list(x), list(y)))

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    def labels(self) -> list[str]:
        return [s.label for s in self.series]

    def to_csv(self) -> str:
        """Long-format CSV: series,x,y."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["series", "x", "y"])
        for s in self.series:
            for xv, yv in zip(s.x, s.y):
                writer.writerow([s.label, f"{xv:.6g}", f"{yv:.6g}"])
        return buf.getvalue()


def text_table(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width text table used by the benchmark reports."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def contribution_cdf(contributions: dict[int, int]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of per-client contributed element counts (Fig. 4 right)."""
    if not contributions:
        raise ValueError("no contributions recorded")
    values = np.sort(np.array(list(contributions.values()), dtype=float))
    cdf = np.arange(1, values.size + 1) / values.size
    return values, cdf
