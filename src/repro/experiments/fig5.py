"""Fig. 5 — adaptive-k online-learning methods compared (Section V-B).

Four policies drive k during FAB-top-k training at β = 10:

1. Proposed: Algorithm 3 + derivative-sign estimator
   (α = 1.5, M_u = 20, kmin = 0.002·D, kmax = D — the paper's settings).
2. Value-based gradient (derivative) descent.
3. EXP3 over (discretized) arms.
4. Continuous one-point bandit.

Outputs loss/accuracy vs time plus the k_m trace of every method (the
bottom row of Fig. 5, which shows the proposed method's stability against
the bandits' wild oscillation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    FigureData,
    build_federation,
    build_backend,
    build_model,
    build_search_interval,
    build_telemetry,
    build_timing,
)
from repro.fl.metrics import TrainingHistory
from repro.online.adaptive_trainer import AdaptiveKTrainer
from repro.online.algorithm3 import AdaptiveSignOGD
from repro.online.baselines import ContinuousBandit, Exp3Policy, ValueBasedGD
from repro.online.policy import KPolicy, SignPolicy
from repro.sparsify.fab_topk import FABTopK

POLICIES = ("proposed", "value-based", "exp3", "continuous-bandit")


@dataclass
class Fig5Result:
    loss_vs_time: FigureData
    accuracy_vs_time: FigureData
    k_traces: FigureData
    histories: dict[str, TrainingHistory] = field(default_factory=dict)

    def loss_at_time(self, t: float) -> dict[str, float]:
        return {s.label: s.y_at(t) for s in self.loss_vs_time.series}

    def k_stability(self) -> dict[str, float]:
        """Std-dev of each method's k trace over its second half."""
        out = {}
        for s in self.k_traces.series:
            tail = np.array(s.y[len(s.y) // 2:])
            out[s.label] = float(tail.std())
        return out


def make_policy(
    name: str, config: ExperimentConfig, dimension: int
) -> KPolicy:
    """Instantiate a Fig. 5 policy by name with the paper's parameters."""
    interval = build_search_interval(config, dimension)
    if name == "proposed":
        return SignPolicy(
            AdaptiveSignOGD(
                interval, alpha=config.alpha, update_window=config.update_window
            )
        )
    if name == "value-based":
        return ValueBasedGD(interval)
    if name == "exp3":
        return Exp3Policy(interval, num_arms=32, seed=config.seed)
    if name == "continuous-bandit":
        return ContinuousBandit(interval, seed=config.seed)
    raise ValueError(f"unknown policy {name!r}")


def run_fig5(
    config: ExperimentConfig,
    policies: tuple[str, ...] = POLICIES,
    comm_time: float | None = None,
    num_rounds: int | None = None,
) -> Fig5Result:
    num_rounds = num_rounds if num_rounds is not None else config.num_rounds
    loss_fig = FigureData(title="Fig5 loss vs normalized time")
    acc_fig = FigureData(title="Fig5 accuracy vs normalized time")
    k_fig = FigureData(title="Fig5 k_m traces")
    result = Fig5Result(loss_vs_time=loss_fig, accuracy_vs_time=acc_fig,
                        k_traces=k_fig)

    backend = build_backend(config)
    telemetry = build_telemetry(config)
    try:
        for name in policies:
            telemetry.annotate(figure="fig5", method=name)
            model = build_model(config)
            federation = build_federation(config)
            timing = build_timing(config, model.dimension, comm_time)
            policy = make_policy(name, config, model.dimension)
            trainer = AdaptiveKTrainer(
                model, federation, FABTopK(), policy, timing,
                learning_rate=config.learning_rate,
                batch_size=config.batch_size,
                eval_every=config.eval_every,
                eval_max_samples=config.eval_max_samples,
                backend=backend,
                telemetry=(telemetry if telemetry.enabled else None),
                seed=config.seed,
            )
            trainer.run(num_rounds)
            result.histories[name] = trainer.history
            xs, losses, accs, acc_xs = [], [], [], []
            for record in trainer.history:
                if record.loss == record.loss:
                    xs.append(record.cumulative_time)
                    losses.append(record.loss)
                    if record.accuracy is not None:
                        acc_xs.append(record.cumulative_time)
                        accs.append(record.accuracy)
            loss_fig.add(name, xs, losses)
            acc_fig.add(name, acc_xs, accs)
            k_fig.add(
                name,
                [float(r.round_index) for r in trainer.history],
                trainer.history.ks(),
            )
    finally:
        # Nested so a backend teardown failure still flushes and closes
        # the telemetry sink (buffered events must survive mid-run raises).
        try:
            backend.close()
        finally:
            telemetry.close()
    return result
