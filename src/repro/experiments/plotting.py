"""Terminal (ASCII) rendering of figures.

matplotlib is unavailable in the reproduction environment, so this module
renders :class:`~repro.experiments.runner.FigureData` as fixed-grid ASCII
charts — enough to see the orderings and trends the paper's figures show.
Used by ``python -m repro <fig> --plot`` and handy in notebooks/logs.
"""

from __future__ import annotations

import math

from repro.experiments.runner import FigureData

_MARKERS = "ox+*#@%&"


def render_figure(
    figure: FigureData,
    width: int = 72,
    height: int = 20,
    logy: bool = False,
) -> str:
    """Render all series of ``figure`` on one ASCII grid.

    Each series gets a marker character; the legend maps markers to
    labels.  Points are nearest-cell rasterized; later series overwrite
    earlier ones where they collide.
    """
    if width < 16 or height < 6:
        raise ValueError("grid too small to render")
    series = [s for s in figure.series if len(s.x) > 0]
    if not series:
        raise ValueError("figure has no data")
    if len(series) > len(_MARKERS):
        raise ValueError(f"at most {len(_MARKERS)} series supported")

    xs = [x for s in series for x in s.x]
    ys = [y for s in series for y in s.y if _finite(y)]
    if not ys:
        raise ValueError("figure has no finite y values")
    x_lo, x_hi = min(xs), max(xs)
    y_values = [_transform(y, logy) for y in ys]
    y_lo, y_hi = min(y_values), max(y_values)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, s in zip(_MARKERS, series):
        for x, y in zip(s.x, s.y):
            if not _finite(y):
                continue
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((_transform(y, logy) - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    top_label = f"{_untransform(y_hi, logy):.4g}"
    bottom_label = f"{_untransform(y_lo, logy):.4g}"
    label_width = max(len(top_label), len(bottom_label))
    lines = [figure.title]
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(label_width)
        elif i == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_axis_labels = (
        " " * label_width + f"  {x_lo:.4g}" + " " * max(
            1, width - len(f"{x_lo:.4g}") - len(f"{x_hi:.4g}") - 2
        ) + f"{x_hi:.4g}"
    )
    lines.append(x_axis_labels)
    for marker, s in zip(_MARKERS, series):
        lines.append(f"  {marker} = {s.label}")
    return "\n".join(lines)


def _finite(y: float) -> bool:
    return y == y and abs(y) != math.inf


def _transform(y: float, logy: bool) -> float:
    if logy:
        if y <= 0:
            raise ValueError("logy requires positive y values")
        return math.log10(y)
    return y


def _untransform(y: float, logy: bool) -> float:
    return 10.0**y if logy else y
