"""Per-figure reproduction drivers.

Each ``figN`` module reproduces the corresponding figure of the paper's
evaluation (Section V); see DESIGN.md §4 for the experiment index and
EXPERIMENTS.md for paper-vs-measured results.  All drivers take an
:class:`~repro.experiments.config.ExperimentConfig` so the same code runs
at smoke-test, benchmark, and paper scale.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.fig6 import Fig6Result, run_fig6
from repro.experiments.fig7 import CrossApplicationResult, run_fig7, run_fig8
from repro.experiments.runner import build_federation, build_model, build_timing

__all__ = [
    "CrossApplicationResult",
    "ExperimentConfig",
    "Fig1Result",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "build_federation",
    "build_model",
    "build_timing",
    "run_fig1",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
]
