"""FL server: weighted aggregation of selected residual elements.

Implements Algorithm 1, lines 8–11: given the downlink index set ``J``
(chosen by the sparsifier) the server computes

    b_j = (1/C) Σ_i C_i a_ij · 1[j ∈ J_i]       for j ∈ J,

i.e. a client contributes to coordinate ``j`` only if it actually uploaded
that coordinate.
"""

from __future__ import annotations

import numpy as np

from repro.sparsify.base import (
    ClientUpload,
    DownlinkMessage,
    SelectionResult,
)
from repro.sparsify.base import SparseVector


class Server:
    """Stateless aggregator for the synchronized-GS protocol."""

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise ValueError("dimension must be positive")
        self.dimension = dimension

    def aggregate(
        self, uploads: list[ClientUpload], selection: SelectionResult
    ) -> DownlinkMessage:
        """Aggregate uploaded residuals over the selected index set."""
        if not uploads:
            raise ValueError("no uploads to aggregate")
        total_weight = float(sum(up.sample_count for up in uploads))
        selected = selection.indices  # sorted unique
        values = np.zeros(selected.size)
        for up in uploads:
            # Positions of this client's uploaded indices within `selected`.
            pos = np.searchsorted(selected, up.payload.indices)
            in_range = pos < selected.size
            pos_clipped = np.minimum(pos, selected.size - 1)
            hits = in_range & (selected[pos_clipped] == up.payload.indices)
            weight = up.sample_count / total_weight
            np.add.at(values, pos_clipped[hits], weight * up.payload.values[hits])
        payload = SparseVector(
            indices=selected, values=values, dimension=self.dimension
        )
        return DownlinkMessage(payload=payload)
