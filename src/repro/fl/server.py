"""FL server: weighted aggregation of selected residual elements.

Implements Algorithm 1, lines 8–11: given the downlink index set ``J``
(chosen by the sparsifier) the server computes

    b_j = (1/C) Σ_i C_i a_ij · 1[j ∈ J_i]       for j ∈ J,

i.e. a client contributes to coordinate ``j`` only if it actually uploaded
that coordinate.
"""

from __future__ import annotations

import numpy as np

from repro.sparsify.base import (
    ClientUpload,
    DownlinkMessage,
    SelectionResult,
)
from repro.sparsify.base import SparseVector


class Server:
    """Aggregator for the synchronized-GS protocol.

    Stateless by default (the paper's weighted mean).  An optional
    :class:`~repro.fl.robust.RobustAggregator` replaces the mean with a
    Byzantine-tolerant statistic; with ``aggregator=None`` the original
    mean path runs byte-for-byte unchanged.
    """

    def __init__(self, dimension: int, aggregator=None) -> None:
        if dimension < 1:
            raise ValueError("dimension must be positive")
        self.dimension = dimension
        self.aggregator = aggregator

    def aggregate(
        self,
        uploads: list[ClientUpload],
        selection: SelectionResult,
        total_weight: float | None = None,
        commit: bool = True,
    ) -> DownlinkMessage:
        """Aggregate uploaded residuals over the selected index set.

        When all uploads carry the same number of pairs (the common top-k
        case) the membership tests run on one stacked matrix and a single
        ``np.add.at`` performs the accumulation.  ``np.add.at`` applies
        its updates in element order, and the stacked operands are laid
        out client-major, so each coordinate accumulates its terms in
        exactly the per-client order of the fallback loop — the aggregate
        is bit-identical, not merely equal in expectation.

        ``total_weight`` overrides the normalizing constant ``C``.  By
        default ``C`` is the received uploads' total sample count; under
        deadline-driven partial aggregation a deployment scenario may
        instead pass the *sampled cohort's* total weight, so an update
        missing some uploads is scaled down rather than renormalized
        (unbiased with respect to the cohort).

        ``commit`` only matters with a robust aggregator: counterfactual
        re-aggregations (deadline probes) pass ``commit=False`` so a
        stateful aggregator's reputation/flag state never observes a
        round that didn't happen.
        """
        if self.aggregator is not None:
            return self.aggregator.aggregate(
                uploads,
                selection,
                self.dimension,
                total_weight=total_weight,
                commit=commit,
            )
        if not uploads:
            raise ValueError("no uploads to aggregate")
        if total_weight is None:
            total_weight = float(sum(up.sample_count for up in uploads))
        elif total_weight <= 0:
            raise ValueError("total_weight must be positive")
        selected = selection.indices  # sorted unique
        values = np.zeros(selected.size)
        nnz = uploads[0].payload.nnz
        if selected.size and nnz > 0 and all(up.payload.nnz == nnz for up in uploads):
            index_matrix = np.stack([up.payload.indices for up in uploads])
            value_matrix = np.stack([up.payload.values for up in uploads])
            weights = np.array(
                [up.sample_count / total_weight for up in uploads]
            )
            pos = np.searchsorted(selected, index_matrix)
            pos_clipped = np.minimum(pos, selected.size - 1)
            hits = (pos < selected.size) & (
                selected[pos_clipped] == index_matrix
            )
            np.add.at(
                values,
                pos_clipped[hits],
                (weights[:, None] * value_matrix)[hits],
            )
        else:
            for up in uploads:
                # Positions of this client's uploads within `selected`.
                pos = np.searchsorted(selected, up.payload.indices)
                in_range = pos < selected.size
                pos_clipped = np.minimum(pos, selected.size - 1)
                hits = in_range & (selected[pos_clipped] == up.payload.indices)
                weight = up.sample_count / total_weight
                np.add.at(
                    values, pos_clipped[hits], weight * up.payload.values[hits]
                )
        # ``selected`` is sorted unique int64 (SelectionResult invariant)
        # and ``values`` is freshly computed float64: take the trusted
        # constructor, skipping a per-round re-sort/duplicate scan.
        payload = SparseVector.from_sorted(
            selected, values, self.dimension
        )
        return DownlinkMessage(payload=payload)
