"""The synchronized sparse-gradient FL loop — Algorithm 1 of the paper.

One round of :class:`FLTrainer`:

1. Every client adds its minibatch gradient (computed at the synchronized
   weights ``w(m-1)``) to its residual ``a_i`` and uploads its selected
   (index, value) pairs.
2. The sparsifier chooses the downlink index set ``J``; the server
   aggregates ``b_j``.
3. All clients apply the identical update
   ``w(m) = w(m-1) − η · dense(B)`` — weights stay synchronized — and
   zero their residual at ``J ∩ J_i``.
4. The timing model charges computation plus uplink/downlink transfer.

The round protocol itself lives in :class:`repro.fl.engine.RoundEngine`
(shared with the adaptive-k trainer and the baselines); this class is the
constant-or-scheduled-k façade over it.  ``backend`` selects how the
local steps execute — ``"serial"`` (the reference loop) or
``"vectorized"`` (one batched pass over all participants, identical
histories, faster wall-clock).

The per-round sparsity ``k`` may be a constant or a schedule (mapping from
round index to k), which is how learned {k_m} sequences from the adaptive
algorithm are replayed in the Fig. 7/8 cross-application experiments.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.data.partition import FederatedDataset
from repro.fl.backends import ExecutionBackend
from repro.fl.engine import EngineFacade, RoundEngine
from repro.fl.metrics import RoundRecord, TrainingHistory
from repro.nn.flat import FlatModel
from repro.simulation.timing import TimingModel
from repro.sparsify.base import Sparsifier

KSchedule = Callable[[int], int]


class FLTrainer(EngineFacade):
    """Federated training with a pluggable gradient sparsifier.

    Parameters
    ----------
    model:
        The shared model; its weights represent the synchronized ``w``.
    federation:
        Client shards plus the global test pool.
    sparsifier:
        Any :class:`~repro.sparsify.base.Sparsifier`.
    timing:
        Normalized-time model; if omitted, a zero-communication model is
        used (useful in unit tests that only check learning behaviour).
    learning_rate:
        SGD step size η (paper: 0.01).
    batch_size:
        Client minibatch size (paper: 32).
    eval_every:
        Evaluate global loss/accuracy every this many rounds (1 = always).
    eval_max_samples:
        Cap on evaluation-pool size for speed; the pool is subsampled
        deterministically once at construction.
    sampler:
        Optional per-round client-subset sampler (see
        :class:`repro.simulation.heterogeneous.ClientSampler`); when
        given, only sampled clients compute and upload in a round — the
        heterogeneous-clients extension of the paper's Section VI.
    backend:
        Execution backend for the local-step phase: ``"serial"``
        (default), ``"vectorized"``, or an
        :class:`~repro.fl.backends.ExecutionBackend` instance.
    scenario:
        Optional :class:`repro.scenarios.DeploymentScenario` wrapping the
        run in a client population with availability churn and
        deadline-driven partial aggregation; supplies both the per-round
        sampler and the engine's persistent scenario hooks (mutually
        exclusive with ``sampler``).  Scenarios are stateful — build a
        fresh one per trainer.
    spill_after:
        When positive, clients idle for this many rounds spill their
        dense residual/velocity to a sparse store (and release lazy
        virtual datasets) — exact, so results are identical with
        spilling on or off; it only bounds idle-client memory in
        population-scale runs.  0 (default) disables spilling.
    telemetry:
        Optional :class:`repro.obs.Telemetry` receiving round traces and
        counters.  Observation-only — traced runs are bit-identical to
        untraced ones.
    """

    def __init__(
        self,
        model: FlatModel,
        federation: FederatedDataset,
        sparsifier: Sparsifier,
        timing: TimingModel | None = None,
        learning_rate: float = 0.01,
        batch_size: int = 32,
        eval_every: int = 1,
        eval_max_samples: int = 2000,
        sampler=None,
        momentum_correction: float = 0.0,
        optimizer=None,
        backend: str | ExecutionBackend | None = None,
        scenario=None,
        spill_after: int = 0,
        telemetry=None,
        seed: int = 0,
    ) -> None:
        sampler, scenario_hooks, aggregator = _apply_scenario(
            scenario, sampler
        )
        self.engine = RoundEngine(
            model=model,
            federation=federation,
            sparsifier=sparsifier,
            timing=timing if timing is not None else TimingModel(
                dimension=model.dimension, comm_time=0.0
            ),
            learning_rate=learning_rate,
            batch_size=batch_size,
            eval_every=eval_every,
            eval_max_samples=eval_max_samples,
            sampler=sampler,
            momentum_correction=momentum_correction,
            optimizer=optimizer,
            backend=backend,
            scenario_hooks=scenario_hooks,
            spill_after=spill_after,
            telemetry=telemetry,
            seed=seed,
            aggregator=aggregator,
        )

    # ------------------------------------------------------------------
    def step(self, k: int) -> RoundRecord:
        """Run one training round with k-element GS and record it."""
        return self.engine.run_round(k)

    # ------------------------------------------------------------------
    def run(
        self, num_rounds: int, k: int | Sequence[int] | KSchedule
    ) -> TrainingHistory:
        """Run ``num_rounds`` rounds with constant, listed, or scheduled k."""
        schedule = _as_schedule(k, self.model.dimension)
        for m in range(num_rounds):
            self.step(schedule(self.engine.round_index + 1))
            del m
        return self.history

    def run_until_loss(
        self,
        target_loss: float,
        k: int | Sequence[int] | KSchedule,
        max_rounds: int = 100_000,
    ) -> TrainingHistory:
        """Run until global loss <= ``target_loss`` (or ``max_rounds``).

        Used by the Fig. 1 Assumption-1 experiment, where training runs
        with one k until a target loss ψ is reached and then switches.
        The stopping rule needs the loss every round, so the engine is
        asked to evaluate it once per round and record it (accuracy keeps
        the ``eval_every`` cadence) — no duplicate evaluation outside the
        history as in earlier revisions.
        """
        schedule = _as_schedule(k, self.model.dimension)
        while self.engine.round_index < max_rounds:
            record = self.engine.run_round(
                schedule(self.engine.round_index + 1), ensure_loss=True
            )
            if record.loss <= target_loss:
                break
        return self.history


def _apply_scenario(scenario, sampler):
    """Resolve a deployment scenario into (sampler, hooks, aggregator).

    Duck-typed (``.sampler``/``.hooks``/``.aggregator`` attributes) so
    this module does not import :mod:`repro.scenarios`, which imports
    the engine back.
    """
    if scenario is None:
        return sampler, None, None
    if sampler is not None:
        raise ValueError(
            "pass either a scenario or a sampler, not both: the scenario "
            "provides its own availability-gated sampler"
        )
    return scenario.sampler, scenario.hooks, getattr(
        scenario, "aggregator", None
    )


def _as_schedule(
    k: int | Sequence[int] | KSchedule, dimension: int
) -> KSchedule:
    """Normalize a k specification into a function round_index -> k."""
    if callable(k):
        return k
    if isinstance(k, (int, np.integer)):
        constant = int(k)
        return lambda m: constant
    sequence = [int(v) for v in k]
    if not sequence:
        raise ValueError("empty k sequence")
    last = sequence[-1]

    def schedule(m: int) -> int:
        # Rounds are 1-based; hold the last value past the end.
        if m - 1 < len(sequence):
            return min(sequence[m - 1], dimension)
        return min(last, dimension)

    return schedule
