"""The synchronized sparse-gradient FL loop — Algorithm 1 of the paper.

One round of :class:`FLTrainer`:

1. Every client adds its minibatch gradient (computed at the synchronized
   weights ``w(m-1)``) to its residual ``a_i`` and uploads its selected
   (index, value) pairs.
2. The sparsifier chooses the downlink index set ``J``; the server
   aggregates ``b_j``.
3. All clients apply the identical update
   ``w(m) = w(m-1) − η · dense(B)`` — weights stay synchronized — and
   zero their residual at ``J ∩ J_i``.
4. The timing model charges computation plus uplink/downlink transfer.

The per-round sparsity ``k`` may be a constant or a schedule (mapping from
round index to k), which is how learned {k_m} sequences from the adaptive
algorithm are replayed in the Fig. 7/8 cross-application experiments.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.data.partition import FederatedDataset
from repro.fl.client import Client
from repro.fl.metrics import RoundRecord, TrainingHistory
from repro.fl.server import Server
from repro.nn.flat import FlatModel
from repro.simulation.timing import TimingModel
from repro.sparsify.base import Sparsifier

KSchedule = Callable[[int], int]


class FLTrainer:
    """Federated training with a pluggable gradient sparsifier.

    Parameters
    ----------
    model:
        The shared model; its weights represent the synchronized ``w``.
    federation:
        Client shards plus the global test pool.
    sparsifier:
        Any :class:`~repro.sparsify.base.Sparsifier`.
    timing:
        Normalized-time model; if omitted, a zero-communication model is
        used (useful in unit tests that only check learning behaviour).
    learning_rate:
        SGD step size η (paper: 0.01).
    batch_size:
        Client minibatch size (paper: 32).
    eval_every:
        Evaluate global loss/accuracy every this many rounds (1 = always).
    eval_max_samples:
        Cap on evaluation-pool size for speed; the pool is subsampled
        deterministically once at construction.
    sampler:
        Optional per-round client-subset sampler (see
        :class:`repro.simulation.heterogeneous.ClientSampler`); when
        given, only sampled clients compute and upload in a round — the
        heterogeneous-clients extension of the paper's Section VI.
    """

    def __init__(
        self,
        model: FlatModel,
        federation: FederatedDataset,
        sparsifier: Sparsifier,
        timing: TimingModel | None = None,
        learning_rate: float = 0.01,
        batch_size: int = 32,
        eval_every: int = 1,
        eval_max_samples: int = 2000,
        sampler=None,
        momentum_correction: float = 0.0,
        optimizer=None,
        seed: int = 0,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if eval_every < 1:
            raise ValueError("eval_every must be >= 1")
        self.model = model
        self.federation = federation
        self.sparsifier = sparsifier
        self.timing = timing if timing is not None else TimingModel(
            dimension=model.dimension, comm_time=0.0
        )
        self.learning_rate = learning_rate
        self.eval_every = eval_every
        self.sampler = sampler
        #: optional server-side optimizer (repro.nn.optim.SGD); when given
        #: it replaces the plain `w -= eta * update` step, enabling e.g.
        #: server momentum or learning-rate schedules on sparse updates.
        self.optimizer = optimizer
        self.server = Server(model.dimension)
        self.clients = [
            Client(shard, model.dimension, batch_size=batch_size,
                   momentum_correction=momentum_correction, seed=seed)
            for shard in federation.clients
        ]
        self._clients_by_id = {c.client_id: c for c in self.clients}
        self.history = TrainingHistory()
        self._round = 0
        self._clock = 0.0
        self._eval_x, self._eval_y = self._build_eval_pool(eval_max_samples, seed)

    # ------------------------------------------------------------------
    def _build_eval_pool(
        self, max_samples: int, seed: int
    ) -> tuple[np.ndarray, np.ndarray]:
        x, y = self.federation.global_pool()
        if x.shape[0] > max_samples:
            rng = np.random.default_rng((seed, 0xE0A1))
            idx = rng.choice(x.shape[0], size=max_samples, replace=False)
            x, y = x[idx], y[idx]
        return x, y

    @property
    def round_index(self) -> int:
        """Index of the next round to run (1-based once running)."""
        return self._round

    @property
    def clock(self) -> float:
        """Cumulative normalized time elapsed."""
        return self._clock

    def global_loss(self) -> float:
        """Global training loss L(w) at the current weights."""
        return self.model.loss_value(self._eval_x, self._eval_y)

    def test_accuracy(self) -> float | None:
        """Accuracy on the held-out test pool, if the federation has one."""
        if self.federation.test_x is None or self.federation.test_y is None:
            return None
        return self.model.accuracy(self.federation.test_x, self.federation.test_y)

    # ------------------------------------------------------------------
    def step(self, k: int) -> RoundRecord:
        """Run one training round with k-element GS and record it."""
        if not 1 <= k <= self.model.dimension:
            raise ValueError(f"k must be in [1, {self.model.dimension}], got {k}")
        self._round += 1

        start_round = getattr(self.sparsifier, "start_round", None)
        if start_round is not None:
            start_round(k)

        if self.sampler is not None:
            participant_ids = self.sampler.sample()
            participants = [self._clients_by_id[cid] for cid in participant_ids]
        else:
            participant_ids = None
            participants = self.clients

        uploads = [
            client.local_step(self.model, k, self.sparsifier)
            for client in participants
        ]
        uploads = self.sparsifier.preprocess_uploads(uploads)
        selection = self.sparsifier.server_select(
            uploads, k, self.model.dimension
        )
        downlink = self.server.aggregate(uploads, selection)

        sparse_update = downlink.payload
        weights = self.model.get_weights()
        if self.optimizer is not None:
            weights = self.optimizer.step(weights, sparse_update.to_dense())
        else:
            weights[sparse_update.indices] -= (
                self.learning_rate * sparse_update.values
            )
        self.model.set_weights(weights)

        for client, upload in zip(participants, uploads):
            client.reset_transmitted(selection.indices, upload.payload)
            if self.sparsifier.discards_residual:
                client.reset_all()

        uplink_elements = max(up.payload.nnz for up in uploads)
        sparse_round_for = getattr(self.timing, "sparse_round_for", None)
        if sparse_round_for is not None:
            round_timing = sparse_round_for(
                uplink_elements, selection.downlink_element_count,
                participant_ids,
            )
        else:
            round_timing = self.timing.sparse_round(
                uplink_elements, selection.downlink_element_count
            )
        self._clock += round_timing.total

        evaluate = (self._round % self.eval_every == 0) or (self._round == 1)
        loss = self.global_loss() if evaluate else float("nan")
        accuracy = self.test_accuracy() if evaluate else None
        record = RoundRecord(
            round_index=self._round,
            k=float(k),
            round_time=round_timing.total,
            cumulative_time=self._clock,
            loss=loss,
            accuracy=accuracy,
            uplink_elements=uplink_elements,
            downlink_elements=selection.downlink_element_count,
            contributions=dict(selection.contributions),
        )
        self.history.append(record)
        return record

    # ------------------------------------------------------------------
    def run(
        self, num_rounds: int, k: int | Sequence[int] | KSchedule
    ) -> TrainingHistory:
        """Run ``num_rounds`` rounds with constant, listed, or scheduled k."""
        schedule = _as_schedule(k, self.model.dimension)
        for m in range(num_rounds):
            self.step(schedule(self._round + 1))
            del m
        return self.history

    def run_until_loss(
        self,
        target_loss: float,
        k: int | Sequence[int] | KSchedule,
        max_rounds: int = 100_000,
    ) -> TrainingHistory:
        """Run until global loss <= ``target_loss`` (or ``max_rounds``).

        Used by the Fig. 1 Assumption-1 experiment, where training runs
        with one k until a target loss ψ is reached and then switches.
        """
        schedule = _as_schedule(k, self.model.dimension)
        while self._round < max_rounds:
            record = self.step(schedule(self._round + 1))
            loss = record.loss if not np.isnan(record.loss) else self.global_loss()
            if loss <= target_loss:
                break
        return self.history


def _as_schedule(
    k: int | Sequence[int] | KSchedule, dimension: int
) -> KSchedule:
    """Normalize a k specification into a function round_index -> k."""
    if callable(k):
        return k
    if isinstance(k, (int, np.integer)):
        constant = int(k)
        return lambda m: constant
    sequence = [int(v) for v in k]
    if not sequence:
        raise ValueError("empty k sequence")
    last = sequence[-1]

    def schedule(m: int) -> int:
        # Rounds are 1-based; hold the last value past the end.
        if m - 1 < len(sequence):
            return min(sequence[m - 1], dimension)
        return min(last, dimension)

    return schedule
