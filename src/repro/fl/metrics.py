"""Round-level records and training history shared by all trainers."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field


@dataclass(frozen=True)
class RoundRecord:
    """Everything measured in one training round.

    ``cumulative_time`` is the normalized time at the *end* of the round
    (the x-axis of the paper's loss/accuracy-vs-time figures).
    """

    round_index: int
    k: float
    round_time: float
    cumulative_time: float
    loss: float
    accuracy: float | None = None
    uplink_elements: int = 0
    downlink_elements: int = 0
    contributions: dict[int, int] = field(default_factory=dict)


@dataclass
class TrainingHistory:
    """Ordered round records plus convenience accessors."""

    records: list[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        if self.records and record.round_index <= self.records[-1].round_index:
            raise ValueError("round indices must be strictly increasing")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------
    # Series accessors (x- and y-axes of the paper's figures)
    # ------------------------------------------------------------------
    def times(self) -> list[float]:
        return [r.cumulative_time for r in self.records]

    def losses(self) -> list[float]:
        return [r.loss for r in self.records]

    def accuracies(self) -> list[float]:
        return [r.accuracy for r in self.records if r.accuracy is not None]

    def ks(self) -> list[float]:
        return [r.k for r in self.records]

    @property
    def final_loss(self) -> float:
        if not self.records:
            raise ValueError("empty history")
        return self.records[-1].loss

    @property
    def last_evaluated_loss(self) -> float:
        """Loss of the most recent round that actually evaluated.

        With ``eval_every > 1`` intermediate rounds carry NaN; this skips
        back to the last real measurement.
        """
        for record in reversed(self.records):
            if record.loss == record.loss:  # not NaN
                return record.loss
        raise ValueError("history contains no evaluated rounds")

    @property
    def total_time(self) -> float:
        if not self.records:
            return 0.0
        return self.records[-1].cumulative_time

    def loss_at_time(self, t: float) -> float:
        """Loss of the last round completed by normalized time ``t``.

        Before the first completed round the initial loss is unknown to
        the history, so the first record's loss is returned.
        """
        if not self.records:
            raise ValueError("empty history")
        best = self.records[0].loss
        for r in self.records:
            if r.cumulative_time <= t:
                best = r.loss
            else:
                break
        return best

    def time_to_loss(self, target: float) -> float | None:
        """Normalized time at which loss first reached ``target`` (or None)."""
        for r in self.records:
            if r.loss <= target:
                return r.cumulative_time
        return None

    def contribution_counts(self) -> dict[int, int]:
        """Total per-client contributed elements over all rounds.

        Feeds the CDF in Fig. 4 (right): number of gradient elements used
        from each client.
        """
        totals: dict[int, int] = {}
        for r in self.records:
            for cid, c in r.contributions.items():
                totals[cid] = totals.get(cid, 0) + c
        return totals

    def to_csv(self) -> str:
        """Serialize the per-round series as CSV text."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(
            ["round", "k", "round_time", "cumulative_time", "loss", "accuracy",
             "uplink_elements", "downlink_elements"]
        )
        for r in self.records:
            writer.writerow(
                [r.round_index, r.k, f"{r.round_time:.6g}",
                 f"{r.cumulative_time:.6g}", f"{r.loss:.6g}",
                 "" if r.accuracy is None else f"{r.accuracy:.6g}",
                 r.uplink_elements, r.downlink_elements]
            )
        return buf.getvalue()
