"""Send-all-or-nothing baselines of Fig. 4: FedAvg and always-send-all.

FedAvg [2]: each client performs local SGD steps on its own weight copy;
every ``aggregation_period`` rounds the server averages the weights
(weighted by sample counts ``C_i``) and redistributes them.  For the
comm-matched comparison of Fig. 4 the period is ⌊D/(2k)⌋ (paper
footnote 5) so the *average* per-round communication equals k-element GS.

Always-send-all: the degenerate GS with k = D and dense encoding — full
gradient aggregation every round.

Both trainers run their (non-sparse) local phases themselves and reuse
the shared :class:`repro.fl.engine.RoundEngine` for everything a round
has in common with Algorithm 1 — the round counter, normalized-time
clock, evaluation cadence, and record/history bookkeeping — so none of
that logic is duplicated.  Always-send-all computes its per-client dense
gradients through the engine's execution backend and therefore benefits
from the vectorized backend too; FedAvg's clients each hold *different*
weights, which a single grouped model pass cannot express, so its local
phase is inherently serial (``backend`` is accepted for interface
uniformity and future per-client-weights batching).
"""

from __future__ import annotations

import numpy as np

from repro.data.partition import FederatedDataset
from repro.fl.backends import ExecutionBackend
from repro.fl.engine import EngineFacade, RoundEngine
from repro.fl.metrics import RoundRecord, TrainingHistory
from repro.nn.flat import FlatModel
from repro.simulation.timing import TimingModel


class _BaselineTrainer(EngineFacade):
    """Shared engine plumbing for the two dense baselines."""

    def __init__(
        self,
        model: FlatModel,
        federation: FederatedDataset,
        timing: TimingModel,
        learning_rate: float,
        batch_size: int,
        eval_every: int,
        eval_max_samples: int,
        backend: str | ExecutionBackend | None,
        seed: int,
        telemetry=None,
    ) -> None:
        self.engine = RoundEngine(
            model=model,
            federation=federation,
            sparsifier=None,
            timing=timing,
            learning_rate=learning_rate,
            batch_size=batch_size,
            eval_every=eval_every,
            eval_max_samples=eval_max_samples,
            backend=backend,
            telemetry=telemetry,
            seed=seed,
        )

    def run(self, num_rounds: int) -> TrainingHistory:
        for _ in range(num_rounds):
            self.step()
        return self.history

    def step(self) -> RoundRecord:
        raise NotImplementedError


class FedAvgTrainer(_BaselineTrainer):
    """FedAvg with periodic weight averaging (the paper's Fig. 4 baseline)."""

    def __init__(
        self,
        model: FlatModel,
        federation: FederatedDataset,
        timing: TimingModel,
        aggregation_period: int,
        learning_rate: float = 0.01,
        batch_size: int = 32,
        eval_every: int = 1,
        eval_max_samples: int = 2000,
        backend: str | ExecutionBackend | None = None,
        telemetry=None,
        seed: int = 0,
    ) -> None:
        if aggregation_period < 1:
            raise ValueError("aggregation_period must be >= 1")
        super().__init__(
            model, federation, timing, learning_rate, batch_size,
            eval_every, eval_max_samples, backend, seed, telemetry=telemetry,
        )
        self.period = aggregation_period
        # Per-client local weight copies, initially synchronized.
        w0 = model.get_weights()
        self._local_weights = [w0.copy() for _ in self.clients]

    def global_loss(self) -> float:
        """Loss of the weighted-average model (the quantity FedAvg reports)."""
        avg = self._average_weights()
        return self.model.loss_at(avg, self._eval_x, self._eval_y)

    def test_accuracy(self) -> float | None:
        if self.federation.test_x is None or self.federation.test_y is None:
            return None
        saved = self.model.get_weights()
        try:
            self.model.set_weights(self._average_weights())
            return self.model.accuracy(self.federation.test_x, self.federation.test_y)
        finally:
            self.model.set_weights(saved)

    def _average_weights(self) -> np.ndarray:
        counts = np.array([c.sample_count for c in self.clients], dtype=float)
        weights = counts / counts.sum()
        return np.sum(
            [w * lw for w, lw in zip(weights, self._local_weights)], axis=0
        )

    def _evaluate_average(self) -> float:
        """Install the averaged weights and return their global loss."""
        self.model.set_weights(self._average_weights())
        return self.model.loss_value(self._eval_x, self._eval_y)

    def step(self) -> RoundRecord:
        """One local SGD step everywhere; aggregate if the period elapsed."""
        round_index = self.engine.begin_round()
        for client, w in zip(self.clients, self._local_weights):
            self.model.set_weights(w)
            x, y = client.draw_minibatch()
            grad, _ = self.model.gradient(x, y)
            w -= self.learning_rate * grad

        aggregated = round_index % self.period == 0
        if aggregated:
            avg = self._average_weights()
            for w in self._local_weights:
                w[...] = avg
            round_timing = self.timing.dense_round()
        else:
            round_timing = self.timing.local_round()

        dimension = self.model.dimension
        return self.engine.finish_round(
            k=float(dimension if aggregated else 0),
            round_time=round_timing.total,
            uplink_elements=dimension if aggregated else 0,
            downlink_elements=dimension if aggregated else 0,
            loss_fn=self._evaluate_average,
            accuracy_fn=self.test_accuracy,
        )


class AlwaysSendAllTrainer(_BaselineTrainer):
    """Full dense gradient aggregation every round (Fig. 4 baseline)."""

    def __init__(
        self,
        model: FlatModel,
        federation: FederatedDataset,
        timing: TimingModel,
        learning_rate: float = 0.01,
        batch_size: int = 32,
        eval_every: int = 1,
        eval_max_samples: int = 2000,
        backend: str | ExecutionBackend | None = None,
        telemetry=None,
        seed: int = 0,
    ) -> None:
        super().__init__(
            model, federation, timing, learning_rate, batch_size,
            eval_every, eval_max_samples, backend, seed, telemetry=telemetry,
        )

    def step(self) -> RoundRecord:
        self.engine.begin_round()
        counts = np.array([c.sample_count for c in self.clients], dtype=float)
        total = counts.sum()
        grads = self.engine.backend.compute_gradients(self.model, self.clients)
        aggregate = np.zeros(self.model.dimension)
        for grad, count in zip(grads, counts):
            aggregate += (count / total) * grad
        self.model.set_weights(
            self.model.get_weights() - self.learning_rate * aggregate
        )
        dimension = self.model.dimension
        return self.engine.finish_round(
            k=float(dimension),
            round_time=self.timing.dense_round().total,
            uplink_elements=dimension,
            downlink_elements=dimension,
        )
