"""Send-all-or-nothing baselines of Fig. 4: FedAvg and always-send-all.

FedAvg [2]: each client performs local SGD steps on its own weight copy;
every ``aggregation_period`` rounds the server averages the weights
(weighted by sample counts ``C_i``) and redistributes them.  For the
comm-matched comparison of Fig. 4 the period is ⌊D/(2k)⌋ (paper
footnote 5) so the *average* per-round communication equals k-element GS.

Always-send-all: the degenerate GS with k = D and dense encoding — full
gradient aggregation every round.
"""

from __future__ import annotations

import numpy as np

from repro.data.partition import FederatedDataset
from repro.fl.client import Client
from repro.fl.metrics import RoundRecord, TrainingHistory
from repro.nn.flat import FlatModel
from repro.simulation.timing import TimingModel


class FedAvgTrainer:
    """FedAvg with periodic weight averaging (the paper's Fig. 4 baseline)."""

    def __init__(
        self,
        model: FlatModel,
        federation: FederatedDataset,
        timing: TimingModel,
        aggregation_period: int,
        learning_rate: float = 0.01,
        batch_size: int = 32,
        eval_every: int = 1,
        eval_max_samples: int = 2000,
        seed: int = 0,
    ) -> None:
        if aggregation_period < 1:
            raise ValueError("aggregation_period must be >= 1")
        self.model = model
        self.federation = federation
        self.timing = timing
        self.period = aggregation_period
        self.learning_rate = learning_rate
        self.eval_every = eval_every
        self.clients = [
            Client(shard, model.dimension, batch_size=batch_size, seed=seed)
            for shard in federation.clients
        ]
        # Per-client local weight copies, initially synchronized.
        w0 = model.get_weights()
        self._local_weights = [w0.copy() for _ in self.clients]
        self.history = TrainingHistory()
        self._round = 0
        self._clock = 0.0
        self._eval_x, self._eval_y = _build_eval_pool(
            federation, eval_max_samples, seed
        )

    @property
    def clock(self) -> float:
        return self._clock

    def global_loss(self) -> float:
        """Loss of the weighted-average model (the quantity FedAvg reports)."""
        avg = self._average_weights()
        return self.model.loss_at(avg, self._eval_x, self._eval_y)

    def test_accuracy(self) -> float | None:
        if self.federation.test_x is None or self.federation.test_y is None:
            return None
        saved = self.model.get_weights()
        try:
            self.model.set_weights(self._average_weights())
            return self.model.accuracy(self.federation.test_x, self.federation.test_y)
        finally:
            self.model.set_weights(saved)

    def _average_weights(self) -> np.ndarray:
        counts = np.array([c.sample_count for c in self.clients], dtype=float)
        weights = counts / counts.sum()
        return np.sum(
            [w * lw for w, lw in zip(weights, self._local_weights)], axis=0
        )

    def step(self) -> RoundRecord:
        """One local SGD step everywhere; aggregate if the period elapsed."""
        self._round += 1
        for client, w in zip(self.clients, self._local_weights):
            self.model.set_weights(w)
            x, y = client.dataset.minibatch(client.batch_size)
            grad, _ = self.model.gradient(x, y)
            w -= self.learning_rate * grad

        aggregated = self._round % self.period == 0
        if aggregated:
            avg = self._average_weights()
            for w in self._local_weights:
                w[...] = avg
            round_timing = self.timing.dense_round()
        else:
            round_timing = self.timing.local_round()
        self._clock += round_timing.total

        evaluate = (self._round % self.eval_every == 0) or (self._round == 1)
        if evaluate:
            self.model.set_weights(self._average_weights())
            loss = self.model.loss_value(self._eval_x, self._eval_y)
            accuracy = self.test_accuracy()
        else:
            loss, accuracy = float("nan"), None
        record = RoundRecord(
            round_index=self._round,
            k=float(self.model.dimension if aggregated else 0),
            round_time=round_timing.total,
            cumulative_time=self._clock,
            loss=loss,
            accuracy=accuracy,
            uplink_elements=self.model.dimension if aggregated else 0,
            downlink_elements=self.model.dimension if aggregated else 0,
        )
        self.history.append(record)
        return record

    def run(self, num_rounds: int) -> TrainingHistory:
        for _ in range(num_rounds):
            self.step()
        return self.history


class AlwaysSendAllTrainer:
    """Full dense gradient aggregation every round (Fig. 4 baseline)."""

    def __init__(
        self,
        model: FlatModel,
        federation: FederatedDataset,
        timing: TimingModel,
        learning_rate: float = 0.01,
        batch_size: int = 32,
        eval_every: int = 1,
        eval_max_samples: int = 2000,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.federation = federation
        self.timing = timing
        self.learning_rate = learning_rate
        self.eval_every = eval_every
        self.clients = [
            Client(shard, model.dimension, batch_size=batch_size, seed=seed)
            for shard in federation.clients
        ]
        self.history = TrainingHistory()
        self._round = 0
        self._clock = 0.0
        self._eval_x, self._eval_y = _build_eval_pool(
            federation, eval_max_samples, seed
        )

    @property
    def clock(self) -> float:
        return self._clock

    def step(self) -> RoundRecord:
        self._round += 1
        counts = np.array([c.sample_count for c in self.clients], dtype=float)
        total = counts.sum()
        aggregate = np.zeros(self.model.dimension)
        for client, count in zip(self.clients, counts):
            x, y = client.dataset.minibatch(client.batch_size)
            grad, _ = self.model.gradient(x, y)
            aggregate += (count / total) * grad
        self.model.set_weights(
            self.model.get_weights() - self.learning_rate * aggregate
        )
        round_timing = self.timing.dense_round()
        self._clock += round_timing.total

        evaluate = (self._round % self.eval_every == 0) or (self._round == 1)
        loss = (
            self.model.loss_value(self._eval_x, self._eval_y)
            if evaluate
            else float("nan")
        )
        accuracy = None
        if evaluate and self.federation.test_x is not None:
            accuracy = self.model.accuracy(
                self.federation.test_x, self.federation.test_y
            )
        record = RoundRecord(
            round_index=self._round,
            k=float(self.model.dimension),
            round_time=round_timing.total,
            cumulative_time=self._clock,
            loss=loss,
            accuracy=accuracy,
            uplink_elements=self.model.dimension,
            downlink_elements=self.model.dimension,
        )
        self.history.append(record)
        return record

    def run(self, num_rounds: int) -> TrainingHistory:
        for _ in range(num_rounds):
            self.step()
        return self.history


def _build_eval_pool(
    federation: FederatedDataset, max_samples: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    x, y = federation.global_pool()
    if x.shape[0] > max_samples:
        rng = np.random.default_rng((seed, 0xE0A1))
        idx = rng.choice(x.shape[0], size=max_samples, replace=False)
        x, y = x[idx], y[idx]
    return x, y
