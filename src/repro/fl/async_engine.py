"""Asynchronous staleness-weighted aggregation: commit-point rounds.

The paper's protocol is synchronous: every round waits for its slowest
participant before the server aggregates.  This module adds the
asynchronous variant as an *event-queue re-interpretation* of the same
Algorithm-1 machinery: clients compute continuously, their uploads
arrive at the server in virtual time, and "round m" becomes the server's
m-th **commit point** — the moment it folds the next batch of arrivals
into the synchronized weights.

Mechanics (one :meth:`AsyncRoundEngine.run_commit`):

1. **Dispatch** — every idle client starts a local step at the current
   weights ``w(v)``; the upload it will produce is computed eagerly (one
   ``backend.local_steps`` call per wave, so the serial / vectorized /
   sharded backends stay interchangeable) and scheduled to *arrive* at
   ``now + finish_time``, where the finish time is the canonical
   compute+uplink arrival model every deadline policy already shares
   (:func:`repro.scenarios.deadline.upload_finish_times`).  Each
   in-flight upload carries the model version it was computed at.
2. **Commit** — the server pops arrivals in ``(arrival_time,
   client_id)`` order until ``commit_count`` uploads are buffered
   (``0`` = wait for every in-flight upload, the full-cohort barrier),
   orders the batch by dispatch sequence (so the synchronous special
   case sums floats in exactly the plain trainer's client order),
   applies the pluggable **staleness discount** ``d(s)`` to each
   upload's wire values — ``s`` being the number of commits since the
   upload's dispatch version — and runs the standard
   preprocess → select → aggregate → update → residual-reset pipeline.
   Residuals reset against the *undiscounted* preprocessed uploads: the
   client's error-feedback bookkeeping reflects what it actually sent,
   mirroring how the adversary seam restores honest payloads.
3. **Re-dispatch** — committed clients become idle and start their next
   local step at the new weights when the next commit begins; stragglers
   stay in flight with their original arrival times.

Synchronous-equivalence mode (``synchronous=True``) drives the identical
event queue with a full-cohort barrier, an identity discount, and the
engine's default timing charge — and reproduces the plain
:class:`~repro.fl.trainer.FLTrainer` history *bit for bit* on every
backend (enforced by ``tests/test_async.py``).  Asynchronous mode
instead charges virtual time: each commit's ``round_time`` is the
virtual-clock delta from the previous commit's completion to this one's
(arrival close plus the downlink broadcast), so
``history.cumulative_time`` is simulated elapsed time and
convergence-vs-time comparisons against the synchronous baseline are
direct.

Staleness discounts (:func:`build_staleness_discount`):

- ``constant`` — ``d(s) = c`` (default 1: pure FedAsync-style buffered
  aggregation, no staleness correction);
- ``polynomial`` — ``d(s) = (1 + s)^{-a}``, the standard polynomial
  staleness attenuation;
- ``adaptive`` — the polynomial form with the exponent ``a`` *learned
  online*, a third dual of the paper's learned k: a
  :class:`~repro.online.algorithm2.SignOGD` walk over an exponent
  interval, fed by the Section IV-E sign estimator applied to a free
  counterfactual probe.  Each commit with stale arrivals re-aggregates
  the same batch under the probe exponent ``a' = max(a − δ/2, a/2)``
  (``commit=False`` — pure server-side arithmetic, no extra
  communication, no robust-aggregator state advanced), derives the
  counterfactual weights, and compares loss progress; the commit cadence
  does not depend on ``a``, so both "round times" in eq. (10)/(11) are
  equal and the estimated sign reduces to the loss-progress comparison.

Telemetry rides the existing registry — per-arrival ``span`` events
named ``async.arrival`` (``seconds`` is the upload's *virtual* flight
time) and ``staleness`` / ``staleness_max`` fields on the ordinary
``round`` event — no new stream, so ``trace-report``, the health
monitor, and the JSONL tooling consume async runs unchanged.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from repro.fl.engine import EngineFacade, RoundEngine
from repro.fl.metrics import RoundRecord, TrainingHistory
from repro.obs import SPARSE_ELEMENT_BYTES
from repro.online.algorithm2 import SignOGD
from repro.online.estimator import estimate_sign
from repro.online.interval import SearchInterval
from repro.simulation.timing import TimingModel
from repro.sparsify.base import ClientUpload, SparseVector, Sparsifier

STALENESS_DISCOUNT_KINDS = ("constant", "polynomial", "adaptive")

#: Exponent search interval of the adaptive discount.  The lower edge is
#: strictly positive (SignOGD's interval invariant, and it keeps the
#: probe point ``max(a − δ/2, a/2)`` strictly below ``a``); the upper
#: edge ``2`` already discounts staleness 3 by a factor of 16 — steeper
#: attenuation than that is indistinguishable from dropping the upload.
DEFAULT_EXPONENT_INTERVAL = (0.05, 2.0)


# ----------------------------------------------------------------------
# Staleness discounts: how much weight an s-commits-old upload keeps
# ----------------------------------------------------------------------
class StalenessDiscount:
    """Interface: per-upload weight multiplier as a function of staleness.

    ``factor(s)`` multiplies the upload's *wire values* (the weighted
    aggregation then shrinks that client's contribution — the server's
    normalizing constant stays the undiscounted sample-count total, so a
    discount scales the step rather than renormalizing over it).
    """

    name = "abstract"
    #: whether :meth:`observe` feedback can move the discount
    adaptive = False

    def factor(self, staleness: int) -> float:
        """The multiplier ``d(s) ∈ (0, 1]`` for staleness ``s >= 0``."""
        raise NotImplementedError

    def probe_exponent(self) -> float | None:
        """The counterfactual exponent an adaptive discount wants probed
        this commit (None = no probe — fixed discounts never probe)."""
        return None

    def observe(self, sign: int | None) -> None:
        """Consume one commit's sign estimate (no-op for fixed forms)."""
        del sign


class ConstantDiscount(StalenessDiscount):
    """``d(s) = c`` — staleness-blind; ``c = 1`` is no discount at all."""

    name = "constant"

    def __init__(self, value: float = 1.0) -> None:
        value = float(value)
        if not 0.0 < value <= 1.0:
            raise ValueError("discount value must be in (0, 1]")
        self.value = value

    def factor(self, staleness: int) -> float:
        if staleness < 0:
            raise ValueError("staleness must be >= 0")
        return self.value


class PolynomialDiscount(StalenessDiscount):
    """``d(s) = (1 + s)^{-a}`` — the standard polynomial attenuation."""

    name = "polynomial"

    def __init__(self, exponent: float = 0.5) -> None:
        exponent = float(exponent)
        if exponent < 0.0:
            raise ValueError("exponent must be >= 0")
        self.exponent = exponent

    def factor(self, staleness: int) -> float:
        if staleness < 0:
            raise ValueError("staleness must be >= 0")
        return float((1.0 + staleness) ** -self.exponent)


class AdaptiveStalenessDiscount(StalenessDiscount):
    """Polynomial discount with an online-learned exponent.

    The third dual of the paper's learned k (after the learned deadline):
    the exponent ``a`` is walked by Algorithm 2's
    :class:`~repro.online.algorithm2.SignOGD` over ``interval``, and the
    per-commit sign comes from the Section IV-E estimator
    (:func:`repro.online.estimator.estimate_sign`) applied to a *free
    counterfactual probe* — the engine re-aggregates the already-received
    commit batch under ``a' = max(a − δ_m/2, a/2)`` entirely server-side
    and compares loss progress.  Because the commit cadence (who arrived
    when) does not depend on ``a``, the actual and counterfactual "round
    times" of eq. (10) are equal and the sign reduces to which exponent
    made more loss progress per commit.  Commits with no stale arrival
    carry no information about ``a`` and advance the walk with ``None``
    (the paper's "value remains unchanged" rule).  ``probe=False``
    freezes the exponent at ``a₁`` — a "frozen adaptive" control.
    """

    name = "adaptive"
    adaptive = True

    def __init__(
        self,
        interval: SearchInterval | None = None,
        a1: float | None = None,
        probe: bool = True,
    ) -> None:
        if interval is None:
            interval = SearchInterval(*DEFAULT_EXPONENT_INTERVAL)
        self.interval = interval
        self.algorithm = SignOGD(interval, k1=a1)
        self.probe = probe

    @property
    def exponent(self) -> float:
        """The continuous decision a_m for the current commit."""
        return self.algorithm.k

    @property
    def exponent_history(self) -> list[float]:
        """Every exponent played so far (the learned {a_m} trace)."""
        return self.algorithm.k_history

    def factor(self, staleness: int) -> float:
        if staleness < 0:
            raise ValueError("staleness must be >= 0")
        return float((1.0 + staleness) ** -self.algorithm.k)

    def probe_exponent(self) -> float | None:
        if not self.probe:
            return None
        a = self.algorithm.k
        # Strictly below a and strictly positive, like the adaptive
        # deadline's probe clamp — the estimate is never unavailable at
        # the interval's lower edge.
        return max(a - self.algorithm.step_size() / 2.0, a / 2.0)

    def observe(self, sign: int | None) -> None:
        self.algorithm.update(sign)


def build_staleness_discount(kind: str, **kwargs) -> StalenessDiscount:
    """The staleness discount a config string names.

    ``kwargs`` pass through to the class (``value`` for constant,
    ``exponent`` for polynomial, ``interval``/``a1``/``probe`` for
    adaptive).  ``"poly"`` is accepted as shorthand for ``"polynomial"``.
    """
    kind = {"poly": "polynomial", "const": "constant"}.get(kind, kind)
    if kind == "constant":
        return ConstantDiscount(**kwargs)
    if kind == "polynomial":
        return PolynomialDiscount(**kwargs)
    if kind == "adaptive":
        return AdaptiveStalenessDiscount(**kwargs)
    raise ValueError(
        f"unknown staleness discount {kind!r}; expected one of "
        f"{STALENESS_DISCOUNT_KINDS}"
    )


# ----------------------------------------------------------------------
# The event-queue engine
# ----------------------------------------------------------------------
class _InFlight:
    """One dispatched upload travelling through virtual time."""

    __slots__ = ("arrival", "seq", "client", "upload", "version",
                 "dispatch_time")

    def __init__(self, arrival, seq, client, upload, version,
                 dispatch_time):
        self.arrival = arrival
        self.seq = seq
        self.client = client
        self.upload = upload
        self.version = version
        self.dispatch_time = dispatch_time


class AsyncRoundEngine(RoundEngine):
    """Event-queue commit engine over the :class:`RoundEngine` skeleton.

    Parameters beyond the base engine's:

    commit_count:
        Arrivals buffered per commit; ``0`` waits for every in-flight
        upload (the full-cohort barrier the synchronous special case
        needs).
    discount:
        A :class:`StalenessDiscount` (default: identity
        :class:`ConstantDiscount`).
    profiles:
        ``client_id ->`` :class:`~repro.simulation.heterogeneous.
        ClientProfile` feeding the arrival-time model; clients missing
        from the map travel at unit speed.
    synchronous:
        Equivalence mode: full-cohort barrier, identity discount, and
        the engine's *default* timing charge — bit-identical to the
        plain trainer.  Requires ``commit_count == 0`` and an identity
        ``ConstantDiscount``.  Asynchronous mode instead fixes the
        cohort at the first dispatch (clients run continuously; there is
        no per-round resample) and charges virtual commit-to-commit
        deltas.
    """

    def __init__(
        self,
        *args,
        commit_count: int = 0,
        discount: StalenessDiscount | None = None,
        profiles=None,
        synchronous: bool = False,
        **kwargs,
    ) -> None:
        if kwargs.get("scenario_hooks") is not None:
            raise ValueError(
                "the async engine replaces the deadline/availability hook "
                "mechanism with commit points; scenario_hooks are not "
                "supported"
            )
        super().__init__(*args, **kwargs)
        if commit_count < 0:
            raise ValueError("commit_count must be >= 0 (0 = full cohort)")
        self.discount = discount if discount is not None else ConstantDiscount()
        if synchronous:
            if commit_count != 0:
                raise ValueError(
                    "synchronous equivalence mode needs commit_count=0 "
                    "(the full-cohort barrier)"
                )
            if not (
                isinstance(self.discount, ConstantDiscount)
                and self.discount.value == 1.0
            ):
                raise ValueError(
                    "synchronous equivalence mode needs the identity "
                    "ConstantDiscount"
                )
        self.commit_count = commit_count
        self.profiles = dict(profiles) if profiles else {}
        self.synchronous = synchronous
        #: model version = commits applied so far
        self._version = 0
        #: virtual (simulated) time; advances at commit points
        self._vclock = 0.0
        self._queue: list[tuple[float, int, _InFlight]] = []
        self._seq = 0
        #: clients committed last round, idle until the next dispatch
        #: (async mode; synchronous mode resamples every commit)
        self._redispatch: list = []
        self._started = False
        #: L(w) at the previous probed commit's result (adaptive discount)
        self._loss_prev: float | None = None
        #: mean staleness of each commit's batch (the figure/bench trace;
        #: identically zero in synchronous mode)
        self.staleness_history: list[float] = []

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Commits applied so far (the weights' version number)."""
        return self._version

    @property
    def virtual_clock(self) -> float:
        """Simulated time at the last commit's completion."""
        return self._vclock

    @property
    def in_flight(self) -> int:
        """Uploads currently travelling through virtual time."""
        return len(self._queue)

    def run_round(self, *args, **kwargs):
        raise RuntimeError(
            "AsyncRoundEngine runs commit points, not synchronous rounds; "
            "use run_commit(k)"
        )

    # ------------------------------------------------------------------
    def _dispatch(self, wave, k: int) -> None:
        """Start a local step for every client in ``wave`` at the current
        weights and schedule the resulting uploads' virtual arrivals."""
        if not wave:
            return
        # Local import: repro.scenarios imports the engine back (the
        # same layering note as fl.trainer's duck-typed scenario seam).
        from repro.scenarios.deadline import upload_finish_times

        uploads = self.backend.local_steps(
            self.model, wave, k, self.sparsifier
        )
        finish = upload_finish_times(uploads, self.timing, self.profiles)
        now = self._vclock
        for client, upload, flight in zip(wave, uploads, finish):
            entry = _InFlight(
                arrival=now + float(flight),
                seq=self._seq,
                client=client,
                upload=upload,
                version=self._version,
                dispatch_time=now,
            )
            self._seq += 1
            # client_id breaks arrival ties deterministically; a client
            # is never in flight twice, so the pair is a total order.
            heapq.heappush(
                self._queue, (entry.arrival, upload.client_id, entry)
            )

    def _wave(self) -> tuple[list, list[int] | None]:
        """The clients to dispatch this commit (and their sampled ids)."""
        if self.synchronous or not self._started:
            # Synchronous mode resamples every round (the plain trainer's
            # behaviour); asynchronous mode fixes the cohort here — the
            # population runs continuously, so later waves are exactly
            # the clients freed by the previous commit.
            self._started = True
            if self.sampler is not None:
                ids = self.sampler.sample()
                return [self._client_for(cid) for cid in ids], ids
            return self._all_participants(), None
        wave, self._redispatch = self._redispatch, []
        return wave, None

    @staticmethod
    def _discounted(
        uploads: list[ClientUpload], factors: list[float]
    ) -> list[ClientUpload]:
        """Uploads with wire values scaled by ``factors``.

        Structural no-op when every factor is 1, so the equivalence mode
        aggregates the very same arrays the plain trainer does.  Scaled
        payloads keep the original index array (same support, same nnz),
        preserving the server's stacked fast-path precondition.
        """
        if all(f == 1.0 for f in factors):
            return uploads
        return [
            ClientUpload(
                client_id=up.client_id,
                payload=SparseVector.from_sorted(
                    up.payload.indices,
                    up.payload.values * f,
                    up.payload.dimension,
                ),
                sample_count=up.sample_count,
            )
            for up, f in zip(uploads, factors)
        ]

    def _adaptive_probe(
        self, uploads, stale, factors, selection, w_prev, w_new
    ) -> float | None:
        """Run the adaptive discount's counterfactual exponent probe.

        Returns the evaluated L(w_new) when the probe ran (the caller
        hands it to ``finish_round`` so eval-cadence commits don't rerun
        the identical forward pass), else None.
        """
        discount = self.discount
        if not discount.adaptive:
            return None
        a_probe = discount.probe_exponent()
        if a_probe is None or max(stale) == 0:
            # No probe, or a batch with no stale arrival — nothing the
            # exponent could have changed; the walk advances unchanged
            # and the carried loss goes stale, so force a re-evaluation
            # at the next probed commit.
            discount.observe(None)
            self._loss_prev = None
            return None
        probe_factors = [
            float((1.0 + s) ** -a_probe) for s in stale
        ]
        # Same batch, same selection J, probe discount — a pure
        # recomputation (commit=False keeps any robust aggregator's
        # reputation state at the real commit), then the plain SGD rule,
        # exactly like the deadline probe's w'(m) derivation.
        payload = self.server.aggregate(
            self._discounted(uploads, probe_factors), selection,
            commit=False,
        ).payload
        w_probe = w_prev.copy()
        w_probe[payload.indices] -= self.learning_rate * payload.values
        if self._loss_prev is None:
            self._loss_prev = self._loss_at(w_prev, restore=w_new)
        loss_now = float(self.model.loss_value(self._eval_x, self._eval_y))
        loss_probe = self._loss_at(w_probe, restore=w_new)
        # The commit cadence (who arrived when) does not depend on the
        # exponent, so τ_m and the counterfactual θ_m are equal; any
        # positive time cancels out of eq. (11)'s sign.
        sign = estimate_sign(
            loss_prev=self._loss_prev,
            loss_now=loss_now,
            loss_probe=loss_probe,
            round_time=1.0,
            probe_round_time=1.0,
            k=discount.exponent,
            k_probe=a_probe,
        )
        discount.observe(sign)
        self._loss_prev = loss_now
        return loss_now

    def _loss_at(self, weights: np.ndarray, restore: np.ndarray) -> float:
        """Evaluation-pool loss at ``weights``; model restored exactly."""
        self.model.set_weights(weights)
        try:
            return float(self.model.loss_value(self._eval_x, self._eval_y))
        finally:
            self.model.set_weights(restore)

    # ------------------------------------------------------------------
    def run_commit(self, k: int, ensure_loss: bool = False) -> RoundRecord:
        """Dispatch idle clients, commit the next arrival batch, record.

        The async counterpart of :meth:`RoundEngine.run_round`: "round
        m" in the history is the m-th commit point.
        """
        if self.sparsifier is None:
            raise RuntimeError("run_commit requires a sparsifier")
        if not 1 <= k <= self.model.dimension:
            raise ValueError(
                f"k must be in [1, {self.model.dimension}], got {k}"
            )
        m = self.begin_round()
        tel = self.telemetry
        tracing = tel.enabled
        if tracing:
            phases: dict[str, float] = {}
            wall_start = mark = time.perf_counter()

            def lap(phase: str) -> None:
                nonlocal mark
                now = time.perf_counter()
                phases[phase] = phases.get(phase, 0.0) + (now - mark)
                mark = now

        start_round = getattr(self.sparsifier, "start_round", None)
        if start_round is not None:
            start_round(k)

        wave, wave_ids = self._wave()
        if tracing:
            lap("sample")
        self._dispatch(wave, k)
        if tracing:
            lap("local_steps")

        if not self._queue:
            raise RuntimeError("no uploads in flight — empty cohort")
        target = (
            len(self._queue) if self.commit_count == 0
            else min(self.commit_count, len(self._queue))
        )
        batch = [heapq.heappop(self._queue)[2] for _ in range(target)]
        # Pops are arrival-ordered, so the close is the last pop's time.
        commit_close = batch[-1].arrival
        # Aggregate in dispatch order: in the synchronous special case
        # that is exactly the plain trainer's cohort order, so the
        # weighted float sums accumulate bit-identically.
        batch.sort(key=lambda entry: entry.seq)
        participants = [entry.client for entry in batch]
        stale = [self._version - entry.version for entry in batch]
        self.staleness_history.append(float(sum(stale)) / len(stale))
        if tracing:
            for entry, s in zip(batch, stale):
                # ``seconds`` is the upload's *virtual* flight time
                # (dispatch → arrival), not wall-clock.
                tel.event(
                    "span",
                    name="async.arrival",
                    seconds=entry.arrival - entry.dispatch_time,
                    round=m,
                    client_id=int(entry.upload.client_id),
                    staleness=int(s),
                    arrival=entry.arrival,
                )

        uploads = self.sparsifier.preprocess_uploads(
            [entry.upload for entry in batch]
        )
        if tracing:
            lap("preprocess")
        factors = [self.discount.factor(s) for s in stale]
        wire = self._discounted(uploads, factors)
        selection = self.sparsifier.server_select(
            wire, k, self.model.dimension
        )
        if tracing:
            lap("select")
        downlink = self.server.aggregate(wire, selection)
        if tracing:
            lap("aggregate")

        w_prev = self.model.get_weights()
        payload = downlink.payload
        weights = w_prev.copy()
        if self.optimizer is not None:
            weights = self.optimizer.step(weights, payload.to_dense())
        else:
            weights[payload.indices] -= self.learning_rate * payload.values
        self.model.set_weights(weights)
        if tracing:
            lap("update")

        # Error feedback subtracts what each client actually sent — the
        # undiscounted preprocessed uploads, not the discounted wire.
        self.backend.reset_residuals(participants, uploads, selection.indices)
        if self.sparsifier.discards_residual:
            for client in participants:
                client.reset_all()
        self._note_participation(participants)
        self._version += 1
        if not self.synchronous:
            self._redispatch = participants
        if tracing:
            lap("residual_reset")

        eval_loss = self._adaptive_probe(
            uploads, stale, factors, selection, w_prev, weights
        )
        if tracing:
            lap("probe")

        uplink_elements = max(up.payload.nnz for up in wire)
        if self.synchronous:
            # Equivalence mode charges the engine's default path, so the
            # recorded history matches the plain trainer bit for bit.
            sparse_round_for = getattr(self.timing, "sparse_round_for", None)
            if sparse_round_for is not None:
                timing = sparse_round_for(
                    uplink_elements, selection.downlink_element_count,
                    wave_ids,
                )
            else:
                timing = self.timing.sparse_round(
                    uplink_elements, selection.downlink_element_count
                )
            round_time = timing.total
            self._vclock += round_time
        else:
            # Virtual time: the server commits when the batch's last
            # arrival lands (never before it finished the previous
            # broadcast), then broadcasts the new model, paced by the
            # slowest committed client's link.  Base-class transfer time
            # on purpose — a HeterogeneousTimingModel's own sparse_round
            # folds in its worst-client factor, which would double-count.
            worst_comm = max(
                (
                    self.profiles[c.client_id].comm_factor
                    for c in participants
                    if c.client_id in self.profiles
                ),
                default=1.0,
            )
            downlink_time = (
                TimingModel.sparse_round(
                    self.timing, 0, selection.downlink_element_count
                ).downlink
                * worst_comm
            )
            commit_complete = max(commit_close, self._vclock) + downlink_time
            round_time = commit_complete - self._vclock
            self._vclock = commit_complete

        if tracing:
            self._pending_trace = {
                "phases": phases,
                "wall_start": wall_start,
                "participants": len(batch),
                "dropped_ids": [],
                "uplink_bytes": SPARSE_ELEMENT_BYTES * sum(
                    up.payload.nnz for up in wire
                ),
                "extra": {
                    "staleness": float(sum(stale)) / len(stale),
                    "staleness_max": int(max(stale)),
                    "in_flight": len(self._queue),
                    "version": self._version,
                },
            }
        return self.finish_round(
            k=float(k),
            round_time=round_time,
            uplink_elements=uplink_elements,
            downlink_elements=selection.downlink_element_count,
            contributions=dict(selection.contributions),
            loss_fn=(lambda: eval_loss) if eval_loss is not None else None,
            ensure_loss=ensure_loss,
        )


# ----------------------------------------------------------------------
# Trainer facade
# ----------------------------------------------------------------------
class AsyncFLTrainer(EngineFacade):
    """Asynchronous federated training with staleness-weighted commits.

    The async counterpart of :class:`~repro.fl.trainer.FLTrainer`; the
    shared parameters mean the same thing.  Additional parameters:

    discount:
        A :class:`StalenessDiscount` instance or a kind string from
        :data:`STALENESS_DISCOUNT_KINDS` (default ``"constant"``, i.e.
        no discount).
    commit_count:
        Arrivals the server buffers before each commit (0 = full-cohort
        barrier).
    profiles:
        ``client_id -> ClientProfile`` map (or a profile list) feeding
        the virtual arrival-time model; heterogeneous profiles are what
        make commits reorder relative to dispatches.
    synchronous:
        Equivalence mode — see :class:`AsyncRoundEngine`; histories are
        bit-identical to the plain trainer's.
    scenario:
        Optional :class:`~repro.scenarios.DeploymentScenario`; supplies
        the sampler, straggler profiles, and robust aggregator.  The
        scenario's *deadline hooks are not installed* — asynchronous
        commits replace deadline-driven partial aggregation (stragglers
        arrive late instead of being dropped).
    """

    def __init__(
        self,
        model,
        federation,
        sparsifier: Sparsifier,
        timing: TimingModel | None = None,
        learning_rate: float = 0.01,
        batch_size: int = 32,
        eval_every: int = 1,
        eval_max_samples: int = 2000,
        sampler=None,
        momentum_correction: float = 0.0,
        optimizer=None,
        backend=None,
        scenario=None,
        discount: StalenessDiscount | str = "constant",
        commit_count: int = 0,
        profiles=None,
        synchronous: bool = False,
        spill_after: int = 0,
        telemetry=None,
        seed: int = 0,
    ) -> None:
        aggregator = None
        if scenario is not None:
            if sampler is not None:
                raise ValueError(
                    "pass either a scenario or a sampler, not both"
                )
            sampler = scenario.sampler
            if profiles is None:
                profiles = scenario.profiles
            aggregator = scenario.aggregator
        if isinstance(discount, str):
            discount = build_staleness_discount(discount)
        if profiles is not None and not isinstance(profiles, dict):
            profiles = {p.client_id: p for p in profiles}
        self.engine = AsyncRoundEngine(
            model=model,
            federation=federation,
            sparsifier=sparsifier,
            timing=timing if timing is not None else TimingModel(
                dimension=model.dimension, comm_time=0.0
            ),
            learning_rate=learning_rate,
            batch_size=batch_size,
            eval_every=eval_every,
            eval_max_samples=eval_max_samples,
            sampler=sampler,
            momentum_correction=momentum_correction,
            optimizer=optimizer,
            backend=backend,
            spill_after=spill_after,
            telemetry=telemetry,
            seed=seed,
            aggregator=aggregator,
            commit_count=commit_count,
            discount=discount,
            profiles=profiles,
            synchronous=synchronous,
        )

    # ------------------------------------------------------------------
    @property
    def discount(self) -> StalenessDiscount:
        return self.engine.discount

    @property
    def version(self) -> int:
        return self.engine.version

    @property
    def virtual_clock(self) -> float:
        return self.engine.virtual_clock

    @property
    def staleness_history(self) -> list[float]:
        """Mean staleness of each commit's batch so far."""
        return self.engine.staleness_history

    def step(self, k: int) -> RoundRecord:
        """Run one commit point with k-element GS and record it."""
        return self.engine.run_commit(k)

    def run(self, num_rounds: int, k) -> TrainingHistory:
        """Run ``num_rounds`` commits with constant, listed, or scheduled k."""
        from repro.fl.trainer import _as_schedule

        schedule = _as_schedule(k, self.model.dimension)
        for _ in range(num_rounds):
            self.step(schedule(self.engine.round_index + 1))
        return self.history

    def run_until_loss(
        self, target_loss: float, k, max_rounds: int = 100_000
    ) -> TrainingHistory:
        """Run commits until global loss <= ``target_loss``."""
        from repro.fl.trainer import _as_schedule

        schedule = _as_schedule(k, self.model.dimension)
        while self.engine.round_index < max_rounds:
            record = self.engine.run_commit(
                schedule(self.engine.round_index + 1), ensure_loss=True
            )
            if record.loss <= target_loss:
                break
        return self.history
