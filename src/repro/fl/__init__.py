"""Federated-learning core: Algorithm 1 of the paper plus baselines.

- :class:`~repro.fl.engine.RoundEngine`: the shared Algorithm-1 round
  skeleton all trainers delegate to, extensible via
  :class:`~repro.fl.engine.RoundHooks`.
- :mod:`repro.fl.backends`: pluggable execution backends for the
  local-step phase — :class:`~repro.fl.backends.SerialBackend` (the
  reference loop) and :class:`~repro.fl.backends.VectorizedBackend`
  (batched across clients, identical histories).
- :class:`~repro.fl.client.Client`: local data, residual accumulator
  ``a_i``, gradient computation, one-sample loss probes.
- :class:`~repro.fl.server.Server`: weighted aggregation
  ``b_j = (1/C) Σ_i C_i a_ij 1[j ∈ J_i]``.
- :class:`~repro.fl.trainer.FLTrainer`: the synchronized sparse-gradient
  training loop (Algorithm 1) with pluggable sparsifier and timing model.
- :mod:`repro.fl.fedavg`: the FedAvg send-all-every-E-rounds baseline and
  the always-send-all baseline of Fig. 4.
- :mod:`repro.fl.metrics`: round records and history containers shared by
  all trainers.
"""

from repro.fl.backends import (
    ExecutionBackend,
    SerialBackend,
    VectorizedBackend,
    resolve_backend,
)
from repro.fl.client import Client
from repro.fl.engine import RoundEngine, RoundHooks
from repro.fl.async_engine import (
    STALENESS_DISCOUNT_KINDS,
    AdaptiveStalenessDiscount,
    AsyncFLTrainer,
    AsyncRoundEngine,
    ConstantDiscount,
    PolynomialDiscount,
    StalenessDiscount,
    build_staleness_discount,
)
from repro.fl.fedavg import AlwaysSendAllTrainer, FedAvgTrainer
from repro.fl.metrics import RoundRecord, TrainingHistory
from repro.fl.server import Server
from repro.fl.trainer import FLTrainer

__all__ = [
    "STALENESS_DISCOUNT_KINDS",
    "AdaptiveStalenessDiscount",
    "AlwaysSendAllTrainer",
    "AsyncFLTrainer",
    "AsyncRoundEngine",
    "Client",
    "ConstantDiscount",
    "ExecutionBackend",
    "FedAvgTrainer",
    "FLTrainer",
    "PolynomialDiscount",
    "RoundEngine",
    "RoundHooks",
    "RoundRecord",
    "SerialBackend",
    "Server",
    "StalenessDiscount",
    "TrainingHistory",
    "VectorizedBackend",
    "build_staleness_discount",
    "resolve_backend",
]
