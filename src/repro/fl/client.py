"""FL client: local gradient computation and residual accumulation.

Implements the client side of Algorithm 1.  Weights are synchronized
across clients (all clients apply the identical sparse update), so the
simulation shares a single :class:`~repro.nn.flat.FlatModel` instance whose
weights represent the common ``w(m)``; each client owns only its *state* —
data shard, residual ``a_i``, and RNG.
"""

from __future__ import annotations

import numpy as np

from repro.data.partition import ClientDataset
from repro.nn.flat import FlatModel
from repro.sparsify.base import ClientUpload, Sparsifier, SparseVector


class Client:
    """One federated client.

    Parameters
    ----------
    dataset:
        The client's local shard (provides seeded minibatch sampling).
    dimension:
        Flat model dimension D (the residual's length).
    batch_size:
        Minibatch size for local gradient computation (paper: 32).
    seed:
        Seed for the probe-sample RNG used by the sign estimator.
    """

    def __init__(
        self,
        dataset: ClientDataset,
        dimension: int,
        batch_size: int = 32,
        momentum_correction: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= momentum_correction < 1.0:
            raise ValueError("momentum_correction must be in [0, 1)")
        self.dataset = dataset
        self.dimension = dimension
        self.batch_size = batch_size
        self.momentum_correction = momentum_correction
        # Dense state is lazy: a never-participating client costs O(1)
        # memory (population-scale federations construct millions of
        # these).  The dense residual/velocity materialize on first touch
        # and can round-trip through a sparse spill store (hibernate) —
        # both transitions are exact, so laziness never changes results.
        self._residual: np.ndarray | None = None
        self._spilled_residual: tuple[np.ndarray, np.ndarray] | None = None
        self._velocity: np.ndarray | None = None
        self._spilled_velocity: tuple[np.ndarray, np.ndarray] | None = None
        self._rng = np.random.default_rng((seed, dataset.client_id, 0xC11E))
        self._last_batch: tuple[np.ndarray, np.ndarray] | None = None
        self._last_upload_indices: np.ndarray | None = None
        self.probe_sample: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def residual(self) -> np.ndarray:
        """The dense residual ``a_i``; materializes zeros on first touch."""
        if self._residual is None:
            self._residual = np.zeros(self.dimension)
            if self._spilled_residual is not None:
                indices, values = self._spilled_residual
                self._residual[indices] = values
                self._spilled_residual = None
        return self._residual

    @residual.setter
    def residual(self, value: np.ndarray) -> None:
        self._residual = value
        self._spilled_residual = None

    def hibernate(self) -> None:
        """Spill dense state to a sparse store after long idleness.

        The residual and velocity collapse to their nonzero entries (an
        exact round-trip — zeros are exact in float64), stale per-round
        state is dropped, and a releasable dataset (lazy virtual shards)
        is asked to free its arrays.  Waking is implicit: the next touch
        of :attr:`residual` (or the next momentum accumulation) restores
        the dense form bit-identically, and a released dataset
        regenerates on its next access with its minibatch RNG stream
        untouched.  Hibernating is therefore invisible to training
        results; it only bounds idle-client memory.
        """
        if self._residual is not None:
            indices = np.flatnonzero(self._residual)
            self._spilled_residual = (indices, self._residual[indices])
            self._residual = None
        if self._velocity is not None:
            indices = np.flatnonzero(self._velocity)
            self._spilled_velocity = (indices, self._velocity[indices])
            self._velocity = None
        self._last_batch = None
        self.probe_sample = None
        release = getattr(self.dataset, "release", None)
        if release is not None:
            release()

    @property
    def hibernating(self) -> bool:
        """Whether dense state is currently spilled to the sparse store."""
        return (
            self._spilled_residual is not None
            or self._spilled_velocity is not None
        )

    def residual_nonzeros(self) -> np.ndarray:
        """The residual's nonzero values, without touching client state.

        Read-only diagnostics path: never materializes the dense array
        and never wakes a hibernating client — a spilled residual is
        read straight from its sparse store, and a never-touched one
        (all zeros) returns an empty array.
        """
        if self._residual is not None:
            return self._residual[self._residual != 0.0]
        if self._spilled_residual is not None:
            return self._spilled_residual[1]
        return np.empty(0)

    @property
    def client_id(self) -> int:
        return self.dataset.client_id

    @property
    def sample_count(self) -> int:
        """``C_i`` of the paper."""
        return len(self.dataset)

    # ------------------------------------------------------------------
    def local_step(
        self, model: FlatModel, k: int, sparsifier: Sparsifier
    ) -> ClientUpload:
        """One local round: accumulate gradient, select and return upload.

        ``model`` must hold the synchronized weights ``w(m-1)`` on entry;
        it is left unchanged (gradient computation does not move weights).

        This is the serial reference path; execution backends may instead
        compose the pieces (:meth:`draw_minibatch`,
        :meth:`accumulate_gradient`, :meth:`select_upload` /
        :meth:`build_upload`) so the gradient and selection can be batched
        across clients — each piece touches the same per-client state in
        the same order, so compositions reproduce this method exactly.
        """
        x, y = self.draw_minibatch()
        grad, _ = model.gradient(x, y)
        self.accumulate_gradient(grad)
        return self.select_upload(k, sparsifier)

    def draw_minibatch(self) -> tuple[np.ndarray, np.ndarray]:
        """Draw this round's minibatch (kept for the probe-sample draw)."""
        x, y = self.dataset.minibatch(self.batch_size)
        self._last_batch = (x, y)
        return x, y

    def adopt_minibatch(self, x: np.ndarray, y: np.ndarray) -> None:
        """Record a minibatch drawn on this client's behalf elsewhere.

        The sharded backend draws each round's minibatch on the worker
        that owns this client's dataset copy; adopting it here keeps
        :meth:`draw_probe_sample` working on the round's actual batch,
        exactly as if :meth:`draw_minibatch` had run in this process.
        """
        self._last_batch = (x, y)

    def accumulate_gradient(self, grad: np.ndarray) -> None:
        """Add the round's gradient (or its velocity) to the residual."""
        if self.momentum_correction:
            # Momentum correction (Deep Gradient Compression, Lin et al.,
            # the paper's reference [22]): accumulate the *velocity* into
            # the residual so sparse updates carry momentum faithfully.
            self._velocity = (
                self.momentum_correction * self._velocity_array() + grad
            )
            self.residual += self._velocity
        else:
            self.residual += grad

    def _velocity_array(self) -> np.ndarray:
        """Dense momentum velocity; materializes/unspills on first touch."""
        if self._velocity is None:
            self._velocity = np.zeros(self.dimension)
            if self._spilled_velocity is not None:
                indices, values = self._spilled_velocity
                self._velocity[indices] = values
                self._spilled_velocity = None
        return self._velocity

    def select_upload(self, k: int, sparsifier: Sparsifier) -> ClientUpload:
        """Run the sparsifier's client selection and package the upload.

        Selections are unique and in-range by the sparsifier contract and
        sorted here, so the payload takes the trusted
        :meth:`SparseVector.from_sorted` constructor instead of paying a
        re-sort/duplicate scan on every upload.
        """
        indices = sparsifier.client_select(self.residual, k, self._rng)
        self._last_upload_indices = np.sort(np.asarray(indices, dtype=np.int64))
        payload = SparseVector.from_sorted(
            self._last_upload_indices,
            self.residual[self._last_upload_indices],
            self.dimension,
        )
        return ClientUpload(
            client_id=self.client_id,
            payload=payload,
            sample_count=self.sample_count,
        )

    def build_upload(
        self, sorted_indices: np.ndarray, values: np.ndarray | None = None
    ) -> ClientUpload:
        """Package an upload for externally selected (sorted) indices.

        Used by vectorized backends whose batched selection already
        produced each client's sorted unique index row; skips re-running
        the per-client selection and the payload validation pass.
        ``values``, when given, must equal ``residual[sorted_indices]``
        (backends gather all clients' values in one batched operation).
        """
        self._last_upload_indices = sorted_indices
        if values is None:
            values = self.residual[sorted_indices]
        payload = SparseVector.from_sorted(
            sorted_indices, values, self.dimension
        )
        return ClientUpload(
            client_id=self.client_id,
            payload=payload,
            sample_count=self.sample_count,
        )

    def reset_transmitted(
        self, selected: np.ndarray, transmitted: SparseVector | None = None
    ) -> None:
        """Clear the transmitted part of the residual at ``J ∩ J_i``.

        With exact uploads this zeroes the entries (Algorithm 1, lines
        16–17).  When a compression wrapper altered the uploaded values
        (e.g. quantization), pass the *actually transmitted* payload via
        ``transmitted``: the residual keeps the compression error
        (error feedback), which is what makes quantized GS unbiased over
        time.
        """
        if self._last_upload_indices is None:
            raise RuntimeError("reset_transmitted called before local_step")
        hit = np.intersect1d(
            selected, self._last_upload_indices, assume_unique=True
        )
        if self._velocity is not None:
            # DGC momentum factor masking: stop momentum at transmitted
            # coordinates so stale velocity does not re-inflate them.
            self._velocity[hit] = 0.0
        if transmitted is None:
            self.residual[hit] = 0.0
            return
        pos = np.searchsorted(transmitted.indices, hit)
        valid = pos < transmitted.indices.size
        pos_clipped = np.minimum(pos, max(transmitted.indices.size - 1, 0))
        matches = valid & (transmitted.indices[pos_clipped] == hit)
        self.residual[hit[matches]] -= transmitted.values[pos_clipped[matches]]
        self.residual[hit[~matches]] = 0.0

    def drop_upload(self) -> None:
        """Record that this round's upload never reached the server.

        Deployment scenarios call this for deadline-missed uploads: the
        residual keeps the full accumulated gradient (Algorithm 1 never
        reset it — that is what lets top-k/FAB recover the information in
        a later round), and forgetting the upload's index set guards
        against a stray :meth:`reset_transmitted` clearing coordinates
        the server never saw.
        """
        self._last_upload_indices = None

    def reset_all(self) -> None:
        """Drop the whole residual (non-accumulating schemes, e.g. [30])."""
        if self._residual is not None:
            self._residual[:] = 0.0
        if self._velocity is not None:
            self._velocity[:] = 0.0
        self._spilled_residual = None
        self._spilled_velocity = None

    # ------------------------------------------------------------------
    # Probes for the derivative-sign estimator (paper Section IV-E)
    # ------------------------------------------------------------------
    def draw_probe_sample(self) -> None:
        """Pick one random sample h from the current round's minibatch."""
        if self._last_batch is None:
            raise RuntimeError("draw_probe_sample called before local_step")
        x, y = self._last_batch
        h = int(self._rng.integers(0, x.shape[0]))
        self.probe_sample = (x[h : h + 1], y[h : h + 1])

    def probe_loss(self, model: FlatModel, weights: np.ndarray) -> float:
        """Loss ``f_{i,h}(weights)`` of the probe sample at given weights."""
        if self.probe_sample is None:
            raise RuntimeError("probe_loss called before draw_probe_sample")
        x, y = self.probe_sample
        return float(model.per_sample_losses_at(weights, x, y)[0])

    def local_loss(self, model: FlatModel) -> float:
        """Full local loss ``L(w, i)`` at the model's current weights."""
        return model.loss_value(self.dataset.x, self.dataset.y)
