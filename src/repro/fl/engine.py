"""The shared round engine: Algorithm 1's skeleton, written once.

Every trainer in this repo runs the same synchronized round protocol
(paper Fig. 3 / Algorithm 1); what differs between them is small and
pluggable.  :class:`RoundEngine` owns the invariant skeleton:

1.  participant sampling (all clients, or a ``ClientSampler`` subset),
2.  local steps — delegated to an
    :class:`~repro.fl.backends.ExecutionBackend` (serial reference loop or
    the vectorized batched pass),
3.  ``Sparsifier.preprocess_uploads`` → ``server_select`` → weighted
    aggregation (:class:`~repro.fl.server.Server`),
4.  the synchronized weight update (plain SGD step or a server-side
    optimizer),
5.  residual reset at ``J ∩ J_i`` (plus full reset for non-accumulating
    schemes),
6.  normalized-time accounting and the evaluation cadence,
7.  :class:`~repro.fl.metrics.RoundRecord` construction and history
    bookkeeping.

What varies is injected through :class:`RoundHooks` — the adaptive-k
trainer hooks in its probe-loss measurements, probe-weight derivation
(step ③ of Fig. 3), extra probe communication charges, and the policy
feedback, without duplicating any of the skeleton.  Trainers with a
different *local* phase (FedAvg's local SGD on per-client weight copies,
always-send-all's dense aggregation) reuse steps 6–7 through
:meth:`RoundEngine.begin_round` / :meth:`RoundEngine.finish_round`.

``FLTrainer``, ``AdaptiveKTrainer``, ``FedAvgTrainer`` and
``AlwaysSendAllTrainer`` are thin façades over this class; their public
APIs and produced histories are unchanged from the pre-engine
implementations.  This is also the seam future scaling work (async
rounds, client dropout, multiprocessing, sharding) plugs into: a new
scenario is a new hook object or backend, not a fourth copy of the loop.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.partition import FederatedDataset
from repro.fl.backends import ExecutionBackend, resolve_backend
from repro.obs import NULL_TELEMETRY, SPARSE_ELEMENT_BYTES
from repro.fl.client import Client
from repro.fl.metrics import RoundRecord, TrainingHistory
from repro.fl.server import Server
from repro.nn.flat import FlatModel
from repro.simulation.timing import RoundTiming, TimingModel
from repro.sparsify.base import (
    ClientUpload,
    DownlinkMessage,
    SelectionResult,
    Sparsifier,
)


class RoundContext:
    """Mutable state of one in-flight round, passed to every hook.

    The engine fills fields progressively; a hook may only rely on the
    fields populated before its call point (documented per hook).
    """

    def __init__(self, engine: "RoundEngine", round_index: int, k: int) -> None:
        self.engine = engine
        self.round_index = round_index
        #: integer sparsity actually played this round
        self.k = k
        #: synchronized weights w(m-1), captured before local steps
        self.w_prev: np.ndarray | None = None
        self.participant_ids: list[int] | None = None
        self.participants: list[Client] = []
        self.uploads: list[ClientUpload] = []
        self.selection: SelectionResult | None = None
        self.downlink: DownlinkMessage | None = None
        #: weights w(m) after the synchronized update
        self.w_new: np.ndarray | None = None
        self.uplink_elements: int = 0
        self.round_timing: RoundTiming | None = None
        #: total charged time including hook extras
        self.round_time: float = 0.0
        #: client ids whose uploads a scenario hook dropped this round
        self.dropped_ids: tuple[int, ...] = ()
        #: aggregation-weight override (deployment scenarios reweighting
        #: a partial aggregate over the full sampled cohort); None means
        #: the server normalizes over the received uploads.
        self.aggregation_weight: float | None = None
        #: evaluation-pool loss at ``w_new``, if a hook already computed
        #: it (adaptive-deadline probes); the engine then reuses it on
        #: eval-cadence rounds instead of re-running the identical
        #: deterministic forward pass.
        self.eval_loss: float | None = None


class RoundHooks:
    """Extension points for trainer-specific behaviour inside a round.

    The default implementations are all no-ops, giving exactly the plain
    Algorithm-1 round.  Call order within :meth:`RoundEngine.run_round`:

    ``after_local_steps`` (uploads drawn, model still at ``w_prev``) →
    ``after_aggregate`` (selection/downlink ready, update not applied) →
    ``after_update`` (model at ``w_new``, residuals reset) →
    ``round_timing`` (may replace the default charge) →
    ``extra_round_time`` (timing computed) → ``observe`` (round_time
    final, before evaluation/record).

    ``after_local_steps`` may *filter* ``ctx.uploads`` and
    ``ctx.participants`` (keeping the two lists aligned) — this is how
    deployment scenarios drop deadline-missing uploads; every later
    phase (selection, aggregation, residual reset) then sees only the
    survivors, so dropped clients keep their residuals.
    """

    #: ask the backend to draw one-sample probes during local steps
    wants_probes = False

    def after_local_steps(self, ctx: RoundContext) -> None:
        """Uploads collected; model still holds ``w_prev``."""

    def after_aggregate(self, ctx: RoundContext) -> None:
        """``ctx.selection``/``ctx.downlink`` ready; update not applied."""

    def after_update(self, ctx: RoundContext) -> None:
        """Model holds ``ctx.w_new``; residuals already reset."""

    def round_timing(self, ctx: RoundContext) -> RoundTiming | None:
        """Replace the round's timing charge, or None for the default.

        Called after ``after_update`` with ``ctx.selection`` final.
        Deployment scenarios override this to charge the deadline-bounded
        round close instead of the straggler tail.
        """
        del ctx
        return None

    def extra_round_time(self, ctx: RoundContext) -> float:
        """Additional normalized time to charge (e.g. probe downlink)."""
        del ctx
        return 0.0

    def observe(self, ctx: RoundContext) -> None:
        """``ctx.round_time`` final; called before evaluation/record."""

    def record_k(self, ctx: RoundContext) -> float:
        """The k value stored in the round's record (default: played k)."""
        return float(ctx.k)


_DEFAULT_HOOKS = RoundHooks()


class ChainedHooks(RoundHooks):
    """Compose several hook objects into one (outermost first).

    Used by the engine to stack a persistent scenario hook under a
    trainer's per-round hooks: notification methods run in order (so a
    scenario's upload filtering happens before a trainer's probe
    measurements see ``ctx``), ``extra_round_time`` contributions add,
    ``round_timing`` takes the first override, and ``record_k`` defers
    to the innermost (trainer) hook — the one that knows what k meant.
    """

    def __init__(self, *hooks: RoundHooks | None) -> None:
        self.hooks = [h for h in hooks if h is not None]
        self.wants_probes = any(h.wants_probes for h in self.hooks)

    def after_local_steps(self, ctx: RoundContext) -> None:
        for hook in self.hooks:
            hook.after_local_steps(ctx)

    def after_aggregate(self, ctx: RoundContext) -> None:
        for hook in self.hooks:
            hook.after_aggregate(ctx)

    def after_update(self, ctx: RoundContext) -> None:
        for hook in self.hooks:
            hook.after_update(ctx)

    def round_timing(self, ctx: RoundContext) -> RoundTiming | None:
        for hook in self.hooks:
            override = hook.round_timing(ctx)
            if override is not None:
                return override
        return None

    def extra_round_time(self, ctx: RoundContext) -> float:
        return sum(hook.extra_round_time(ctx) for hook in self.hooks)

    def observe(self, ctx: RoundContext) -> None:
        for hook in self.hooks:
            hook.observe(ctx)

    def record_k(self, ctx: RoundContext) -> float:
        if not self.hooks:
            return float(ctx.k)
        return self.hooks[-1].record_k(ctx)


class EngineFacade:
    """Engine-delegation mixin shared by the trainer façades.

    Trainers set ``self.engine`` in their constructor; this mixin forwards
    the public surface the seed trainers exposed, so the three façades
    don't each carry a copy of the same property block.  Subclasses
    override the evaluation methods when they report something other than
    the current synchronized weights (FedAvg's weighted average).
    """

    engine: "RoundEngine"

    @property
    def model(self) -> FlatModel:
        return self.engine.model

    @property
    def federation(self) -> FederatedDataset:
        return self.engine.federation

    @property
    def sparsifier(self) -> Sparsifier | None:
        return self.engine.sparsifier

    @property
    def timing(self) -> TimingModel:
        return self.engine.timing

    @property
    def learning_rate(self) -> float:
        return self.engine.learning_rate

    @property
    def eval_every(self) -> int:
        return self.engine.eval_every

    @property
    def sampler(self):
        return self.engine.sampler

    @property
    def optimizer(self):
        return self.engine.optimizer

    @property
    def server(self) -> Server:
        return self.engine.server

    @property
    def clients(self) -> list[Client]:
        return self.engine.clients

    @property
    def history(self) -> TrainingHistory:
        return self.engine.history

    @property
    def round_index(self) -> int:
        """Index of the most recently completed round (0 before any)."""
        return self.engine.round_index

    @property
    def clock(self) -> float:
        """Cumulative normalized time elapsed."""
        return self.engine.clock

    @property
    def _eval_x(self) -> np.ndarray:
        return self.engine._eval_x

    @property
    def _eval_y(self) -> np.ndarray:
        return self.engine._eval_y

    def global_loss(self) -> float:
        """Global training loss L(w) at the current weights."""
        return self.engine.global_loss()

    def test_accuracy(self) -> float | None:
        """Accuracy on the held-out test pool, if the federation has one."""
        return self.engine.test_accuracy()

    def close(self) -> None:
        """Release the engine's execution backend (see RoundEngine.close)."""
        self.engine.close()


class RoundEngine:
    """Owns the Algorithm-1 round skeleton and all round bookkeeping.

    Parameters mirror the seed trainers'; see :class:`repro.fl.trainer.
    FLTrainer` for their meaning.  ``backend`` selects the execution
    strategy for the local-step phase (a name or an
    :class:`~repro.fl.backends.ExecutionBackend` instance); ``sparsifier``
    may be None for trainers that only use :meth:`begin_round` /
    :meth:`finish_round` (FedAvg-style local phases).
    """

    def __init__(
        self,
        model: FlatModel,
        federation: FederatedDataset,
        sparsifier: Sparsifier | None,
        timing: TimingModel,
        learning_rate: float = 0.01,
        batch_size: int = 32,
        eval_every: int = 1,
        eval_max_samples: int = 2000,
        sampler=None,
        momentum_correction: float = 0.0,
        optimizer=None,
        backend: str | ExecutionBackend | None = None,
        scenario_hooks: RoundHooks | None = None,
        spill_after: int = 0,
        telemetry=None,
        seed: int = 0,
        aggregator=None,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if eval_every < 1:
            raise ValueError("eval_every must be >= 1")
        if spill_after < 0:
            raise ValueError("spill_after must be >= 0")
        self.model = model
        self.federation = federation
        self.sparsifier = sparsifier
        self.timing = timing
        self.learning_rate = learning_rate
        self.eval_every = eval_every
        self.sampler = sampler
        self.optimizer = optimizer
        #: persistent hooks applied to *every* round under the per-call
        #: hooks (deployment scenarios: availability/deadline gating).
        self.scenario_hooks = scenario_hooks
        self.backend = resolve_backend(backend)
        #: observation only — telemetry consumes no RNG and touches no
        #: numeric state, so traced runs stay bit-identical to untraced.
        self.telemetry = NULL_TELEMETRY if telemetry is None else telemetry
        if telemetry is not None:
            self.backend.telemetry = self.telemetry
            if getattr(federation, "is_virtual", False):
                federation.telemetry = self.telemetry
        self._pending_trace: dict | None = None
        #: optional RobustAggregator (Byzantine-tolerant b_j); None keeps
        #: the paper's weighted-mean path byte-for-byte.
        self.server = Server(model.dimension, aggregator=aggregator)
        #: clients spill dense state after this many idle rounds (0 = off)
        self.spill_after = spill_after
        self._batch_size = batch_size
        self._momentum_correction = momentum_correction
        self._seed = seed
        #: virtual federations construct Client objects on first
        #: participation; eager ones keep the seed behaviour (all up
        #: front), so existing runs are bit-identical.
        self._virtual = bool(getattr(federation, "is_virtual", False))
        if self._virtual:
            self._client_list: list[Client] = []
            self._clients_by_id: dict[int, Client] = {}
        else:
            self._client_list = [
                Client(shard, model.dimension, batch_size=batch_size,
                       momentum_correction=momentum_correction, seed=seed)
                for shard in federation.clients
            ]
            self._clients_by_id = {c.client_id: c for c in self._client_list}
        self._last_active: dict[int, int] = {}
        self.history = TrainingHistory()
        self._round = 0
        self._clock = 0.0
        self._eval_x, self._eval_y = _build_eval_pool(
            federation, eval_max_samples, seed
        )

    # ------------------------------------------------------------------
    # State accessors
    # ------------------------------------------------------------------
    @property
    def round_index(self) -> int:
        """Index of the most recently started round (0 before any)."""
        return self._round

    @property
    def clock(self) -> float:
        """Cumulative normalized time elapsed."""
        return self._clock

    @property
    def clients(self) -> list[Client]:
        """Every constructed client.

        For eager federations this is the whole population (seed
        behaviour); for virtual federations it is the *ever-touched* set
        in first-participation order — the only clients that exist.
        """
        return self._client_list

    def _client_for(self, cid: int) -> Client:
        """The client object for ``cid``, constructing it on first touch
        (virtual federations only — eager populations pre-exist)."""
        client = self._clients_by_id.get(cid)
        if client is None:
            if not self._virtual:
                raise KeyError(cid)
            client = Client(
                self.federation.client_dataset(cid), self.model.dimension,
                batch_size=self._batch_size,
                momentum_correction=self._momentum_correction,
                seed=self._seed,
            )
            self._clients_by_id[cid] = client
            self._client_list.append(client)
        return client

    def _all_participants(self) -> list[Client]:
        """The no-sampler cohort: the entire population.

        Virtual federations materialize every client here — a guarded
        small-N escape hatch (bit-identity tests run full-participation
        rounds); population-scale runs always come with a sampler.
        """
        if self._virtual:
            return [self._client_for(cid) for cid in self.federation.client_ids]
        return self._client_list

    def _note_participation(self, participants: list[Client]) -> None:
        """Track last-active rounds and hibernate long-idle clients.

        O(ever-touched) per round, only when ``spill_after`` is enabled;
        hibernation is exact (sparse spill + regenerable datasets), so
        results are identical with spilling on or off.
        """
        if not self.spill_after:
            return
        for client in participants:
            self._last_active[client.client_id] = self._round
        for client in self._client_list:
            if client.hibernating:
                continue
            idle = self._round - self._last_active.get(
                client.client_id, self._round
            )
            if idle >= self.spill_after:
                client.hibernate()
                if self.telemetry.enabled:
                    self.telemetry.count("engine.residual_spill")

    def global_loss(self) -> float:
        """Global training loss L(w) at the current weights."""
        return self.model.loss_value(self._eval_x, self._eval_y)

    def test_accuracy(self) -> float | None:
        """Accuracy on the held-out test pool, if the federation has one."""
        if self.federation.test_x is None or self.federation.test_y is None:
            return None
        return self.model.accuracy(self.federation.test_x, self.federation.test_y)

    def close(self) -> None:
        """Release the execution backend's resources once training is done.

        Process-backed backends (sharded) hold a worker pool; closing the
        engine shuts it down deterministically.  Serial/vectorized
        backends make this a no-op.  Only call when this engine is the
        backend's sole user — drivers sharing one backend across trainers
        close the backend itself instead.
        """
        self.backend.close()

    # ------------------------------------------------------------------
    # The full sparse-GS round (FLTrainer / AdaptiveKTrainer path)
    # ------------------------------------------------------------------
    def run_round(
        self,
        k: int,
        hooks: RoundHooks | None = None,
        ensure_loss: bool = False,
    ) -> RoundRecord:
        """Run one Algorithm-1 round with sparsity ``k`` and record it.

        ``ensure_loss`` evaluates the global loss even on rounds the
        evaluation cadence would skip (the stopping rule of
        ``run_until_loss`` needs it); accuracy keeps the normal cadence.
        """
        if self.sparsifier is None:
            raise RuntimeError("run_round requires a sparsifier")
        if not 1 <= k <= self.model.dimension:
            raise ValueError(
                f"k must be in [1, {self.model.dimension}], got {k}"
            )
        hooks = hooks if hooks is not None else _DEFAULT_HOOKS
        if self.scenario_hooks is not None:
            hooks = ChainedHooks(self.scenario_hooks, hooks)
        ctx = RoundContext(self, self.begin_round(), k)

        tel = self.telemetry
        tracing = tel.enabled
        if tracing:
            phases: dict[str, float] = {}
            wall_start = mark = time.perf_counter()

            def lap(phase: str) -> None:
                # Hook work around local steps (deadline gate, replays,
                # probe evals) accumulates under one "probe" phase.
                nonlocal mark
                now = time.perf_counter()
                phases[phase] = phases.get(phase, 0.0) + (now - mark)
                mark = now

        start_round = getattr(self.sparsifier, "start_round", None)
        if start_round is not None:
            start_round(k)

        if self.sampler is not None:
            ctx.participant_ids = self.sampler.sample()
            ctx.participants = [
                self._client_for(cid) for cid in ctx.participant_ids
            ]
        else:
            ctx.participant_ids = None
            ctx.participants = self._all_participants()
        if tracing:
            lap("sample")
            restored = sum(1 for c in ctx.participants if c.hibernating)
            if restored:
                tel.count("engine.residual_restore", restored)

        ctx.w_prev = self.model.get_weights()
        ctx.uploads = self.backend.local_steps(
            self.model, ctx.participants, k, self.sparsifier,
            draw_probes=hooks.wants_probes,
        )
        if tracing:
            lap("local_steps")
        hooks.after_local_steps(ctx)
        if tracing:
            lap("probe")

        ctx.uploads = self.sparsifier.preprocess_uploads(ctx.uploads)
        if tracing:
            lap("preprocess")
        ctx.selection = self.sparsifier.server_select(
            ctx.uploads, k, self.model.dimension
        )
        if tracing:
            lap("select")
        ctx.downlink = self.server.aggregate(
            ctx.uploads, ctx.selection, total_weight=ctx.aggregation_weight
        )
        if tracing:
            lap("aggregate")
        hooks.after_aggregate(ctx)
        if tracing:
            lap("probe")

        sparse_update = ctx.downlink.payload
        weights = ctx.w_prev.copy()
        if self.optimizer is not None:
            weights = self.optimizer.step(weights, sparse_update.to_dense())
        else:
            weights[sparse_update.indices] -= (
                self.learning_rate * sparse_update.values
            )
        ctx.w_new = weights
        self.model.set_weights(weights)
        if tracing:
            lap("update")

        self.backend.reset_residuals(
            ctx.participants, ctx.uploads, ctx.selection.indices
        )
        if self.sparsifier.discards_residual:
            for client in ctx.participants:
                client.reset_all()
        self._note_participation(ctx.participants)
        if tracing:
            lap("residual_reset")
        hooks.after_update(ctx)
        if tracing:
            lap("probe")

        ctx.uplink_elements = max(up.payload.nnz for up in ctx.uploads)
        timing_override = hooks.round_timing(ctx)
        sparse_round_for = getattr(self.timing, "sparse_round_for", None)
        if timing_override is not None:
            ctx.round_timing = timing_override
        elif sparse_round_for is not None:
            ctx.round_timing = sparse_round_for(
                ctx.uplink_elements, ctx.selection.downlink_element_count,
                ctx.participant_ids,
            )
        else:
            ctx.round_timing = self.timing.sparse_round(
                ctx.uplink_elements, ctx.selection.downlink_element_count
            )
        ctx.round_time = ctx.round_timing.total + hooks.extra_round_time(ctx)
        hooks.observe(ctx)
        if tracing:
            lap("probe")
            self._pending_trace = {
                "phases": phases,
                "wall_start": wall_start,
                "participants": len(ctx.participants),
                "dropped_ids": list(ctx.dropped_ids),
                "uplink_bytes": SPARSE_ELEMENT_BYTES * sum(
                    up.payload.nnz for up in ctx.uploads
                ),
            }

        return self.finish_round(
            k=hooks.record_k(ctx),
            round_time=ctx.round_time,
            uplink_elements=ctx.uplink_elements,
            downlink_elements=ctx.selection.downlink_element_count,
            contributions=dict(ctx.selection.contributions),
            loss_fn=(
                (lambda: ctx.eval_loss) if ctx.eval_loss is not None
                else None
            ),
            ensure_loss=ensure_loss,
        )

    # ------------------------------------------------------------------
    # Skeleton primitives for trainers with a custom local phase
    # ------------------------------------------------------------------
    def begin_round(self) -> int:
        """Advance and return the 1-based round counter."""
        self._round += 1
        if self.telemetry.enabled:
            # Lets the worker-event merge (repro.parallel.pool) stamp
            # buffered spans with the round they belong to.
            self.telemetry.current_round = self._round
        return self._round

    def finish_round(
        self,
        k: float,
        round_time: float,
        uplink_elements: int,
        downlink_elements: int,
        contributions: dict[int, int] | None = None,
        loss_fn=None,
        accuracy_fn=None,
        ensure_loss: bool = False,
    ) -> RoundRecord:
        """Charge time, evaluate on cadence, record, and append the round.

        ``loss_fn``/``accuracy_fn`` default to the engine's global loss
        and test accuracy; FedAvg-style trainers override them to
        evaluate their averaged model instead.
        """
        tel = self.telemetry
        trace = self._pending_trace
        self._pending_trace = None
        self._clock += round_time
        evaluate = (self._round % self.eval_every == 0) or (self._round == 1)
        if tel.enabled:
            eval_start = time.perf_counter()
        if evaluate:
            loss = (loss_fn or self.global_loss)()
            accuracy = (accuracy_fn or self.test_accuracy)()
        else:
            loss = (loss_fn or self.global_loss)() if ensure_loss else float("nan")
            accuracy = None
        if tel.enabled:
            # Trainers that skip run_round (FedAvg-style local phases)
            # still emit a round event, with an eval-only breakdown.
            phases = trace["phases"] if trace else {}
            phases["eval"] = time.perf_counter() - eval_start
            extra = dict(trace["extra"]) if trace and "extra" in trace else {}
            # JSON has no literal for NaN/±inf, so a non-finite loss
            # ships as None plus a machine-readable marker — the stream
            # stays strict JSON and the health monitor's divergence
            # detector still sees the blow-up.  Cadence-skipped rounds
            # (loss never evaluated) get a bare None, no marker.
            loss_value = float(loss)
            if not np.isfinite(loss_value) and (evaluate or ensure_loss):
                extra["loss_nonfinite"] = (
                    "nan" if loss_value != loss_value
                    else ("inf" if loss_value > 0 else "-inf")
                )
            tel.event(
                "round",
                round=self._round,
                k=k,
                round_time=round_time,
                cumulative_time=self._clock,
                loss=loss_value if np.isfinite(loss_value) else None,
                accuracy=None if accuracy is None else float(accuracy),
                participants=(trace["participants"] if trace
                              else len(self._client_list)),
                dropped=len(trace["dropped_ids"]) if trace else 0,
                dropped_ids=trace["dropped_ids"] if trace else [],
                uplink_elements=uplink_elements,
                downlink_elements=downlink_elements,
                uplink_bytes=(trace["uplink_bytes"] if trace
                              else uplink_elements * SPARSE_ELEMENT_BYTES),
                downlink_bytes=downlink_elements * SPARSE_ELEMENT_BYTES,
                wall_seconds=(time.perf_counter() - trace["wall_start"]
                              if trace else phases["eval"]),
                phases=phases,
                **extra,
            )
        record = RoundRecord(
            round_index=self._round,
            k=k,
            round_time=round_time,
            cumulative_time=self._clock,
            loss=loss,
            accuracy=accuracy,
            uplink_elements=uplink_elements,
            downlink_elements=downlink_elements,
            contributions=contributions if contributions is not None else {},
        )
        self.history.append(record)
        return record


def _build_eval_pool(
    federation: FederatedDataset, max_samples: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministically subsample the global pool for loss evaluation.

    Federations exposing an ``eval_pool`` (virtual populations) build the
    identical pool without concatenating the whole population.
    """
    eval_pool = getattr(federation, "eval_pool", None)
    if eval_pool is not None:
        return eval_pool(max_samples, seed)
    x, y = federation.global_pool()
    if x.shape[0] > max_samples:
        rng = np.random.default_rng((seed, 0xE0A1))
        idx = rng.choice(x.shape[0], size=max_samples, replace=False)
        x, y = x[idx], y[idx]
    return x, y
