"""Robust aggregation over sparse uploads: Byzantine-tolerant ``b_j``.

The plain :class:`~repro.fl.server.Server` computes the paper's weighted
mean ``b_j = (1/C) Σ_i C_i a_ij 1[j ∈ J_i]`` — a single corrupted upload
moves it arbitrarily far.  A :class:`RobustAggregator` replaces the mean
with a coordinate-wise robust statistic while keeping every protocol
invariant the rest of the system rests on:

- **Ragged support.**  Top-k uploads give every selected coordinate its
  own uploader set ``{i : j ∈ J_i}``; the statistic runs over the values
  actually uploaded for ``j`` (an absent coordinate is *absent*, not
  zero — treating it as zero would let sparsity masquerade as dissent).
- **Scale compatibility.**  The robust center is a per-uploader average
  where the mean path computes a ``C``-normalized sum, so the center is
  rescaled by the coordinate's support weight share
  ``(Σ_{uploaders j} C_i) / C``: with all values equal the robust
  aggregate reproduces the plain mean's magnitude exactly, and the
  ``total_weight`` seam (cohort-mode reweighting of partial aggregates)
  carries over unchanged.
- **Determinism.**  Pure ``numpy`` arithmetic on the parent-owned
  uploads, no RNG — robust runs stay bit-identical across the serial,
  vectorized and sharded execution backends.
- **Counterfactual safety.**  Deadline probes re-aggregate upload
  subsets through the same server; they pass ``commit=False`` so a
  stateful aggregator (the cosine reputation EMA) and the detection
  flags never observe a counterfactual round.

Each aggregator also *detects*: :attr:`RobustAggregator.last_flags`
holds the ``(client_id, score)`` pairs the last committed aggregation
found suspicious, which :class:`~repro.scenarios.scenario.ScenarioHooks`
emits as ``flagged`` telemetry events.  Flag computation is deterministic
arithmetic on the same operands (no RNG, no training state), so tracing
it costs nothing and changes nothing.
"""

from __future__ import annotations

import numpy as np

from repro.sparsify.base import (
    ClientUpload,
    DownlinkMessage,
    SelectionResult,
    SparseVector,
)

#: ``ScenarioConfig.aggregator`` values.  ``"mean"`` maps to *no*
#: aggregator object at all — the plain :class:`~repro.fl.server.Server`
#: path runs byte-for-byte unchanged, which is what keeps the degenerate
#: (no-adversary, mean) scenario bit-identical to the plain trainer.
AGGREGATOR_KINDS = ("mean", "trimmed_mean", "median", "cosine")


class _CoordinateView:
    """Per-coordinate view of a ragged upload set, sorted by value.

    Shared scaffolding of the robust statistics: every (upload,
    coordinate) hit inside the selection ``J`` is flattened, then sorted
    by ``(coordinate, value)`` so each coordinate's uploader values form
    a contiguous ascending run — order statistics (trim boundaries,
    medians) become cumulative-sum arithmetic over run boundaries.
    """

    def __init__(
        self,
        uploads: list[ClientUpload],
        selected: np.ndarray,
        value_scales: np.ndarray | None = None,
    ) -> None:
        pos_parts, val_parts, weight_parts, row_parts = [], [], [], []
        for row, up in enumerate(uploads):
            indices = up.payload.indices
            pos = np.searchsorted(selected, indices)
            in_range = pos < selected.size
            pos_clipped = np.minimum(pos, max(selected.size - 1, 0))
            hits = in_range & (selected[pos_clipped] == indices)
            pos_parts.append(pos_clipped[hits])
            values = up.payload.values[hits]
            if value_scales is not None:
                values = values * value_scales[row]
            val_parts.append(values)
            count = int(hits.sum())
            weight_parts.append(np.full(count, float(up.sample_count)))
            row_parts.append(np.full(count, row, dtype=np.int64))
        pos_all = np.concatenate(pos_parts) if pos_parts else np.empty(0, np.int64)
        val_all = np.concatenate(val_parts) if val_parts else np.empty(0)
        weight_all = (
            np.concatenate(weight_parts) if weight_parts else np.empty(0)
        )
        row_all = (
            np.concatenate(row_parts) if row_parts else np.empty(0, np.int64)
        )
        order = np.lexsort((val_all, pos_all))
        self.pos = pos_all[order]
        self.values = val_all[order]
        self.weights = weight_all[order]
        self.rows = row_all[order]
        #: run boundaries: coordinate j's values are values[starts[j]:ends[j]]
        self.starts = np.searchsorted(self.pos, np.arange(selected.size))
        self.ends = np.searchsorted(
            self.pos, np.arange(selected.size), side="right"
        )
        self.counts = self.ends - self.starts
        #: rank of each hit within its coordinate's ascending run
        self.ranks = np.arange(self.pos.size) - self.starts[self.pos]
        self._value_cumsum = np.concatenate(([0.0], np.cumsum(self.values)))
        self._weight_cumsum = np.concatenate(([0.0], np.cumsum(self.weights)))

    def range_sum(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Σ values over sorted slots ``[lo, hi)`` per coordinate."""
        return self._value_cumsum[hi] - self._value_cumsum[lo]

    def support_weight(self) -> np.ndarray:
        """Σ C_i over coordinate j's uploaders (the mean path's mass)."""
        return self._weight_cumsum[self.ends] - self._weight_cumsum[self.starts]


class RobustAggregator:
    """Interface: a drop-in replacement for the server's weighted mean.

    Subclasses implement :meth:`robust_values` (the per-coordinate
    statistic over a :class:`_CoordinateView`) and may record detection
    flags through :meth:`_record_flags`.  :meth:`aggregate` owns the
    shared frame: total-weight resolution, support-weight rescaling, and
    the ``commit`` discipline (counterfactual probes must not advance
    reputation state or overwrite the round's flags).
    """

    name = "abstract"

    #: Uploads whose L2 norm exceeds ``clip_factor ×`` the round's
    #: median upload norm are scaled down to that bound before the
    #: coordinate-wise statistic runs.  This is what defends the
    #: *singleton-support* coordinates top-k sparsification produces: a
    #: coordinate only one (possibly Byzantine) client uploaded has
    #: nothing to trim or take a median over — an order statistic alone
    #: passes an amplified poison value straight through — but norm
    #: clipping bounds it to honest magnitude first.  ``None`` disables
    #: clipping.
    clip_factor: float | None = 2.0

    def __init__(self) -> None:
        #: ``(client_id, score)`` pairs of the last *committed* round
        self.last_flags: list[tuple[int, float]] = []

    def aggregate(
        self,
        uploads: list[ClientUpload],
        selection: SelectionResult,
        dimension: int,
        total_weight: float | None = None,
        commit: bool = True,
    ) -> DownlinkMessage:
        if not uploads:
            raise ValueError("no uploads to aggregate")
        if total_weight is None:
            total_weight = float(sum(up.sample_count for up in uploads))
        elif total_weight <= 0:
            raise ValueError("total_weight must be positive")
        selected = selection.indices
        if commit:
            self.last_flags = []
        if selected.size == 0:
            payload = SparseVector.from_sorted(
                selected, np.zeros(0), dimension
            )
            return DownlinkMessage(payload=payload)
        view = _CoordinateView(
            uploads, selected, value_scales=self._norm_clip_scales(uploads)
        )
        centers = self.robust_values(view, uploads, commit=commit)
        values = np.where(
            view.counts > 0,
            centers * view.support_weight() / total_weight,
            0.0,
        )
        payload = SparseVector.from_sorted(selected, values, dimension)
        return DownlinkMessage(payload=payload)

    def robust_values(
        self,
        view: _CoordinateView,
        uploads: list[ClientUpload],
        commit: bool = True,
    ) -> np.ndarray:
        """Per-coordinate robust center (0 where no one uploaded)."""
        raise NotImplementedError

    def _norm_clip_scales(
        self, uploads: list[ClientUpload]
    ) -> np.ndarray | None:
        """Per-upload scale factors bounding each upload to
        ``clip_factor × median upload norm`` (None = no clipping)."""
        if self.clip_factor is None:
            return None
        norms = np.array([
            float(np.linalg.norm(up.payload.values)) for up in uploads
        ])
        positive = norms[norms > 0.0]
        if positive.size == 0:
            return None
        bound = self.clip_factor * float(np.median(positive))
        if bound <= 0.0:
            return None
        return np.where(norms > bound, bound / np.maximum(norms, 1e-300), 1.0)

    def _record_flags(
        self, uploads: list[ClientUpload], scores: dict[int, float]
    ) -> None:
        """Store this round's flags sorted by client id (deterministic)."""
        self.last_flags = [
            (cid, float(scores[cid])) for cid in sorted(scores)
        ]


class _RankFlagAggregator(RobustAggregator):
    """Shared flagging rule of the order-statistic aggregators.

    A client is suspicious when its values sit in the trimmed/extreme
    tail of their coordinate's order run for at least
    ``flag_threshold`` of the coordinates it uploaded (counting only
    coordinates whose run is long enough for a tail to exist, and only
    clients with at least ``min_eligible`` such coordinates — thin
    top-k support gives too few order statistics to judge by).  The
    score is that tail rate.  Rank flags are a *noisy* detector by
    construction — an honest client with unusual data sits in the tails
    too — which is why the event schema carries the scores: consumers
    aggregate over rounds rather than trust a single flag.
    """

    def __init__(
        self, flag_threshold: float = 0.6, min_eligible: int = 4
    ) -> None:
        super().__init__()
        if not 0.0 < flag_threshold <= 1.0:
            raise ValueError("flag_threshold must be in (0, 1]")
        if min_eligible < 1:
            raise ValueError("min_eligible must be >= 1")
        self.flag_threshold = flag_threshold
        self.min_eligible = min_eligible

    def _flag_by_tail(
        self,
        view: _CoordinateView,
        uploads: list[ClientUpload],
        tail: np.ndarray,
    ) -> None:
        """Flag clients by their per-coordinate tail rate.

        ``tail`` is per-coordinate: how many slots at *each* end of the
        run count as the rejected tail (0 disables the coordinate).
        """
        per_coord_tail = tail[view.pos]
        eligible = per_coord_tail > 0
        counts = view.counts[view.pos]
        in_tail = eligible & (
            (view.ranks < per_coord_tail)
            | (view.ranks >= counts - per_coord_tail)
        )
        uploaded = np.zeros(len(uploads))
        tailed = np.zeros(len(uploads))
        np.add.at(uploaded, view.rows[eligible], 1.0)
        np.add.at(tailed, view.rows[in_tail], 1.0)
        scores: dict[int, float] = {}
        for row, up in enumerate(uploads):
            if uploaded[row] < self.min_eligible:
                continue
            rate = tailed[row] / uploaded[row]
            if rate >= self.flag_threshold:
                scores[up.client_id] = rate
        self._record_flags(uploads, scores)


class TrimmedMeanAggregator(_RankFlagAggregator):
    """Coordinate-wise trimmed mean over each coordinate's uploaders.

    For coordinate ``j`` with ``n_j`` uploader values, the
    ``t_j = min(⌊trim_fraction · n_j⌋, (n_j − 1) // 2)`` smallest and
    largest values are discarded and the rest averaged — at least one
    value always survives, and coordinates too thin to trim
    (``n_j ≤ 1/trim_fraction``) degrade gracefully to the plain
    per-uploader mean.  Tolerates up to a ``trim_fraction`` fraction of
    Byzantine uploaders per coordinate.
    """

    name = "trimmed_mean"

    def __init__(
        self, trim_fraction: float = 0.25, flag_threshold: float = 0.6
    ) -> None:
        super().__init__(flag_threshold=flag_threshold)
        if not 0.0 <= trim_fraction < 0.5:
            raise ValueError("trim_fraction must be in [0, 0.5)")
        self.trim_fraction = trim_fraction

    def robust_values(self, view, uploads, commit=True):
        counts = view.counts
        trim = np.minimum(
            (self.trim_fraction * counts).astype(np.int64),
            np.maximum(counts - 1, 0) // 2,
        )
        kept = np.maximum(counts - 2 * trim, 1)
        total = view.range_sum(view.starts + trim, view.ends - trim)
        if commit:
            self._flag_by_tail(view, uploads, trim)
        return total / kept


class MedianAggregator(_RankFlagAggregator):
    """Coordinate-wise median — the maximal trim, breakdown point 1/2.

    Flags clients whose values are the strict extremes (rank 0 or
    ``n_j − 1``) of coordinates with at least three uploaders.
    """

    name = "median"

    def robust_values(self, view, uploads, commit=True):
        counts = view.counts
        safe = np.maximum(counts, 1)
        lo = view.starts + (safe - 1) // 2
        hi = view.starts + safe // 2
        clip = max(view.values.size - 1, 0)
        median = 0.5 * (
            view.values[np.minimum(lo, clip)]
            + view.values[np.minimum(hi, clip)]
        )
        if commit:
            self._flag_by_tail(
                view, uploads, np.where(counts >= 3, 1, 0)
            )
        return np.where(counts > 0, median, 0.0)


class CosineReputationAggregator(RobustAggregator):
    """Reputation-weighted mean, reputations from cosine similarity.

    Each upload is scored by the cosine between its values and the
    coordinate-wise *median* aggregate restricted to its own support —
    the median (not the mean) is the reference so a colluding majority
    of one round cannot define "normal".  Scores feed an exponential
    moving average per client id (``rep ← memory·rep + (1−memory)·cos``,
    initialized at the first observation), and the aggregate is the
    per-coordinate weighted mean with each client's sample count scaled
    by ``max(rep, 0)`` — a client whose updates consistently oppose the
    robust consensus is weighted out entirely.  Clients with negative
    reputation are flagged (score = reputation).

    The EMA is the one stateful piece of the aggregator hierarchy;
    ``commit=False`` (counterfactual deadline probes) reads the current
    reputations without advancing them.
    """

    name = "cosine"

    def __init__(self, memory: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= memory < 1.0:
            raise ValueError("memory must be in [0, 1)")
        self.memory = memory
        #: client id -> reputation EMA in [-1, 1]
        self.reputation: dict[int, float] = {}

    def _cosines(self, view, uploads) -> np.ndarray:
        counts = view.counts
        safe = np.maximum(counts, 1)
        lo = view.starts + (safe - 1) // 2
        hi = view.starts + safe // 2
        clip = max(view.values.size - 1, 0)
        reference = np.where(
            counts > 0,
            0.5 * (
                view.values[np.minimum(lo, clip)]
                + view.values[np.minimum(hi, clip)]
            ),
            0.0,
        )
        per_hit = view.values * reference[view.pos]
        dots = np.zeros(len(uploads))
        norms = np.zeros(len(uploads))
        ref_norms = np.zeros(len(uploads))
        np.add.at(dots, view.rows, per_hit)
        np.add.at(norms, view.rows, view.values**2)
        np.add.at(ref_norms, view.rows, reference[view.pos] ** 2)
        denom = np.sqrt(norms) * np.sqrt(ref_norms)
        return np.where(denom > 0.0, dots / np.maximum(denom, 1e-300), 0.0)

    def robust_values(self, view, uploads, commit=True):
        cosines = self._cosines(view, uploads)
        reputations = np.empty(len(uploads))
        for row, up in enumerate(uploads):
            previous = self.reputation.get(up.client_id)
            updated = (
                float(cosines[row]) if previous is None
                else self.memory * previous
                + (1.0 - self.memory) * float(cosines[row])
            )
            reputations[row] = updated
            if commit:
                self.reputation[up.client_id] = updated
        trust = np.maximum(reputations, 0.0)
        if not np.any(trust > 0.0):
            # Everyone distrusted (pathological round): fall back to the
            # plain weighted mean rather than aggregate nothing.
            trust = np.ones(len(uploads))
        per_hit_weight = view.weights * trust[view.rows]
        num = np.zeros(view.counts.size)
        den = np.zeros(view.counts.size)
        np.add.at(num, view.pos, per_hit_weight * view.values)
        np.add.at(den, view.pos, per_hit_weight)
        if commit:
            self._record_flags(uploads, {
                up.client_id: float(reputations[row])
                for row, up in enumerate(uploads)
                if reputations[row] < 0.0
            })
        return np.where(den > 0.0, num / np.maximum(den, 1e-300), 0.0)


def build_aggregator(
    kind: str, trim_fraction: float = 0.25
) -> RobustAggregator | None:
    """The aggregator a :class:`~repro.scenarios.config.ScenarioConfig`
    names; ``"mean"`` returns ``None`` (the plain server path, untouched).
    """
    if kind == "mean":
        return None
    if kind == "trimmed_mean":
        return TrimmedMeanAggregator(trim_fraction=trim_fraction)
    if kind == "median":
        return MedianAggregator()
    if kind == "cosine":
        return CosineReputationAggregator()
    raise ValueError(
        f"unknown aggregator {kind!r}; expected one of {AGGREGATOR_KINDS}"
    )
