"""Training diagnostics: residual state, gradient concentration, fairness.

These inspectors answer the questions an adopter of FAB-top-k asks while
tuning: how much gradient mass is parked in the residuals (staleness), how
concentrated the gradient actually is (whether top-k selection can work),
and how even the client contributions are (whether fairness is binding).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fl.client import Client
from repro.fl.metrics import TrainingHistory


@dataclass(frozen=True)
class ResidualStats:
    """Snapshot of the federation's residual state."""

    total_l1: float
    max_abs: float
    per_client_l1: dict[int, float]
    nonzero_fraction: float

    @property
    def mean_client_l1(self) -> float:
        if not self.per_client_l1:
            return 0.0
        return float(np.mean(list(self.per_client_l1.values())))


def residual_stats(clients) -> ResidualStats:
    """Aggregate residual statistics across clients.

    ``clients`` is a list of :class:`~repro.fl.client.Client` objects or
    anything exposing one via a ``.clients`` attribute — a trainer or
    round engine works directly.  For population-scale runs the engine's
    ever-touched list is the right source: it is O(touched), never an
    O(N) enumeration of the virtual federation.  The inspection is
    read-only — hibernating clients are measured through their sparse
    spill store without being woken, and an empty client set (nothing
    ever touched) yields zeroed stats.
    """
    client_list: list[Client] = list(getattr(clients, "clients", clients))
    if not client_list:
        return ResidualStats(
            total_l1=0.0, max_abs=0.0, per_client_l1={}, nonzero_fraction=0.0
        )
    per_client: dict[int, float] = {}
    max_abs = 0.0
    densities = []
    for client in client_list:
        magnitudes = np.abs(client.residual_nonzeros())
        per_client[client.client_id] = float(magnitudes.sum())
        if magnitudes.size:
            max_abs = max(max_abs, float(magnitudes.max()))
        densities.append(magnitudes.size / client.dimension)
    return ResidualStats(
        total_l1=float(sum(per_client.values())),
        max_abs=max_abs,
        per_client_l1=per_client,
        nonzero_fraction=float(np.mean(densities)),
    )


def gradient_concentration(gradient: np.ndarray, fractions=(0.001, 0.01, 0.1)
                           ) -> dict[float, float]:
    """Share of total |gradient| mass captured by the top-f fraction.

    Values near 1 at small f mean the gradient is heavy-tailed and top-k
    sparsification is nearly lossless; values near f mean the gradient is
    flat and sparsification costs information proportionally.
    """
    magnitude = np.sort(np.abs(gradient))[::-1]
    total = magnitude.sum()
    out: dict[float, float] = {}
    for f in fractions:
        if not 0 < f <= 1:
            raise ValueError("fractions must be in (0, 1]")
        count = max(1, int(round(f * magnitude.size)))
        out[f] = float(magnitude[:count].sum() / total) if total > 0 else 0.0
    return out


def layer_breakdown(
    vector: np.ndarray, layer_slices: list[slice]
) -> list[dict[str, float]]:
    """Per-layer share of a flat vector's magnitude.

    Used with :meth:`repro.nn.flat.FlatModel.parameter_slices` to see
    which layers dominate the gradient/residual — the information the
    layer-wise sparsifiers act on.  Each entry reports the layer's size,
    its share of total L1 mass, and its internal density.
    """
    if not layer_slices:
        raise ValueError("no layer slices")
    if layer_slices[-1].stop != vector.shape[0]:
        raise ValueError("slices do not cover the vector")
    total = float(np.abs(vector).sum())
    out = []
    for sl in layer_slices:
        part = vector[sl]
        mass = float(np.abs(part).sum())
        out.append({
            "start": float(sl.start),
            "size": float(part.size),
            "l1_share": mass / total if total > 0 else 0.0,
            "density": float(np.count_nonzero(part) / part.size),
        })
    return out


def fairness_index(contributions: dict[int, int]) -> float:
    """Jain's fairness index of per-client contribution totals.

    1.0 = perfectly even; 1/N = one client supplies everything.
    """
    if not contributions:
        raise ValueError("no contributions")
    values = np.array(list(contributions.values()), dtype=float)
    denominator = values.size * (values**2).sum()
    if denominator == 0:
        return 1.0
    return float(values.sum() ** 2 / denominator)


def history_fairness(history: TrainingHistory) -> float:
    """Jain index of the cumulative contributions in a training history."""
    return fairness_index(history.contribution_counts())


def staleness_histogram(
    clients: list[Client], round_index: int, last_sent: dict[int, np.ndarray]
) -> np.ndarray:
    """Rounds-since-transmission histogram (experimental helper).

    ``last_sent`` maps client id to an int array holding, per coordinate,
    the round at which the coordinate was last transmitted (callers
    maintain it from SelectionResults).  Returns the flattened staleness
    values of all coordinates of all clients.
    """
    values = []
    for client in clients:
        sent = last_sent.get(client.client_id)
        if sent is None:
            continue
        values.append(round_index - sent)
    if not values:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(values).astype(np.int64)
