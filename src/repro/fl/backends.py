"""Pluggable execution backends for the round engine's local-step phase.

A backend answers one question: *how* do the round's participants compute
their gradients and produce uploads?  The protocol they implement — the
Algorithm-1 round skeleton — lives in :class:`repro.fl.engine.RoundEngine`
and is backend-independent.

Three implementations ship:

- :class:`SerialBackend` — the reference: a Python loop calling
  ``Client.local_step`` once per participant, exactly the seed trainers'
  behaviour.
- :class:`VectorizedBackend` — batches the per-client work across all
  participants: one grouped ``FlatModel.gradients_batched`` pass for the
  gradients and one ``Sparsifier.client_select_batched`` call for the
  top-k selection, collapsing the O(N) Python hot path into NumPy-level
  work.  Every batched step is bit-identical to its serial counterpart
  (see the respective docstrings), so the two backends produce *equal*
  training histories; whenever a model or sparsifier lacks batched
  support the backend silently falls back to the serial path for that
  piece, trading speed, never correctness.
- :class:`repro.parallel.sharded.ShardedBackend` ("sharded") — partitions
  clients into shards and runs the gradient phase on a persistent
  multiprocessing worker pool for multi-core scaling, with the same
  bit-identity guarantee.  It lives in :mod:`repro.parallel` and is
  resolved lazily here to keep this module import-light.

Per-client RNG streams are preserved by construction: minibatch draws use
each client's dataset generator, selection/probe draws use each client's
own generator, and both are consumed in participant order in every
backend.

Backends are stateless, so one instance may serve many engines; select
them by name via :func:`resolve_backend` (the string form is what
``ExperimentConfig.backend`` and the CLI ``--backend`` flag carry).
"""

from __future__ import annotations

import numpy as np

from repro.fl.client import Client
from repro.nn.flat import FlatModel
from repro.obs import NULL_TELEMETRY
from repro.sparsify.base import ClientUpload, Sparsifier

BACKEND_NAMES = ("serial", "vectorized", "sharded")


class ExecutionBackend:
    """Strategy interface for executing the participants' local steps."""

    name = "abstract"
    #: observation-only hook; the engine replaces this with its enabled
    #: telemetry so process-backed backends can report IPC traffic.
    telemetry = NULL_TELEMETRY

    def local_steps(
        self,
        model: FlatModel,
        participants: list[Client],
        k: int,
        sparsifier: Sparsifier,
        draw_probes: bool = False,
    ) -> list[ClientUpload]:
        """Run every participant's Algorithm-1 local step; return uploads.

        ``model`` holds the synchronized weights ``w(m-1)`` and must be
        left unchanged.  With ``draw_probes`` each participant also draws
        its one-sample probe after its selection (the adaptive trainer's
        estimator input).
        """
        raise NotImplementedError

    def compute_gradients(
        self, model: FlatModel, participants: list[Client]
    ) -> list[np.ndarray]:
        """Per-participant minibatch gradients at the current weights.

        Draws each participant's minibatch (recording it for probe draws)
        and returns the flat gradients; used directly by dense baselines
        (always-send-all) that skip sparsification.
        """
        raise NotImplementedError

    def reset_residuals(
        self,
        participants: list[Client],
        uploads: list[ClientUpload],
        selected: np.ndarray,
    ) -> None:
        """Clear each participant's residual at ``J ∩ J_i`` (Algorithm 1,
        lines 16–17), subtracting the actually transmitted values so
        compression error stays in the residual (error feedback)."""
        for client, upload in zip(participants, uploads):
            client.reset_transmitted(selected, upload.payload)

    def close(self) -> None:
        """Release backend-held resources (worker pools); default: none.

        Figure drivers call this once their trainers are done so
        process-backed backends shut down deterministically instead of
        waiting for garbage collection.
        """


class SerialBackend(ExecutionBackend):
    """Reference backend: one Python-level pass per participant."""

    name = "serial"

    def local_steps(
        self,
        model: FlatModel,
        participants: list[Client],
        k: int,
        sparsifier: Sparsifier,
        draw_probes: bool = False,
    ) -> list[ClientUpload]:
        uploads = []
        for client in participants:
            uploads.append(client.local_step(model, k, sparsifier))
            if draw_probes:
                client.draw_probe_sample()
        return uploads

    def compute_gradients(
        self, model: FlatModel, participants: list[Client]
    ) -> list[np.ndarray]:
        grads = []
        for client in participants:
            x, y = client.draw_minibatch()
            grad, _ = model.gradient(x, y)
            grads.append(grad)
        return grads


class VectorizedBackend(ExecutionBackend):
    """Batched backend: one grouped pass over all participants.

    Minibatches are drawn per client (their RNG streams must match the
    serial backend), then grouped by batch size and pushed through
    ``FlatModel.gradients_batched`` — MLPs and CNNs alike (conv/pool run
    grouped im2col passes); top-k client selection runs once on the
    stacked residual matrix.  Models without grouped-batch support
    (active Dropout, training-mode BatchNorm) and sparsifiers without
    batched selection fall back to the equivalent per-client calls.
    """

    name = "vectorized"

    def local_steps(
        self,
        model: FlatModel,
        participants: list[Client],
        k: int,
        sparsifier: Sparsifier,
        draw_probes: bool = False,
    ) -> list[ClientUpload]:
        grads = self.compute_gradients(model, participants)
        for client, grad in zip(participants, grads):
            client.accumulate_gradient(grad)

        index_rows = None
        if sparsifier.supports_batched_select():
            residual_matrix = np.stack(
                [client.residual for client in participants]
            )
            index_rows = sparsifier.client_select_batched(residual_matrix, k)
        if index_rows is not None:
            value_rows = np.take_along_axis(
                residual_matrix, index_rows, axis=1
            )
            uploads = [
                client.build_upload(row, values)
                for client, row, values in zip(
                    participants, index_rows, value_rows
                )
            ]
        else:
            uploads = [
                client.select_upload(k, sparsifier) for client in participants
            ]
        if draw_probes:
            for client in participants:
                client.draw_probe_sample()
        return uploads

    def reset_residuals(
        self,
        participants: list[Client],
        uploads: list[ClientUpload],
        selected: np.ndarray,
    ) -> None:
        """Batched ``J ∩ J_i`` residual reset.

        One ``searchsorted`` membership test over the stacked upload-index
        matrix replaces the per-client ``intersect1d`` chains; the
        per-client subtraction is the identical elementwise operation, so
        residual state matches the serial reset bit-for-bit.  Falls back
        per client whenever the fast path's preconditions fail (ragged
        upload sizes, index-rewriting preprocessing, momentum masking).
        """
        nnz = uploads[0].payload.nnz if uploads else 0
        fast = all(
            up.payload.nnz == nnz
            and client._velocity is None
            and (
                up.payload.indices is client._last_upload_indices
                or np.array_equal(
                    up.payload.indices, client._last_upload_indices
                )
            )
            for client, up in zip(participants, uploads)
        )
        if not fast or nnz == 0:
            super().reset_residuals(participants, uploads, selected)
            return
        index_matrix = np.stack([up.payload.indices for up in uploads])
        positions = np.searchsorted(selected, index_matrix)
        clipped = np.minimum(positions, selected.size - 1)
        mask = (positions < selected.size) & (selected[clipped] == index_matrix)
        for client, upload, hits in zip(participants, uploads, mask):
            hit_indices = upload.payload.indices[hits]
            client.residual[hit_indices] -= upload.payload.values[hits]

    def compute_gradients(
        self, model: FlatModel, participants: list[Client]
    ) -> list[np.ndarray]:
        batches = [client.draw_minibatch() for client in participants]
        if not model.supports_batched_gradients():
            return [model.gradient(x, y)[0] for x, y in batches]
        grads: list[np.ndarray | None] = [None] * len(batches)
        # Group clients by batch size (shards smaller than batch_size
        # yield short batches); one grouped pass per size class.
        by_size: dict[int, list[int]] = {}
        for i, (x, _) in enumerate(batches):
            by_size.setdefault(x.shape[0], []).append(i)
        for members in by_size.values():
            stacked = model.gradients_batched(
                [batches[i][0] for i in members],
                [batches[i][1] for i in members],
            )
            for row, i in enumerate(members):
                grads[i] = stacked[row]
        return grads  # type: ignore[return-value]


def resolve_backend(
    backend: str | ExecutionBackend | None,
    jobs: int | None = None,
) -> ExecutionBackend:
    """Normalize a backend spec (name, instance, or None) to an instance.

    None means the default :class:`SerialBackend` — the reference
    semantics every trainer had before backends existed.  ``jobs`` is
    the sharded worker count (None/0 = all usable CPUs) and is ignored
    by the in-process backends and pre-built instances.
    """
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend == "serial":
        return SerialBackend()
    if backend == "vectorized":
        return VectorizedBackend()
    if backend == "sharded":
        # Imported lazily: repro.parallel pulls in multiprocessing and
        # imports this module back.
        from repro.parallel.sharded import ShardedBackend

        return ShardedBackend(jobs=jobs)
    raise ValueError(
        f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}"
    )
