"""Periodic / random-k GS — Fig. 4 baseline [8], [30].

A random subset of k coordinates is chosen each round — the same subset at
every client, drawn from a shared permutation that is re-drawn once
exhausted so that over ⌈D/k⌉ consecutive rounds every coordinate is
transmitted at least once ("periodic averaging" GS).  Because the shared
subset is known to both sides from a synchronized seed, no index
transmission is strictly necessary; we still count pairs conservatively so
the timing comparison is not biased in this baseline's favor.

Two residual modes:

- ``accumulate=False`` (default): the random-sparsification baseline of
  [30] — the unselected part of each round's gradient is *discarded*
  (clients reset their residual every round).  This is the variant the
  paper's Fig. 4 shows learning very slowly ("generally gives worse
  performance than top-k", Section II).
- ``accumulate=True``: the periodic-averaging variant of [8], where
  unselected elements keep accumulating locally until their turn in the
  permutation arrives.
"""

from __future__ import annotations

import numpy as np

from repro.sparsify.base import ClientUpload, SelectionResult, Sparsifier


class PeriodicK(Sparsifier):
    """Synchronized random-k coordinate selection with periodic coverage."""

    name = "periodic-k"

    def __init__(self, dimension: int, seed: int = 0,
                 accumulate: bool = False) -> None:
        if dimension < 1:
            raise ValueError("dimension must be positive")
        self.dimension = dimension
        self.discards_residual = not accumulate
        self._rng = np.random.default_rng(seed)
        self._permutation = self._rng.permutation(dimension)
        self._cursor = 0
        self._current: np.ndarray | None = None

    def start_round(self, k: int) -> np.ndarray:
        """Draw this round's shared coordinate set (all clients see it).

        Exactly k distinct coordinates are returned even when the
        permutation wraps mid-round (a coordinate already taken from the
        old permutation's tail is skipped in the fresh one).
        """
        self.validate_k(k, self.dimension)
        chosen: list[int] = []
        seen: set[int] = set()
        while len(chosen) < k:
            if self._cursor >= self.dimension:
                self._permutation = self._rng.permutation(self.dimension)
                self._cursor = 0
            candidate = int(self._permutation[self._cursor])
            self._cursor += 1
            if candidate not in seen:
                seen.add(candidate)
                chosen.append(candidate)
        self._current = np.sort(np.array(chosen, dtype=np.int64))
        return self._current

    def client_select(
        self, residual: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        del rng
        if self._current is None or self._current.size != k:
            self.start_round(k)
        assert self._current is not None
        return self._current

    def supports_batched_select(self) -> bool:
        return True

    def client_select_batched(
        self, residuals: np.ndarray, k: int
    ) -> np.ndarray | None:
        # All clients share the round's coordinate set; one draw, tiled.
        if self._current is None or self._current.size != k:
            self.start_round(k)
        assert self._current is not None
        return np.tile(self._current, (residuals.shape[0], 1))

    def server_select(
        self, uploads: list[ClientUpload], k: int, dimension: int
    ) -> SelectionResult:
        self.validate_k(k, dimension)
        if not uploads:
            raise ValueError("no uploads to select from")
        if self._current is None:
            raise RuntimeError("server_select called before any client selection")
        contributions = {up.client_id: int(self._current.size) for up in uploads}
        result = SelectionResult(indices=self._current, contributions=contributions)
        self._current = None  # force a fresh draw next round
        return result
