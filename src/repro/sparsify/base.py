"""Shared types and the sparsifier interface.

Message flow (one training round, paper Algorithm 1)::

    client i:  a_i += local_gradient
               upload = ClientUpload(indices=J_i, values=a_i[J_i])
    server:    selection = sparsifier.select(uploads, k)
               b_j = (1/C) Σ_i C_i a_ij 1[j ∈ J_i]   for j in selection
               downlink = DownlinkMessage(indices=J, values=b)
    client i:  w -= η * dense(downlink)
               a_i[J ∩ J_i] = 0

:class:`Sparsifier` implementations only decide *which* indices each client
uploads and which downlink set ``J`` the server keeps; aggregation itself
is identical across schemes and lives in :class:`repro.fl.server.Server`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class SparseVector:
    """Immutable (indices, values) pair representing a sparse R^D vector.

    Indices are unique and sorted; ``dimension`` is the dense length D.
    """

    indices: np.ndarray
    values: np.ndarray
    dimension: int

    def __post_init__(self) -> None:
        idx = np.asarray(self.indices, dtype=np.int64)
        val = np.asarray(self.values, dtype=np.float64)
        if idx.ndim != 1 or val.ndim != 1 or idx.shape != val.shape:
            raise ValueError("indices and values must be 1-D arrays of equal length")
        if idx.size:
            order = np.argsort(idx, kind="stable")
            idx = idx[order]
            val = val[order]
            if idx[0] < 0 or idx[-1] >= self.dimension:
                raise ValueError("index out of range")
            if np.any(np.diff(idx) == 0):
                raise ValueError("duplicate indices")
        object.__setattr__(self, "indices", idx)
        object.__setattr__(self, "values", val)

    @property
    def nnz(self) -> int:
        """Number of stored elements."""
        return int(self.indices.size)

    def to_dense(self) -> np.ndarray:
        """Materialize the dense D-vector."""
        dense = np.zeros(self.dimension)
        dense[self.indices] = self.values
        return dense

    @classmethod
    def from_dense(cls, dense: np.ndarray, indices: np.ndarray) -> "SparseVector":
        """Sparse view of ``dense`` restricted to ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        return cls(indices=indices, values=dense[indices], dimension=dense.shape[0])

    @classmethod
    def from_sorted(
        cls, indices: np.ndarray, values: np.ndarray, dimension: int
    ) -> "SparseVector":
        """Trusted constructor for pre-validated inputs.

        ``indices`` must already be sorted, unique, in-range int64 and
        ``values`` float64 of equal length (e.g. the output of a batched
        top-k selection).  Skips the normalization/validation pass of
        ``__post_init__``; content is identical to the checked
        construction.  This is the hot-path constructor: client uploads
        (serial and batched selection), the server's downlink payload and
        quantization rewraps all route through it, so the validating
        ``__init__`` only runs for externally supplied vectors.
        """
        vector = object.__new__(cls)
        object.__setattr__(vector, "indices", indices)
        object.__setattr__(vector, "values", values)
        object.__setattr__(vector, "dimension", dimension)
        return vector


@dataclass(frozen=True)
class ClientUpload:
    """What one client sends uplink: its selected residual elements.

    ``A_i := {(j, a_ij) : j ∈ J_i}`` in the paper's notation, carried as a
    :class:`SparseVector`, plus the client's sample count ``C_i`` used as
    the aggregation weight.
    """

    client_id: int
    payload: SparseVector
    sample_count: int

    def __post_init__(self) -> None:
        if self.sample_count <= 0:
            raise ValueError("sample_count must be positive")


@dataclass(frozen=True)
class SelectionResult:
    """Server-side selection outcome.

    Attributes
    ----------
    indices:
        The downlink index set ``J`` (sorted, unique).
    contributions:
        Map ``client_id -> number of that client's uploaded indices that
        made it into J``.  Feeds the fairness CDF of Fig. 4 (right).
    downlink_element_count:
        Number of (index, value) pairs the downlink actually carries.
        Equals ``len(indices)`` for bidirectional schemes but can be up to
        k·N for the unidirectional scheme.
    """

    indices: np.ndarray
    contributions: dict[int, int] = field(default_factory=dict)
    downlink_element_count: int = 0

    def __post_init__(self) -> None:
        idx = np.asarray(self.indices, dtype=np.int64)
        if idx.ndim != 1:
            raise ValueError("indices must be 1-D")
        if idx.size and np.any(np.diff(np.sort(idx)) == 0):
            raise ValueError("duplicate indices in selection")
        object.__setattr__(self, "indices", np.sort(idx))
        if self.downlink_element_count == 0:
            object.__setattr__(self, "downlink_element_count", int(idx.size))


@dataclass(frozen=True)
class DownlinkMessage:
    """What the server broadcasts: ``B := {(j, b_j) : j ∈ J}``."""

    payload: SparseVector


class Sparsifier:
    """Strategy interface: client-side index choice + server-side selection.

    ``name`` identifies the scheme in experiment outputs.
    ``discards_residual`` marks schemes without error accumulation: when
    True, clients reset their full residual after every round (the
    random-sparsification baseline of [30]) instead of keeping the
    untransmitted remainder.
    """

    name = "abstract"
    discards_residual = False

    def client_select(
        self, residual: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Indices (unsorted ok, unique) a client uploads from ``residual``.

        Default: top-k by absolute value, shared by all top-k schemes.
        """
        raise NotImplementedError

    def supports_batched_select(self) -> bool:
        """Whether :meth:`client_select_batched` has an implementation.

        Callers check this *before* stacking client residuals into a
        matrix, so unsupported schemes never pay that copy.
        """
        return False

    def client_select_batched(
        self, residuals: np.ndarray, k: int
    ) -> np.ndarray | None:
        """Vectorized :meth:`client_select` over a ``(clients, D)`` matrix.

        Returns a ``(clients, k')`` array of sorted index rows identical to
        per-client :meth:`client_select` calls, or None when no batched
        implementation exists (callers then fall back to the per-client
        path).  Only sparsifiers whose selection ignores the per-client RNG
        may implement this — a batched path must not alter RNG streams.
        """
        del residuals, k
        return None

    def preprocess_uploads(
        self, uploads: list["ClientUpload"]
    ) -> list["ClientUpload"]:
        """Transform uploads before selection *and* aggregation.

        Identity by default.  Compression wrappers (e.g. quantization,
        :mod:`repro.compress`) override this so the degraded values are
        what the server actually sees everywhere.
        """
        return uploads

    def preprocess_uploads_counterfactual(
        self, uploads: list["ClientUpload"]
    ) -> list["ClientUpload"]:
        """:meth:`preprocess_uploads` without advancing any RNG stream.

        Counterfactual replays (the adaptive deadline's upward probe
        re-aggregates uploads the real round dropped) must see the same
        degradation the server would have applied, but must leave the
        sparsifier's state exactly as it was — otherwise a probing run
        would diverge from a non-probing one.  Identity preprocessing is
        trivially stateless; stateful wrappers override this to snapshot
        and restore their stream.
        """
        return self.preprocess_uploads(uploads)

    def server_select(
        self, uploads: list[ClientUpload], k: int, dimension: int
    ) -> SelectionResult:
        """Choose the downlink index set ``J`` from client uploads."""
        raise NotImplementedError

    def validate_k(self, k: int, dimension: int) -> None:
        """Common sanity check used by all implementations."""
        if not 1 <= k <= dimension:
            raise ValueError(f"k must be in [1, {dimension}], got {k}")
