"""Top-k index selection utilities.

``argpartition`` gives O(D) selection versus O(D log D) full sorting; the
paper quotes O(D log D) per client, so we are at least as fast.  Ties are
broken deterministically by (|value| descending, index ascending) so that
experiment runs are exactly reproducible.
"""

from __future__ import annotations

import numpy as np


def top_k_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest-|value| entries, deterministic under ties.

    Returns exactly ``min(k, len(values))`` unique indices, sorted
    ascending (callers treat selections as sets; sorting makes output
    canonical).
    """
    n = values.shape[0]
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if k >= n:
        return np.arange(n, dtype=np.int64)
    magnitude = np.abs(values)
    # Partition is not deterministic under ties; take a slightly larger
    # candidate pool, then order by (-|v|, index) and cut at exactly k.
    pool = min(n, 2 * k + 16)
    candidates = np.argpartition(magnitude, n - pool)[n - pool:]
    order = np.lexsort((candidates, -magnitude[candidates]))
    chosen = candidates[order[:k]]
    # The candidate pool is only guaranteed to contain the top-`pool`
    # magnitudes; verify the cut is valid (it always is since pool > k).
    return np.sort(chosen.astype(np.int64))


def top_k_indices_batched(values: np.ndarray, k: int) -> np.ndarray:
    """Row-wise :func:`top_k_indices` for a ``(rows, D)`` matrix.

    Returns a ``(rows, min(k, D))`` int64 array whose row ``r`` equals
    ``top_k_indices(values[r], k)``.  The selection rule — top k by
    (|value| descending, index ascending), output sorted ascending — is a
    deterministic function of each row, so the batched result is identical
    to the per-row calls by specification, while argpartition/lexsort run
    once over the whole matrix.
    """
    rows, n = values.shape
    if k <= 0:
        return np.empty((rows, 0), dtype=np.int64)
    if k >= n:
        return np.tile(np.arange(n, dtype=np.int64), (rows, 1))
    magnitude = np.abs(values)
    pool = min(n, 2 * k + 16)
    candidates = np.argpartition(magnitude, n - pool, axis=1)[:, n - pool:]
    cand_mag = np.take_along_axis(magnitude, candidates, axis=1)
    # lexsort with 2-D keys orders each row independently along axis -1.
    order = np.lexsort((candidates, -cand_mag))
    chosen = np.take_along_axis(candidates, order[:, :k], axis=1)
    return np.sort(chosen.astype(np.int64), axis=1)


def ranked_indices(values: np.ndarray, limit: int | None = None) -> np.ndarray:
    """All indices ordered by (|value| descending, index ascending).

    ``limit`` truncates the ranking (used by FAB-top-k, which needs each
    client's upload ranked so per-client prefixes J_i^κ can be formed).
    """
    magnitude = np.abs(values)
    order = np.lexsort((np.arange(values.shape[0]), -magnitude))
    if limit is not None:
        order = order[:limit]
    return order.astype(np.int64)
