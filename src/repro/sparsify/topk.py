"""Top-k index selection utilities.

Selection is O(D + k log k) per client: an ``np.argpartition`` prefilter
finds the k-th largest magnitude (the *threshold*) in O(D), every entry
strictly above the threshold is selected outright, and the deterministic
tie-break — (|value| descending, index ascending), i.e. lowest indices
first among equal magnitudes — runs over only the threshold-tied
k-boundary candidates.  The paper quotes O(D log D) per client for a full
sort, so we are strictly faster, and the selected index sets are
byte-identical to the full ``np.lexsort`` reference (the tests compare
against it directly, including adversarial duplicate-magnitude inputs).
"""

from __future__ import annotations

import numpy as np


def top_k_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest-|value| entries, deterministic under ties.

    Returns exactly ``min(k, len(values))`` unique indices, sorted
    ascending (callers treat selections as sets; sorting makes output
    canonical).  Equals ``np.lexsort((arange, -|values|))[:k]`` as a set.
    """
    n = values.shape[0]
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if k >= n:
        return np.arange(n, dtype=np.int64)
    magnitude = np.abs(values)
    part = np.argpartition(magnitude, n - k)
    threshold = magnitude[part[n - k]]
    # Everything strictly above the k-th largest magnitude is in; the
    # remaining slots are filled from the threshold ties, lowest index
    # first (the partition's own tie placement is arbitrary, so the tied
    # candidates are re-derived from the full vector).
    top = part[n - k :]
    strict = top[magnitude[top] > threshold]
    need = k - strict.size
    tied = np.flatnonzero(magnitude == threshold)[:need]
    return np.sort(np.concatenate([strict, tied]).astype(np.int64, copy=False))


def top_k_indices_batched(values: np.ndarray, k: int) -> np.ndarray:
    """Row-wise :func:`top_k_indices` for a ``(rows, D)`` matrix.

    Returns a ``(rows, min(k, D))`` int64 array whose row ``r`` equals
    ``top_k_indices(values[r], k)``.  Same argpartition-threshold scheme
    as the scalar version, vectorized over rows: per row, entries above
    the row's k-th largest magnitude are selected, and threshold ties are
    admitted in index order until the row holds exactly k entries — a
    deterministic function of each row, so the batched result is
    identical to the per-row calls by construction.
    """
    rows, n = values.shape
    if k <= 0:
        return np.empty((rows, 0), dtype=np.int64)
    if k >= n:
        return np.tile(np.arange(n, dtype=np.int64), (rows, 1))
    magnitude = np.abs(values)
    part = np.argpartition(magnitude, n - k, axis=1)
    top = part[:, n - k :]  # the k largest per row (tie placement arbitrary)
    top_mag = np.take_along_axis(magnitude, top, axis=1)
    threshold = top_mag[:, :1]  # partition point = k-th largest magnitude
    out = np.empty((rows, k), dtype=np.int64)
    # Strictly-above entries are all inside the k-sized partition block,
    # so everything below works on (rows, k) arrays — except the single
    # full equality pass locating threshold ties, which may sit anywhere.
    above_r, above_c = np.nonzero(top_mag > threshold)  # row-major order
    counts_above = np.bincount(above_r, minlength=rows)
    starts = np.cumsum(counts_above) - counts_above
    out[above_r, np.arange(above_r.size) - starts[above_r]] = top[
        above_r, above_c
    ]
    # Fill each row's remaining slots with its lowest-index threshold
    # ties (nonzero scans row-major, so per-row tie columns come out
    # ascending; at least `need` ties exist by definition of the
    # threshold).
    need = k - counts_above
    tie_r, tie_c = np.nonzero(magnitude == threshold)
    counts_tie = np.bincount(tie_r, minlength=rows)
    starts = np.cumsum(counts_tie) - counts_tie
    rank = np.arange(tie_r.size) - starts[tie_r]
    keep = rank < need[tie_r]
    out[tie_r[keep], counts_above[tie_r[keep]] + rank[keep]] = tie_c[keep]
    return np.sort(out, axis=1)


def ranked_indices(values: np.ndarray, limit: int | None = None) -> np.ndarray:
    """All indices ordered by (|value| descending, index ascending).

    ``limit`` truncates the ranking (used by FAB-top-k, which needs each
    client's upload ranked so per-client prefixes J_i^κ can be formed).
    A truncated ranking is computed from only the argpartition-prefiltered
    top-``limit`` candidates (plus every threshold tie, so the cut is
    exact); the full ranking still costs one lexsort.
    """
    n = values.shape[0]
    magnitude = np.abs(values)
    if limit is None or limit >= n:
        order = np.lexsort((np.arange(n), -magnitude))
        if limit is not None:
            order = order[:limit]
        return order.astype(np.int64, copy=False)
    if limit <= 0:
        return np.empty(0, dtype=np.int64)
    part = np.argpartition(magnitude, n - limit)
    threshold = magnitude[part[n - limit]]
    candidates = np.flatnonzero(magnitude >= threshold)
    order = np.lexsort((candidates, -magnitude[candidates]))
    return candidates[order[:limit]].astype(np.int64, copy=False)
