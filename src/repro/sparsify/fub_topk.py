"""Fairness-Unaware Bidirectional top-k (FUB-top-k) — Fig. 4 baseline.

Selects the k downlink elements with the largest absolute *aggregated*
values across all client uploads, without any per-client floor — the
global-top-k family of [28] adapted to the star (client-server) topology,
as the paper's footnote 4 describes, and the selection used by [31].
Because selection ignores provenance, a client whose residuals are small
can contribute zero elements, which is exactly the unfairness FAB-top-k
removes (compare contribution CDFs in Fig. 4 right).
"""

from __future__ import annotations

import numpy as np

from repro.sparsify.base import ClientUpload, SelectionResult, Sparsifier
from repro.sparsify.fab_topk import _count_contributions
from repro.sparsify.topk import top_k_indices, top_k_indices_batched


class FUBTopK(Sparsifier):
    """Bidirectional top-k without the fairness floor."""

    name = "fub-top-k"

    def client_select(
        self, residual: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        del rng
        return top_k_indices(residual, k)

    def supports_batched_select(self) -> bool:
        return True

    def client_select_batched(
        self, residuals: np.ndarray, k: int
    ) -> np.ndarray | None:
        return top_k_indices_batched(residuals, k)

    def server_select(
        self, uploads: list[ClientUpload], k: int, dimension: int
    ) -> SelectionResult:
        self.validate_k(k, dimension)
        if not uploads:
            raise ValueError("no uploads to select from")
        total_weight = float(sum(up.sample_count for up in uploads))
        aggregate: dict[int, float] = {}
        for up in uploads:
            w = up.sample_count / total_weight
            for j, v in zip(up.payload.indices, up.payload.values):
                aggregate[int(j)] = aggregate.get(int(j), 0.0) + w * float(v)
        indices = np.fromiter(aggregate.keys(), dtype=np.int64)
        values = np.fromiter(aggregate.values(), dtype=np.float64)
        if indices.size <= k:
            selected = np.sort(indices)
        else:
            keep = top_k_indices(values, k)
            selected = np.sort(indices[keep])
        contributions = _count_contributions(uploads, selected)
        return SelectionResult(indices=selected, contributions=contributions)
