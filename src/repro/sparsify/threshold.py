"""Hard-threshold GS — the heuristic adaptive family the paper contrasts.

Section II: "A few recent works consider thresholding-based adaptive
methods in a heuristic manner without a mathematically defined
optimization objective [26], [27], [34]."  This sparsifier implements that
heuristic: a client uploads every residual element whose magnitude exceeds
a threshold θ, capped at the round budget k (largest magnitudes win when
the cap binds).  The *effective* sparsity therefore drifts with gradient
scale instead of being optimized — exactly the behaviour the paper's
online algorithm replaces with a principled choice of k.

An optional multiplicative controller adapts θ toward a target element
count, mimicking the self-tuning thresholds of [34].
"""

from __future__ import annotations

import numpy as np

from repro.sparsify.base import ClientUpload, SelectionResult, Sparsifier
from repro.sparsify.fab_topk import _count_contributions, fair_select
from repro.sparsify.topk import top_k_indices


class HardThreshold(Sparsifier):
    """Upload |residual| >= threshold, capped at k; fair selection downlink."""

    name = "hard-threshold"

    def __init__(
        self,
        threshold: float,
        target_elements: int | None = None,
        adapt_rate: float = 0.1,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if target_elements is not None and target_elements < 1:
            raise ValueError("target_elements must be >= 1 when given")
        if not 0.0 < adapt_rate < 1.0:
            raise ValueError("adapt_rate must be in (0, 1)")
        self.threshold = threshold
        self.target_elements = target_elements
        self.adapt_rate = adapt_rate

    def client_select(
        self, residual: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        del rng
        above = np.flatnonzero(np.abs(residual) >= self.threshold)
        if above.size > k:
            keep = top_k_indices(residual[above], k)
            above = above[keep]
        self._adapt(above.size)
        if above.size == 0:
            # Never send nothing: fall back to the single largest element
            # so the round still makes progress.
            return top_k_indices(residual, 1)
        return np.sort(above)

    def _adapt(self, sent: int) -> None:
        """Multiplicative θ controller toward ``target_elements``."""
        if self.target_elements is None:
            return
        if sent > self.target_elements:
            self.threshold *= 1.0 + self.adapt_rate
        elif sent < self.target_elements:
            self.threshold *= 1.0 - self.adapt_rate

    def server_select(
        self, uploads: list[ClientUpload], k: int, dimension: int
    ) -> SelectionResult:
        self.validate_k(k, dimension)
        if not uploads:
            raise ValueError("no uploads to select from")
        selected = fair_select(uploads, k)
        return SelectionResult(
            indices=selected,
            contributions=_count_contributions(uploads, selected),
        )
