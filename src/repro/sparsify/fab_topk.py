"""Fairness-Aware Bidirectional top-k GS (FAB-top-k) — paper Section III-B.

Server-side selection: find, by binary search, the per-client quota κ such
that the union of every client's top-κ uploaded indices has size at most k
while the union at κ+1 exceeds k; take the κ-union and top up to exactly k
elements using the largest-|value| candidates from the (κ+1)-union minus
the κ-union.

Fairness guarantee (paper): each client contributes at least ⌊k/N⌋
elements to the downlink set, because ``|∪_i J_i^κ| ≤ N·κ ≤ k`` whenever
``κ = ⌊k/N⌋``, so the binary search never settles below that quota.
"""

from __future__ import annotations

import numpy as np

from repro.sparsify.base import ClientUpload, SelectionResult, Sparsifier
from repro.sparsify.topk import (
    ranked_indices,
    top_k_indices,
    top_k_indices_batched,
)


class FABTopK(Sparsifier):
    """The paper's fairness-aware bidirectional top-k sparsifier."""

    name = "fab-top-k"

    def client_select(
        self, residual: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        del rng  # deterministic top-k; accepted for interface uniformity
        return top_k_indices(residual, k)

    def supports_batched_select(self) -> bool:
        return True

    def client_select_batched(
        self, residuals: np.ndarray, k: int
    ) -> np.ndarray | None:
        return top_k_indices_batched(residuals, k)

    def server_select(
        self, uploads: list[ClientUpload], k: int, dimension: int
    ) -> SelectionResult:
        self.validate_k(k, dimension)
        if not uploads:
            raise ValueError("no uploads to select from")
        selected = fair_select(uploads, k)
        contributions = _count_contributions(uploads, selected)
        return SelectionResult(indices=selected, contributions=contributions)


def fair_select(uploads: list[ClientUpload], k: int) -> np.ndarray:
    """The fairness-aware gradient element selection of Section III-B.

    ``uploads`` carry each client's (index, value) pairs; values are the
    client's accumulated residuals at those indices.  Returns the sorted
    downlink index set ``J`` with ``|J| = min(k, |∪_i J_i|)``.
    """
    total_union = _upload_union(uploads)
    if total_union.size <= k:
        # Every uploaded index fits in the downlink budget.
        return total_union

    # Rankings are only ever consulted to depth κ+1 ≤ k+1: a κ beyond k
    # cannot win the search below because one client's top-κ alone are κ
    # distinct indices, so |∪_i J_i^κ| ≥ κ > k.  Truncating the per-client
    # rankings at depth k+1 therefore changes no probed union (prefixes up
    # to the depth are exact, and any deeper probe still reports > k via
    # the truncated client's full k+1 prefix).
    ranked, magnitude_of = _rank_uploads(uploads, depth=k + 1)
    max_len = _max_upload_length(ranked)

    # Binary search the largest κ with |∪_i J_i^κ| <= k.  Union size is
    # nondecreasing in κ and reaches > k at κ = max (truncated) upload
    # length — the early return above guarantees the full union exceeds k
    # — while κ = 0 gives size 0 <= k, so the invariant lo <= κ* < hi
    # holds.
    lo, hi = 0, max_len
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _union_size(ranked, mid) <= k:
            lo = mid
        else:
            hi = mid
    kappa = lo

    base = _union(ranked, kappa)
    shortfall = k - base.size
    if shortfall == 0:
        return base
    # Fill from (∪ J^{κ+1}) \ (∪ J^κ), largest absolute uploaded value
    # first, ties broken by index for determinism.  ``candidates`` is
    # sorted, so position order equals index order and the argpartition
    # top-k (which tie-breaks by position) reproduces the lexsort fill.
    next_union = _union(ranked, kappa + 1)
    candidates = np.setdiff1d(next_union, base, assume_unique=True)
    fill = candidates[top_k_indices(magnitude_of(candidates), shortfall)]
    return np.sort(np.concatenate([base, fill]))


def _rank_uploads(uploads: list[ClientUpload], depth: int | None = None):
    """Per-client |value|-descending rankings plus a max-|value| lookup.

    Returns ``(ranked, magnitude_of)``: client i's uploaded indices
    ordered by (|value| descending, index ascending) so that ``J_i^κ`` is
    simply the first κ entries, and a callable mapping a sorted index
    array to the largest |value| any client uploaded there.  ``depth``
    truncates each ranking to its first ``depth`` entries — an exact
    prefix: an argpartition prefilter narrows each upload to its
    top-``depth`` candidates in O(nnz) and only those are tie-break
    sorted, dropping the per-client ranking cost from O(nnz log nnz) to
    O(nnz + depth log depth).  When all uploads carry the same number of
    pairs (the common top-k case) everything is computed with stacked
    array ops instead of per-client Python loops; the ranking/maximum are
    deterministic functions of the upload values, so results are
    identical either way.
    """
    nnz = uploads[0].payload.nnz if uploads else 0
    if nnz > 0 and all(up.payload.nnz == nnz for up in uploads):
        index_matrix = np.stack([up.payload.indices for up in uploads])
        magnitudes = np.abs(np.stack([up.payload.values for up in uploads]))
        # Within an upload the indices are sorted, so tie-breaking by
        # position equals tie-breaking by index (as ranked_indices does).
        if depth is not None and depth < nnz:
            # Exact per-row top-``depth`` position sets (ascending), then
            # tie-break order only those by (|value| desc, position asc).
            cand_pos = top_k_indices_batched(magnitudes, depth)
            cand_mag = np.take_along_axis(magnitudes, cand_pos, axis=1)
            order = np.lexsort((cand_pos, -cand_mag))
            ranked_pos = np.take_along_axis(cand_pos, order, axis=1)
            ranked = np.take_along_axis(index_matrix, ranked_pos, axis=1)
        else:
            positions = np.broadcast_to(np.arange(nnz), index_matrix.shape)
            order = np.lexsort((positions, -magnitudes))
            ranked = np.take_along_axis(index_matrix, order, axis=1)

        flat_order = np.argsort(index_matrix, axis=None, kind="stable")
        sorted_indices = index_matrix.ravel()[flat_order]
        sorted_magnitudes = magnitudes.ravel()[flat_order]
        starts = np.flatnonzero(
            np.r_[True, sorted_indices[1:] != sorted_indices[:-1]]
        )
        unique_indices = sorted_indices[starts]
        max_magnitudes = np.maximum.reduceat(sorted_magnitudes, starts)

        def magnitude_of(query: np.ndarray) -> np.ndarray:
            return max_magnitudes[np.searchsorted(unique_indices, query)]

        return ranked, magnitude_of

    ranked = []
    value_of: dict[int, float] = {}
    for up in uploads:
        order = ranked_indices(up.payload.values, limit=depth)
        ranked.append(up.payload.indices[order])
        for j, v in zip(up.payload.indices, up.payload.values):
            magnitude = abs(float(v))
            if magnitude > value_of.get(int(j), -1.0):
                value_of[int(j)] = magnitude

    def magnitude_of(query: np.ndarray) -> np.ndarray:
        return np.array([value_of[int(j)] for j in query])

    return ranked, magnitude_of


def _upload_union(uploads: list[ClientUpload]) -> np.ndarray:
    """Sorted unique union of every uploaded index (no ranking needed)."""
    nnz = uploads[0].payload.nnz if uploads else 0
    if nnz > 0 and all(up.payload.nnz == nnz for up in uploads):
        return np.unique(np.stack([up.payload.indices for up in uploads]))
    parts = [up.payload.indices for up in uploads if up.payload.nnz]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))


def _max_upload_length(ranked) -> int:
    if isinstance(ranked, np.ndarray):
        return int(ranked.shape[1])
    return max(len(r) for r in ranked)


def _union(ranked, kappa: int) -> np.ndarray:
    """∪_i (first κ entries of client i's ranking), sorted unique.

    ``ranked`` is the rectangular ranking matrix (one row per client) or,
    for ragged uploads, a list of per-client arrays; either way the union
    is the same set.
    """
    if kappa <= 0:
        return np.empty(0, dtype=np.int64)
    if isinstance(ranked, np.ndarray):
        return np.unique(ranked[:, :kappa])
    parts = [r[:kappa] for r in ranked if r.size]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))


def _union_size(ranked, kappa: int) -> int:
    return int(_union(ranked, kappa).size)


def _count_contributions(
    uploads: list[ClientUpload], selected: np.ndarray
) -> dict[int, int]:
    """Per-client count of uploaded indices that made it into ``selected``."""
    nnz = uploads[0].payload.nnz if uploads else 0
    if selected.size and nnz > 0 and all(up.payload.nnz == nnz for up in uploads):
        index_matrix = np.stack([up.payload.indices for up in uploads])
        pos = np.searchsorted(selected, index_matrix)
        hits = (pos < selected.size) & (
            selected[np.minimum(pos, selected.size - 1)] == index_matrix
        )
        counts = hits.sum(axis=1)
        return {up.client_id: int(c) for up, c in zip(uploads, counts)}
    selected_set = selected  # sorted; use searchsorted membership
    out: dict[int, int] = {}
    for up in uploads:
        pos = np.searchsorted(selected_set, up.payload.indices)
        hits = (pos < selected_set.size) & (
            selected_set[np.minimum(pos, selected_set.size - 1)]
            == up.payload.indices
        )
        out[up.client_id] = int(hits.sum())
    return out
