"""Fairness-Aware Bidirectional top-k GS (FAB-top-k) — paper Section III-B.

Server-side selection: find, by binary search, the per-client quota κ such
that the union of every client's top-κ uploaded indices has size at most k
while the union at κ+1 exceeds k; take the κ-union and top up to exactly k
elements using the largest-|value| candidates from the (κ+1)-union minus
the κ-union.

Fairness guarantee (paper): each client contributes at least ⌊k/N⌋
elements to the downlink set, because ``|∪_i J_i^κ| ≤ N·κ ≤ k`` whenever
``κ = ⌊k/N⌋``, so the binary search never settles below that quota.
"""

from __future__ import annotations

import numpy as np

from repro.sparsify.base import ClientUpload, SelectionResult, Sparsifier
from repro.sparsify.topk import ranked_indices, top_k_indices


class FABTopK(Sparsifier):
    """The paper's fairness-aware bidirectional top-k sparsifier."""

    name = "fab-top-k"

    def client_select(
        self, residual: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        del rng  # deterministic top-k; accepted for interface uniformity
        return top_k_indices(residual, k)

    def server_select(
        self, uploads: list[ClientUpload], k: int, dimension: int
    ) -> SelectionResult:
        self.validate_k(k, dimension)
        if not uploads:
            raise ValueError("no uploads to select from")
        selected = fair_select(uploads, k)
        contributions = _count_contributions(uploads, selected)
        return SelectionResult(indices=selected, contributions=contributions)


def fair_select(uploads: list[ClientUpload], k: int) -> np.ndarray:
    """The fairness-aware gradient element selection of Section III-B.

    ``uploads`` carry each client's (index, value) pairs; values are the
    client's accumulated residuals at those indices.  Returns the sorted
    downlink index set ``J`` with ``|J| = min(k, |∪_i J_i|)``.
    """
    # Rank each client's uploaded indices by |value| descending so that
    # J_i^κ is simply the first κ entries of the ranked array.
    ranked: list[np.ndarray] = []
    value_of: dict[int, float] = {}
    for up in uploads:
        order = ranked_indices(up.payload.values)
        ranked.append(up.payload.indices[order])
        for j, v in zip(up.payload.indices, up.payload.values):
            magnitude = abs(float(v))
            if magnitude > value_of.get(int(j), -1.0):
                value_of[int(j)] = magnitude

    total_union = _union_size(ranked, max(len(r) for r in ranked))
    if total_union <= k:
        # Every uploaded index fits in the downlink budget.
        return _union(ranked, max(len(r) for r in ranked))

    # Binary search the largest κ with |∪_i J_i^κ| <= k.  Union size is
    # nondecreasing in κ and reaches > k at κ = max upload length, while
    # κ = 0 gives size 0 <= k, so the invariant lo <= κ* < hi holds.
    lo, hi = 0, max(len(r) for r in ranked)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _union_size(ranked, mid) <= k:
            lo = mid
        else:
            hi = mid
    kappa = lo

    base = _union(ranked, kappa)
    shortfall = k - base.size
    if shortfall == 0:
        return base
    # Fill from (∪ J^{κ+1}) \ (∪ J^κ), largest absolute uploaded value
    # first, ties broken by index for determinism.
    next_union = _union(ranked, kappa + 1)
    candidates = np.setdiff1d(next_union, base, assume_unique=True)
    candidate_values = np.array([value_of[int(j)] for j in candidates])
    order = np.lexsort((candidates, -candidate_values))
    fill = candidates[order[:shortfall]]
    return np.sort(np.concatenate([base, fill]))


def _union(ranked: list[np.ndarray], kappa: int) -> np.ndarray:
    """∪_i (first κ entries of client i's ranking), sorted unique."""
    if kappa <= 0:
        return np.empty(0, dtype=np.int64)
    parts = [r[:kappa] for r in ranked if r.size]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))


def _union_size(ranked: list[np.ndarray], kappa: int) -> int:
    return int(_union(ranked, kappa).size)


def _count_contributions(
    uploads: list[ClientUpload], selected: np.ndarray
) -> dict[int, int]:
    """Per-client count of uploaded indices that made it into ``selected``."""
    selected_set = selected  # sorted; use searchsorted membership
    out: dict[int, int] = {}
    for up in uploads:
        pos = np.searchsorted(selected_set, up.payload.indices)
        hits = (pos < selected_set.size) & (
            selected_set[np.minimum(pos, selected_set.size - 1)]
            == up.payload.indices
        )
        out[up.client_id] = int(hits.sum())
    return out
