"""Unidirectional top-k GS — Fig. 4 baseline [22].

Clients upload their top-k pairs; the server keeps the *union* of all
uploaded indices in the downlink.  With N clients selecting disjoint
indices the downlink can carry up to k·N pairs, which is the communication
blow-up the bidirectional schemes avoid (paper Section III-B).
"""

from __future__ import annotations

import numpy as np

from repro.sparsify.base import ClientUpload, SelectionResult, Sparsifier
from repro.sparsify.fab_topk import _count_contributions
from repro.sparsify.topk import top_k_indices, top_k_indices_batched


class UnidirectionalTopK(Sparsifier):
    """Top-k uplink, union downlink (no downlink budget)."""

    name = "unidirectional-top-k"

    def client_select(
        self, residual: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        del rng
        return top_k_indices(residual, k)

    def supports_batched_select(self) -> bool:
        return True

    def client_select_batched(
        self, residuals: np.ndarray, k: int
    ) -> np.ndarray | None:
        return top_k_indices_batched(residuals, k)

    def server_select(
        self, uploads: list[ClientUpload], k: int, dimension: int
    ) -> SelectionResult:
        self.validate_k(k, dimension)
        if not uploads:
            raise ValueError("no uploads to select from")
        union = np.unique(np.concatenate([up.payload.indices for up in uploads]))
        contributions = _count_contributions(uploads, union)
        return SelectionResult(
            indices=union,
            contributions=contributions,
            downlink_element_count=int(union.size),
        )
