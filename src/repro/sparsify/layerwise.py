"""Layer-wise top-k selection — the direction of the paper's refs [26], [27].

The paper notes that layer-wise adaptive sparsity ("use different sparsity
degrees in different neural network layers") is *orthogonal and
complementary* to its global-k adaptation.  This sparsifier implements the
composition: the per-round budget k (possibly chosen by the online
algorithm) is split across layers, and each client runs top-k within each
layer's slice of the flat vector.  Two split rules:

- ``"proportional"``: k_layer ∝ layer size (every layer keeps the same
  sparsity ratio), the scheme of [27].
- ``"magnitude"``: k_layer ∝ the layer's share of total residual
  magnitude, re-computed per client per round (adaptive, as in [26]).

Server-side selection reuses FAB-top-k's fairness-aware machinery, so the
⌊k/N⌋ per-client floor is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.sparsify.base import ClientUpload, SelectionResult, Sparsifier
from repro.sparsify.fab_topk import _count_contributions, fair_select
from repro.sparsify.topk import top_k_indices

_SPLITS = ("proportional", "magnitude")


class LayerwiseTopK(Sparsifier):
    """Top-k within each layer slice, fairness-aware selection globally."""

    def __init__(self, layer_slices: list[slice], split: str = "proportional"
                 ) -> None:
        if not layer_slices:
            raise ValueError("need at least one layer slice")
        if split not in _SPLITS:
            raise ValueError(f"split must be one of {_SPLITS}, got {split!r}")
        previous_end = 0
        for sl in layer_slices:
            if sl.start != previous_end:
                raise ValueError("layer slices must be contiguous from 0")
            if sl.stop <= sl.start:
                raise ValueError("empty layer slice")
            previous_end = sl.stop
        self.layer_slices = list(layer_slices)
        self.split = split
        self.dimension = previous_end
        self.name = f"layerwise-top-k({split})"

    # ------------------------------------------------------------------
    def budgets(self, residual: np.ndarray, k: int) -> list[int]:
        """Per-layer budgets summing to min(k, D)."""
        k = min(k, self.dimension)
        sizes = np.array([sl.stop - sl.start for sl in self.layer_slices])
        if self.split == "proportional":
            weights = sizes.astype(float)
        else:
            weights = np.array(
                [np.abs(residual[sl]).sum() for sl in self.layer_slices]
            )
            if weights.sum() == 0.0:
                weights = sizes.astype(float)
        raw = weights / weights.sum() * k
        budget = np.floor(raw).astype(int)
        # Distribute the rounding remainder to the largest fractional
        # parts, then clamp to layer sizes and push overflow elsewhere.
        remainder = k - int(budget.sum())
        order = np.argsort(-(raw - budget))
        for i in order[:remainder]:
            budget[i] += 1
        budget = np.minimum(budget, sizes)
        deficit = k - int(budget.sum())
        while deficit > 0:
            room = sizes - budget
            grow = int(np.argmax(room))
            if room[grow] == 0:
                break
            take = min(deficit, int(room[grow]))
            budget[grow] += take
            deficit -= take
        return budget.tolist()

    def client_select(
        self, residual: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        del rng
        if residual.shape[0] != self.dimension:
            raise ValueError(
                f"residual length {residual.shape[0]} != dimension "
                f"{self.dimension}"
            )
        budgets = self.budgets(residual, k)
        chosen = []
        for sl, budget in zip(self.layer_slices, budgets):
            if budget <= 0:
                continue
            local = top_k_indices(residual[sl], budget)
            chosen.append(local + sl.start)
        if not chosen:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(chosen))

    def server_select(
        self, uploads: list[ClientUpload], k: int, dimension: int
    ) -> SelectionResult:
        self.validate_k(k, dimension)
        if not uploads:
            raise ValueError("no uploads to select from")
        selected = fair_select(uploads, k)
        return SelectionResult(
            indices=selected,
            contributions=_count_contributions(uploads, selected),
        )
