"""Gradient sparsification methods.

This package implements every GS scheme compared in the paper's Fig. 4:

- :class:`~repro.sparsify.fab_topk.FABTopK` — the paper's contribution:
  fairness-aware bidirectional top-k (Section III-B, Algorithm 1 server
  side), guaranteeing each client at least ⌊k/N⌋ selected elements.
- :class:`~repro.sparsify.fub_topk.FUBTopK` — fairness-unaware
  bidirectional top-k (global top-k over client uploads) [28], [31].
- :class:`~repro.sparsify.unidirectional.UnidirectionalTopK` — classic
  top-k where the downlink carries the union of client selections (up to
  kN elements) [22].
- :class:`~repro.sparsify.periodic.PeriodicK` — random-k / periodic
  averaging GS [8], [30].

All schemes share the client-side protocol (accumulate residual ``a_i``,
upload top-k or random-k pairs) and differ only in the server-side index
selection; the shared machinery lives in :mod:`repro.sparsify.base` and
:mod:`repro.sparsify.topk`.
"""

from repro.sparsify.base import (
    ClientUpload,
    DownlinkMessage,
    SelectionResult,
    Sparsifier,
    SparseVector,
)
from repro.sparsify.fab_topk import FABTopK, fair_select
from repro.sparsify.fub_topk import FUBTopK
from repro.sparsify.layerwise import LayerwiseTopK
from repro.sparsify.periodic import PeriodicK
from repro.sparsify.threshold import HardThreshold
from repro.sparsify.topk import top_k_indices
from repro.sparsify.unidirectional import UnidirectionalTopK

__all__ = [
    "ClientUpload",
    "DownlinkMessage",
    "FABTopK",
    "FUBTopK",
    "HardThreshold",
    "LayerwiseTopK",
    "PeriodicK",
    "SelectionResult",
    "SparseVector",
    "Sparsifier",
    "UnidirectionalTopK",
    "fair_select",
    "top_k_indices",
]
