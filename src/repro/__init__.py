"""repro — reproduction of "Adaptive Gradient Sparsification for Efficient
Federated Learning: An Online Learning Approach" (Han, Wang, Leung,
IEEE ICDCS 2020, arXiv:2001.04756).

Subpackages
-----------
- :mod:`repro.nn` — pure-numpy neural-network substrate (layers, losses,
  flat-parameter models, model zoo).
- :mod:`repro.data` — synthetic federated datasets (FEMNIST-like,
  CIFAR-like) and non-i.i.d. partitioners.
- :mod:`repro.sparsify` — gradient sparsification schemes: the paper's
  FAB-top-k plus the FUB-top-k / unidirectional / periodic-k baselines.
- :mod:`repro.fl` — the synchronized sparse-gradient FL loop
  (Algorithm 1), FedAvg and always-send-all baselines, metrics.
- :mod:`repro.online` — online learning of the sparsity k: Algorithms 2
  and 3, the derivative-sign estimator, bandit baselines, regret bounds,
  and the full adaptive-k trainer.
- :mod:`repro.simulation` — normalized-time model and synthetic convex
  cost oracles for testing the online algorithms in isolation.
- :mod:`repro.experiments` — drivers regenerating every evaluation figure
  of the paper (Figs. 1, 4–8).

Quick start
-----------
>>> from repro.data import make_femnist_like, partition_by_writer
>>> from repro.nn import make_mlp
>>> from repro.fl import FLTrainer
>>> from repro.sparsify import FABTopK
>>> from repro.simulation import TimingModel
>>> ds = make_femnist_like(num_writers=8, samples_per_writer=20,
...                        num_classes=10, image_size=8, seed=0)
>>> fed = partition_by_writer(ds)
>>> model = make_mlp(ds.feature_dim, 10, hidden=(16,), seed=0)
>>> trainer = FLTrainer(model, fed, FABTopK(),
...                     timing=TimingModel(model.dimension, comm_time=10.0),
...                     learning_rate=0.05, batch_size=16)
>>> history = trainer.run(num_rounds=20, k=50)
>>> history.final_loss < history.records[0].loss
True
"""

import logging as _logging

# Library convention: the package logger stays silent unless the
# application (or the CLI's --verbose flag) attaches a handler.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "data",
    "experiments",
    "fl",
    "nn",
    "online",
    "simulation",
    "sparsify",
]
