"""Analysis tooling for sparsified training.

The paper defers a convergence proof of FAB-top-k to future work, noting
that "a similar analytical technique as in [29] can be used".  The proofs
in that line of work rest on the *contraction property* of top-k
compression — ``||x − top_k(x)||² ≤ (1 − k/D)·||x||²`` — and on the
resulting geometric decay of the residual state.  This package provides
the measurement side of that analysis:

- :mod:`repro.analysis.contraction`: exact and empirical contraction
  coefficients of the implemented sparsifiers, verifying the (1 − k/D)
  bound and measuring how much better real gradients do (they are
  heavy-tailed, so top-k contracts far more strongly).
- :mod:`repro.analysis.convergence`: loss-curve fitting (power-law and
  exponential models) and time-to-target extraction used to compare
  training runs quantitatively rather than by eyeballing curves.
"""

from repro.analysis.contraction import (
    contraction_coefficient,
    empirical_contraction,
    topk_contraction_bound,
)
from repro.analysis.convergence import (
    ConvergenceFit,
    fit_exponential,
    fit_power_law,
    time_to_target,
)

__all__ = [
    "ConvergenceFit",
    "contraction_coefficient",
    "empirical_contraction",
    "fit_exponential",
    "fit_power_law",
    "time_to_target",
    "topk_contraction_bound",
]
