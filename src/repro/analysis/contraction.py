"""Contraction properties of sparsification operators.

A compression operator C is a δ-contraction when

    ||x − C(x)||² ≤ (1 − δ)·||x||²       for all x.

Top-k satisfies this with δ = k/D in the worst case (uniform magnitudes);
heavy-tailed gradients contract much faster, which is why top-k GS works
so well in practice.  The convergence analyses the paper points at ([29]
and the error-feedback literature) turn exactly this constant into a
convergence rate, so measuring it on real training gradients quantifies
how far the worst-case theory is from observed behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.sparsify.topk import top_k_indices


def topk_contraction_bound(k: int, dimension: int) -> float:
    """Worst-case energy ratio ``(1 − k/D)`` of top-k compression."""
    if not 1 <= k <= dimension:
        raise ValueError(f"k must be in [1, {dimension}]")
    return 1.0 - k / dimension


def contraction_coefficient(x: np.ndarray, k: int) -> float:
    """Measured ratio ``||x − top_k(x)||² / ||x||²`` for one vector.

    Always ≤ the worst-case bound; 0 when x is exactly k-sparse.
    Returns 0 for the zero vector (top-k reproduces it exactly).
    """
    x = np.asarray(x, dtype=float)
    total = float(x @ x)
    if total == 0.0:
        return 0.0
    kept = top_k_indices(x, k)
    kept_energy = float(x[kept] @ x[kept])
    return max(0.0, 1.0 - kept_energy / total)


def empirical_contraction(
    vectors: list[np.ndarray] | np.ndarray, k: int
) -> dict[str, float]:
    """Contraction statistics over a set of vectors (e.g. round gradients).

    Returns mean/max measured ratios plus the worst-case bound, so
    callers can report "measured vs bound" in one line.
    """
    if isinstance(vectors, np.ndarray) and vectors.ndim == 2:
        vectors = [vectors[i] for i in range(vectors.shape[0])]
    if not len(vectors):
        raise ValueError("need at least one vector")
    dimension = vectors[0].shape[0]
    ratios = [contraction_coefficient(v, k) for v in vectors]
    return {
        "mean": float(np.mean(ratios)),
        "max": float(np.max(ratios)),
        "bound": topk_contraction_bound(k, dimension),
        "k": float(k),
        "dimension": float(dimension),
    }
