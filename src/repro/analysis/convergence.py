"""Loss-curve models and quantitative run comparison.

The paper compares methods by where their loss-vs-time curves sit; this
module turns curves into numbers: fitted decay models and interpolated
time-to-target.  Two standard families:

- power law:  L(t) ≈ L∞ + a·t^(−b)   (SGD on smooth non-convex losses)
- exponential: L(t) ≈ L∞ + a·exp(−b·t)   (strongly-convex regimes)

Fits are least-squares in log space on the excess loss; both report R² so
callers can pick the better-fitting family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConvergenceFit:
    """Fitted decay model ``L(t) = floor + amplitude * decay(t)``."""

    model: str
    floor: float
    amplitude: float
    rate: float
    r_squared: float

    def predict(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        if self.model == "power":
            with np.errstate(divide="ignore"):
                return self.floor + self.amplitude * np.power(
                    np.maximum(t, 1e-12), -self.rate
                )
        return self.floor + self.amplitude * np.exp(-self.rate * t)


def _validate(times, losses, min_points: int = 3):
    t = np.asarray(times, dtype=float)
    y = np.asarray(losses, dtype=float)
    if t.shape != y.shape or t.ndim != 1:
        raise ValueError("times and losses must be equal-length 1-D arrays")
    mask = np.isfinite(t) & np.isfinite(y)
    t, y = t[mask], y[mask]
    if t.size < min_points:
        raise ValueError(f"need at least {min_points} finite points")
    order = np.argsort(t)
    return t[order], y[order]


def _excess(y: np.ndarray, floor: float | None) -> tuple[np.ndarray, float]:
    if floor is None:
        # Heuristic floor: a little below the observed minimum, scaled by
        # the curve's range so late near-converged points keep positive
        # excess without collapsing the log transform.
        spread = max(float(y.max() - y.min()), 1e-6)
        floor = float(y.min()) - 0.05 * spread
    excess = y - floor
    if np.any(excess <= 0):
        raise ValueError("floor must lie strictly below every loss value")
    return excess, floor


def _r_squared(y: np.ndarray, predicted: np.ndarray) -> float:
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0
    return 1.0 - ss_res / ss_tot


def fit_power_law(times, losses, floor: float | None = None) -> ConvergenceFit:
    """Fit ``L(t) = floor + a·t^(−b)`` (log-log least squares)."""
    t, y = _validate(times, losses)
    if np.any(t <= 0):
        raise ValueError("power-law fit needs strictly positive times")
    excess, floor_value = _excess(y, floor)
    slope, intercept = np.polyfit(np.log(t), np.log(excess), 1)
    fit = ConvergenceFit(
        model="power",
        floor=floor_value,
        amplitude=float(np.exp(intercept)),
        rate=float(-slope),
        r_squared=0.0,
    )
    r2 = _r_squared(y, fit.predict(t))
    return ConvergenceFit(fit.model, fit.floor, fit.amplitude, fit.rate, r2)


def fit_exponential(times, losses, floor: float | None = None
                    ) -> ConvergenceFit:
    """Fit ``L(t) = floor + a·exp(−b·t)`` (semi-log least squares)."""
    t, y = _validate(times, losses)
    excess, floor_value = _excess(y, floor)
    slope, intercept = np.polyfit(t, np.log(excess), 1)
    fit = ConvergenceFit(
        model="exponential",
        floor=floor_value,
        amplitude=float(np.exp(intercept)),
        rate=float(-slope),
        r_squared=0.0,
    )
    r2 = _r_squared(y, fit.predict(t))
    return ConvergenceFit(fit.model, fit.floor, fit.amplitude, fit.rate, r2)


def time_to_target(times, losses, target: float) -> float | None:
    """First (linearly interpolated) time at which the loss hits target.

    Uses the running minimum so noisy curves don't "un-reach" a target.
    Returns None when the target is never reached.
    """
    t, y = _validate(times, losses, min_points=1)
    running = np.minimum.accumulate(y)
    below = np.flatnonzero(running <= target)
    if below.size == 0:
        return None
    i = int(below[0])
    if i == 0 or running[i - 1] == running[i]:
        return float(t[i])
    # Linear interpolation between the bracketing samples.
    t0, t1 = t[i - 1], t[i]
    y0, y1 = running[i - 1], running[i]
    frac = (y0 - target) / (y0 - y1)
    return float(t0 + frac * (t1 - t0))
