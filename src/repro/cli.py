"""Command-line interface: regenerate paper figures and export artifacts.

Usage::

    python -m repro.cli fig4 --out results/ --scale bench
    python -m repro.cli fig7 --out results/ --rounds 200 --seed 1
    python -m repro.cli fig5 --out results/ --backend vectorized
    python -m repro.cli fig4 --backend sharded --jobs 4
    python -m repro.cli sweep --scale smoke --jobs 2
    python -m repro.cli scenario --deadline 2.5 2.5 9 --over-selection 0.3
    python -m repro.cli scenario --deadline-policy adaptive
    python -m repro.cli scenario --async --staleness adaptive
    python -m repro.cli scenario --adversary-fraction 0.25 --aggregator median
    python -m repro.cli adversary --adversary-kind sign_flip
    python -m repro.cli list

Each figure command runs the corresponding experiment driver
(:mod:`repro.experiments`) and writes JSON + CSV artifacts into ``--out``.
``--scale`` picks a configuration preset: ``smoke`` (seconds), ``bench``
(tens of seconds, the benchmark suite's setting), ``default`` (minutes),
or ``paper`` (the paper's 156-client scale; hours).

``--backend`` selects the execution backend (``serial``, ``vectorized``,
or the multiprocessing ``sharded``); ``--jobs N`` sets the sharded worker
count (0 = all usable CPUs) and implies ``--backend sharded`` when more
than one worker is requested without an explicit backend.  Histories are
bit-identical across backends — only wall-clock speed changes.

``scenario`` wraps the fixed-k and adaptive-k trainers in a deployment
scenario — availability churn, straggler profiles, and a deadline-gated
server that drops late uploads (recovered later through residual
accumulation); see :mod:`repro.scenarios` and :mod:`repro.experiments.
scenario`.  ``--deadline-policy {fixed,cycling,adaptive}`` selects how
the deadline evolves — ``adaptive`` learns it online (the dual of the
learned k) — and the run also writes a fixed-vs-cycling-vs-adaptive
comparison panel (``scenario_deadline_policies``).  ``--async`` (or any
of ``--staleness``/``--commit-count``) additionally runs the
asynchronous staleness-weighted commit comparison
(:mod:`repro.fl.async_engine`): the synchronous full-barrier baseline
vs async commits under each staleness discount on the same
heterogeneous timing, written as ``scenario_async_*`` artifacts.

``adversary`` runs the Byzantine attack x defense panel
(:mod:`repro.experiments.adversary`): the same FAB-top-k trainer per
(adversary fraction x aggregator) cell, in the sparse and dense upload
regimes, over an always-available population by default (add scenario
flags to attack under churn).  ``scenario`` accepts the same
``--adversary-*``/``--aggregator`` flags for a single attacked run.

``sweep`` runs a whole grid of figure configurations
(``--figures × --scales × --seeds × --backends``) across a process pool
(``--jobs`` sweep workers) with completed runs cached in a
content-addressed store (``--cache-dir``), so re-running a sweep only
computes what changed; see :mod:`repro.parallel.sweep`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.config import (
    SCALE_NAMES,
    ExperimentConfig,
    scaled_config,
)
from repro.fl.backends import BACKEND_NAMES
from repro.experiments.io import (
    export_figure_csv,
    figure_from_dict,
    write_json,
)
from repro.experiments.plotting import render_figure
from repro.obs import configure_cli_logging, get_logger
from repro.parallel.sweep import (
    SWEEP_FIGURES,
    SweepSpec,
    collect_artifacts,
    run_sweep,
)

FIGURES = (
    "fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "scenario", "adversary",
)

logger = get_logger("cli")


def _run_figure(figure: str, config: ExperimentConfig, out: Path,
                plot: bool = False) -> list[str]:
    """Run one figure driver and write its artifacts; returns filenames.

    The figure → artifacts mapping is :func:`repro.parallel.sweep.
    collect_artifacts` — the same collector the sweep orchestrator
    caches, so `repro <figN>` output and cached sweep exports cannot
    drift apart.  Figure artifacts additionally get a CSV (and an
    optional ASCII chart); history artifacts are JSON-only.
    """
    written: list[str] = []
    for name, payload in collect_artifacts(figure, config).items():
        write_json(out / f"{name}.json", payload)
        written.append(f"{name}.json")
        if payload.get("kind") != "figure":
            continue
        fig_data = figure_from_dict(payload)
        export_figure_csv(fig_data, out / f"{name}.csv")
        written.append(f"{name}.csv")
        if plot:
            try:
                print(render_figure(fig_data))
                print()
            except ValueError:
                pass  # empty panel (e.g. no accuracy series)
    return written


def _add_scenario_flags(p: argparse.ArgumentParser) -> None:
    """Deployment-scenario knobs of the ``scenario`` subcommand.

    Defaults are ``None`` so unset flags leave the preset
    (:meth:`repro.scenarios.ScenarioConfig.default_churn`, seeded from
    the experiment seed) untouched.
    """
    from repro.scenarios import (
        AVAILABILITY_KINDS,
        DEADLINE_POLICY_KINDS,
        REWEIGHT_MODES,
    )

    p.add_argument("--availability", default=None, choices=AVAILABILITY_KINDS,
                   help="who is online each round (default: markov churn)")
    p.add_argument("--p-drop", type=float, default=None,
                   help="markov: per-round P(online -> offline)")
    p.add_argument("--p-recover", type=float, default=None,
                   help="markov: per-round P(offline -> online)")
    p.add_argument("--period", type=int, default=None,
                   help="diurnal: rounds per day cycle")
    p.add_argument("--duty", type=float, default=None,
                   help="diurnal: fraction of the cycle a client is online")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="JSON availability trace "
                        '({"rounds": [[ids...], ...], "cycle": true}); '
                        "implies --availability trace")
    p.add_argument("--participants", type=int, default=None,
                   help="uploads aggregated per round, m (0 = all available)")
    p.add_argument("--over-selection", type=float, default=None,
                   help="sample m*(1+eps) clients, aggregate the first m "
                        "to finish")
    p.add_argument("--deadline", type=float, nargs="+", default=None,
                   help="round deadline(s); several values cycle "
                        "(periodic straggler amnesty)")
    p.add_argument("--deadline-policy", default=None,
                   choices=DEADLINE_POLICY_KINDS,
                   help="how the deadline evolves: fixed (a schedule "
                        "preset collapses to its mean), cycling, or "
                        "adaptive (the server learns the deadline online "
                        "over [--deadline-min, --deadline-max], the dual "
                        "of the learned k; the interval defaults to the "
                        "schedule's min/max, or to [d/2, 2d] around a "
                        "single --deadline d)")
    p.add_argument("--deadline-min", type=float, default=None,
                   help="adaptive: lower edge of the deadline interval")
    p.add_argument("--deadline-max", type=float, default=None,
                   help="adaptive: upper edge of the deadline interval")
    p.add_argument("--no-deadline-probe", action="store_true",
                   help="adaptive: disable the counterfactual probe "
                        "(freezes the deadline at its start value)")
    p.add_argument("--min-uploads", type=int, default=None,
                   help="floor of accepted uploads per round")
    p.add_argument("--reweight", default=None, choices=REWEIGHT_MODES,
                   help="partial-aggregate normalization: over arrivals "
                        "or over the sampled cohort")
    p.add_argument("--slow-fraction", type=float, default=None,
                   help="fraction of clients that are stragglers")
    p.add_argument("--slow-factor", type=float, default=None,
                   help="compute+comm slowdown of a straggler")
    p.add_argument("--async", dest="async_mode", action="store_const",
                   const=True, default=None,
                   help="additionally run the asynchronous staleness-"
                        "weighted commit comparison (sync barrier vs "
                        "async commits per staleness discount, equal "
                        "simulated time; writes scenario_async_*)")
    p.add_argument("--staleness", default=None,
                   choices=("constant", "poly", "polynomial", "adaptive"),
                   help="staleness discount of async commits: constant "
                        "(no correction), poly[nomial] (1+s)^-a, or "
                        "adaptive (the exponent a learned online, a "
                        "third dual of the learned k); implies --async")
    p.add_argument("--commit-count", type=int, default=None,
                   help="arrivals the async server buffers per commit "
                        "(0 = half the target cohort); implies --async")
    p.add_argument("--population", type=int, default=None, metavar="N",
                   help="run over a virtual population of N clients "
                        "(e.g. 1000000): per-client data, availability "
                        "and straggler profiles regenerate from (seed, "
                        "id) on demand, so rounds cost O(cohort) and "
                        "memory O(ever-sampled) at any N; pairs with "
                        "--participants m (defaults to a small fixed "
                        "cohort — an all-available round would be O(N))")
    p.add_argument("--alpha-sweep", type=float, nargs="+", default=None,
                   metavar="ALPHA",
                   help="additionally run the scenario comparison at "
                        "each Dirichlet(ALPHA) label-skew split and "
                        "write a scenario x alpha panel "
                        "(scenario_dirichlet_alpha); eager "
                        "federations only")
    _add_adversary_flags(p)


def _add_adversary_flags(p: argparse.ArgumentParser) -> None:
    """Byzantine-attack + robust-aggregation knobs.

    Shared by ``scenario`` (one attack x defense run under churn) and
    ``adversary`` (the attack x defense panel, where the kind/scale set
    the mounted attack and the fraction/aggregator of each cell are
    swept by the driver).
    """
    from repro.fl.robust import AGGREGATOR_KINDS
    from repro.scenarios import ADVERSARY_KINDS

    p.add_argument("--adversary-kind", default=None, choices=ADVERSARY_KINDS,
                   help="Byzantine attack mounted by designated clients "
                        "(default: none for scenario, sign_flip for the "
                        "adversary panel)")
    p.add_argument("--adversary-fraction", type=float, default=None,
                   help="probability each client is Byzantine (one "
                        "seeded draw per client); a positive value "
                        "implies --adversary-kind sign_flip")
    p.add_argument("--adversary-scale", type=float, default=None,
                   help="attack magnitude (sign-flip/scale multiplier, "
                        "noise amplitude in upload-RMS units)")
    p.add_argument("--aggregator", default=None, choices=AGGREGATOR_KINDS,
                   help="server aggregation rule; mean is the paper's "
                        "weighted mean, the others are "
                        "Byzantine-tolerant")
    p.add_argument("--trim-fraction", type=float, default=None,
                   help="per-coordinate trim rate of the trimmed_mean "
                        "aggregator")


def _scenario_overrides(
    args, seed: int, base: "ScenarioConfig | None" = None
) -> dict:
    """The ScenarioConfig dict the subcommand's flags describe.

    ``base`` is the preset unset flags fall back to: the churn regime
    for ``scenario``, an always-available population for ``adversary``
    (the panel isolates the Byzantine axis).
    """
    from repro.scenarios import ScenarioConfig
    from repro.scenarios.availability import load_trace_json

    if base is None:
        base = ScenarioConfig.default_churn()
    scenario = base.with_overrides(seed=seed)
    overrides = {}
    if getattr(args, "population", None) and args.participants is None:
        # Population-scale runs must name a cohort: participants=0
        # ("all available") is an O(N) round, the one thing a virtual
        # population exists to avoid.
        from repro.experiments.scenario import DEFAULT_POPULATION_COHORT

        overrides["participants"] = DEFAULT_POPULATION_COHORT
    for flag, field_name in (
        ("availability", "availability"), ("p_drop", "p_drop"),
        ("p_recover", "p_recover"), ("period", "period"), ("duty", "duty"),
        ("participants", "participants"),
        ("over_selection", "over_selection"), ("min_uploads", "min_uploads"),
        ("reweight", "reweight"), ("slow_fraction", "slow_fraction"),
        ("slow_factor", "slow_factor"),
        ("async_mode", "async_mode"), ("staleness", "staleness_discount"),
        ("commit_count", "commit_count"),
        ("deadline_policy", "deadline_policy"),
        ("deadline_min", "deadline_min"), ("deadline_max", "deadline_max"),
        ("adversary_kind", "adversary"),
        ("adversary_fraction", "adversary_fraction"),
        ("adversary_scale", "adversary_scale"),
        ("aggregator", "aggregator"), ("trim_fraction", "trim_fraction"),
    ):
        value = getattr(args, flag)
        if value is not None:
            overrides[field_name] = value
    if (
        overrides.get("adversary_fraction", 0.0) > 0.0
        and "adversary" not in overrides
        and scenario.adversary == "none"
    ):
        # A positive fraction needs an attack; default to the headline one.
        overrides["adversary"] = "sign_flip"
    if "async_mode" not in overrides and (
        "staleness_discount" in overrides or "commit_count" in overrides
    ):
        # Async-only knobs are a request for the async comparison.
        overrides["async_mode"] = True
    if args.deadline is not None:
        overrides["deadline"] = (
            args.deadline[0] if len(args.deadline) == 1
            else tuple(args.deadline)
        )
    if args.no_deadline_probe:
        overrides["deadline_probe"] = False
    policy = overrides.get("deadline_policy")
    effective_deadline = overrides.get("deadline", scenario.deadline)
    if policy == "fixed" and isinstance(effective_deadline, tuple):
        # An explicit fixed request against a schedule preset: compare
        # like with like by collapsing the cycle to its mean budget.
        overrides["deadline"] = sum(effective_deadline) / len(
            effective_deadline
        )
    elif policy == "cycling" and isinstance(effective_deadline, float):
        overrides["deadline"] = (effective_deadline,)
    elif (
        policy == "adaptive"
        and isinstance(effective_deadline, (int, float))
        and "deadline_min" not in overrides
        and "deadline_max" not in overrides
    ):
        # A single deadline has no schedule to seed the interval from;
        # search around it (matching the comparison panel's convention).
        overrides["deadline_min"] = effective_deadline / 2.0
        overrides["deadline_max"] = effective_deadline * 2.0
    if args.trace is not None:
        rounds, cycle = load_trace_json(args.trace)
        overrides["availability"] = "trace"
        overrides["trace"] = tuple(tuple(e) for e in rounds)
        overrides["trace_cycle"] = cycle
    return scenario.with_overrides(**overrides).to_dict()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures of Han et al., ICDCS 2020.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figure commands")
    for figure in FIGURES:
        if figure == "scenario":
            help_text = (
                "run a deployment scenario (availability churn + deadline-"
                "gated partial aggregation): fixed-k vs adaptive-k"
            )
        elif figure == "adversary":
            help_text = (
                "run the Byzantine attack x defense panel: convergence "
                "per (adversary fraction x aggregator), sparse and dense"
            )
        else:
            help_text = f"reproduce {figure} of the paper"
        p = sub.add_parser(figure, help=help_text)
        if figure in ("scenario", "adversary"):
            _add_scenario_flags(p)
        p.add_argument("--out", default="results", help="output directory")
        p.add_argument("--scale", default="bench", choices=SCALE_NAMES)
        p.add_argument("--rounds", type=int, default=None,
                       help="override the preset's round count")
        p.add_argument("--seed", type=int, default=None,
                       help="override the preset's seed")
        p.add_argument("--comm-time", type=float, default=None,
                       help="override the preset's communication time")
        p.add_argument("--backend", default=None,
                       choices=BACKEND_NAMES,
                       help="execution backend for the trainers "
                            "(vectorized batches all clients per round, "
                            "sharded fans them out over worker processes; "
                            "identical results, faster)")
        p.add_argument("--jobs", type=int, default=None,
                       help="sharded worker processes (0 = all usable "
                            "CPUs); any value except 1 implies "
                            "--backend sharded")
        p.add_argument("--partition", default=None,
                       choices=("auto", "dirichlet"),
                       help="client partition: auto follows the paper "
                            "(femnist by writer, cifar by class); "
                            "dirichlet applies a Dirichlet(alpha) "
                            "label-skew split")
        p.add_argument("--dirichlet-alpha", type=float, default=None,
                       help="Dirichlet concentration for --partition "
                            "dirichlet (small = near-single-class "
                            "clients, large = near-IID); implies "
                            "--partition dirichlet")
        p.add_argument("--plot", action="store_true",
                       help="render ASCII charts to stdout")
        p.add_argument("--telemetry", default=None, metavar="PATH",
                       help="trace the run: append structured JSONL "
                            "events (round spans, byte counts, drops, "
                            "counters) to PATH; summarize with "
                            "`repro trace-report PATH`.  Observation-"
                            "only — results are bit-identical with or "
                            "without it")
        p.add_argument("--verbose", action="store_true",
                       help="debug-level progress logging")
    ps = sub.add_parser(
        "sweep",
        help="run a cached grid of figure configs over a process pool",
    )
    ps.add_argument("--figures", nargs="+", default=list(SWEEP_FIGURES),
                    choices=SWEEP_FIGURES, metavar="FIG",
                    help=f"figures to sweep (default: all of {SWEEP_FIGURES})")
    ps.add_argument("--scale", "--scales", nargs="+", dest="scales",
                    default=["bench"], choices=SCALE_NAMES)
    ps.add_argument("--seeds", nargs="+", type=int, default=[0])
    ps.add_argument("--backends", nargs="+", default=["serial"],
                    choices=BACKEND_NAMES)
    ps.add_argument("--rounds", type=int, default=None,
                    help="override every unit's round count")
    ps.add_argument("--jobs", type=int, default=1,
                    help="sweep pool worker processes (1 = run inline, "
                         "0 = all usable CPUs)")
    ps.add_argument("--out", default=None,
                    help="also export every unit's artifacts here")
    ps.add_argument("--cache-dir", default="results/sweep-cache",
                    help="content-addressed results store directory")
    ps.add_argument("--force", action="store_true",
                    help="recompute cached units")
    ps.add_argument("--telemetry", default=None, metavar="PATH",
                    help="append each unit's trace events to PATH "
                         "(units run with config.telemetry set; the "
                         "cache key ignores it)")
    ps.add_argument("--verbose", action="store_true",
                    help="debug-level progress logging")
    pt = sub.add_parser(
        "trace-report",
        help="summarize a --telemetry JSONL trace file",
    )
    pt.add_argument("trace_file", metavar="FILE",
                    help="JSONL trace written by --telemetry")
    pt.add_argument("--json", action="store_true",
                    help="emit the summary as JSON instead of a table")
    pt.add_argument("--verbose", action="store_true",
                    help="debug-level progress logging")
    pb = sub.add_parser(
        "bench-diff",
        help="compare current BENCH_*.json against the recorded "
             "BENCH_history.jsonl baseline; exits 1 on regression",
    )
    pb.add_argument("--dir", default=".", metavar="DIR",
                    help="directory holding BENCH_*.json and the history "
                         "(default: current directory)")
    pb.add_argument("--history", default=None, metavar="FILE",
                    help="history file (default: DIR/BENCH_history.jsonl)")
    pb.add_argument("--tolerance", type=float, default=None,
                    help="relative slowdown tolerated before a metric "
                         "regresses (default: 0.30)")
    pb.add_argument("--json", action="store_true",
                    help="emit the diff as JSON instead of a table")
    pb.add_argument("--verbose", action="store_true",
                    help="debug-level progress logging")
    return parser


def _run_trace_report(args) -> int:
    from repro.obs import format_trace_report, summarize_trace

    summary = summarize_trace(args.trace_file)
    if args.json:
        import json

        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_trace_report(summary))
    return 0


def _run_bench_diff(args) -> int:
    import json
    import pathlib

    from repro.obs.export import (
        DEFAULT_TOLERANCE,
        diff_bench_report,
        format_bench_diff,
        load_bench_history,
    )

    root = pathlib.Path(args.dir)
    history_path = pathlib.Path(args.history) if args.history \
        else root / "BENCH_history.jsonl"
    tolerance = DEFAULT_TOLERANCE if args.tolerance is None \
        else args.tolerance
    history = load_bench_history(history_path)
    diffs = []
    for bench_path in sorted(root.glob("BENCH_*.json")):
        reports = json.loads(bench_path.read_text())
        if not reports:
            continue
        diffs.append(diff_bench_report(
            bench_path.stem, reports[-1], history, tolerance,
        ))
    if not diffs:
        logger.warning("no BENCH_*.json snapshots found under %s", root)
        return 0
    if args.json:
        print(json.dumps(diffs, indent=2, sort_keys=True))
    else:
        print(format_bench_diff(diffs, tolerance))
    # Cross-host comparisons never gate; see repro.obs.export.
    return 1 if any(d["status"] == "regressed" for d in diffs) else 0


def _run_sweep_command(args) -> int:
    spec = SweepSpec(
        figures=tuple(args.figures),
        scales=tuple(args.scales),
        seeds=tuple(args.seeds),
        backends=tuple(args.backends),
        rounds=args.rounds,
        telemetry=args.telemetry,
    )
    from repro.parallel.pool import default_worker_count

    report = run_sweep(
        spec,
        cache_dir=args.cache_dir,
        out=args.out,
        jobs=args.jobs if args.jobs >= 1 else default_worker_count(),
        force=args.force,
        echo=logger.info,
    )
    for result in report.results:
        timing = "cache hit" if result.status == "cached" else (
            f"{result.seconds:.2f}s"
        )
        logger.info(
            "%s: %s (%s), %d artifacts [%s]",
            result.unit.run_id, result.status, timing,
            len(result.artifacts), result.key[:12],
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_cli_logging(verbose=getattr(args, "verbose", False))
    if args.command == "list":
        for figure in FIGURES:
            print(figure)
        return 0
    if args.command == "trace-report":
        return _run_trace_report(args)
    if args.command == "bench-diff":
        return _run_bench_diff(args)
    if args.command == "sweep":
        return _run_sweep_command(args)

    config = scaled_config(args.scale, args.command)
    overrides = {}
    if args.rounds is not None:
        overrides["num_rounds"] = args.rounds
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.comm_time is not None:
        overrides["comm_time"] = args.comm_time
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
        if args.backend is None and args.jobs != 1:
            overrides["backend"] = "sharded"
    if args.partition is not None:
        overrides["partition"] = args.partition
    if args.dirichlet_alpha is not None:
        overrides["dirichlet_alpha"] = args.dirichlet_alpha
        if args.partition is None:
            overrides["partition"] = "dirichlet"
    if getattr(args, "population", None):
        overrides["population"] = args.population
    if args.telemetry is not None:
        overrides["telemetry"] = args.telemetry
    if overrides:
        config = config.with_overrides(**overrides)
    if args.command == "scenario":
        config = config.with_overrides(
            scenario=_scenario_overrides(args, config.seed)
        )
    elif args.command == "adversary":
        from repro.scenarios import ScenarioConfig

        config = config.with_overrides(
            scenario=_scenario_overrides(
                args, config.seed,
                base=ScenarioConfig(availability="always"),
            )
        )

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    written = _run_figure(args.command, config, out, plot=args.plot)
    if args.command == "scenario" and args.alpha_sweep:
        # The α panel is a CLI-only extra (it multiplies the scenario
        # run per α), kept out of collect_artifacts so sweep cache keys
        # and the cached artifact set stay exactly the figure suite's.
        from repro.experiments.io import figure_to_dict
        from repro.experiments.scenario import run_dirichlet_sweep

        panel = run_dirichlet_sweep(config, args.alpha_sweep)
        write_json(out / "scenario_dirichlet_alpha.json", figure_to_dict(panel))
        written.append("scenario_dirichlet_alpha.json")
        export_figure_csv(panel, out / "scenario_dirichlet_alpha.csv")
        written.append("scenario_dirichlet_alpha.csv")
        if args.plot:
            print(render_figure(panel))
            print()
    for name in written:
        print(out / name)
    return 0


if __name__ == "__main__":
    sys.exit(main())
