"""Command-line interface: regenerate paper figures and export artifacts.

Usage::

    python -m repro.cli fig4 --out results/ --scale bench
    python -m repro.cli fig7 --out results/ --rounds 200 --seed 1
    python -m repro.cli fig5 --out results/ --backend vectorized
    python -m repro.cli list

Each figure command runs the corresponding experiment driver
(:mod:`repro.experiments`) and writes JSON + CSV artifacts into ``--out``.
``--scale`` picks a configuration preset: ``smoke`` (seconds), ``bench``
(tens of seconds, the benchmark suite's setting), ``default`` (minutes),
or ``paper`` (the paper's 156-client scale; hours).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig1 import run_fig1
from repro.fl.backends import BACKEND_NAMES
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7, run_fig8
from repro.experiments.io import export_figure_csv, save_figure, save_history
from repro.experiments.plotting import render_figure

FIGURES = ("fig1", "fig4", "fig5", "fig6", "fig7", "fig8")


def _scaled_config(scale: str, figure: str) -> ExperimentConfig:
    if scale == "smoke":
        base = ExperimentConfig.smoke()
    elif scale == "bench":
        base = ExperimentConfig(
            num_clients=24, samples_per_client=25, image_size=10,
            num_classes=16, classes_per_writer=5, hidden=(16,),
            learning_rate=0.05, batch_size=16, num_rounds=150,
            eval_every=5, eval_max_samples=300,
        )
    elif scale == "default":
        base = ExperimentConfig.default()
    elif scale == "paper":
        base = ExperimentConfig.paper_scale()
    else:
        raise ValueError(f"unknown scale {scale!r}")
    if figure == "fig8":
        cifar = ExperimentConfig.cifar_default()
        base = cifar.with_overrides(
            num_rounds=base.num_rounds, eval_every=base.eval_every,
            learning_rate=base.learning_rate, batch_size=base.batch_size,
        )
    return base


def _write(figure_data, name: str, out: Path) -> None:
    save_figure(figure_data, out / f"{name}.json")
    export_figure_csv(figure_data, out / f"{name}.csv")


def _run_figure(figure: str, config: ExperimentConfig, out: Path,
                plot: bool = False) -> list[str]:
    """Run one figure driver and write its artifacts; returns filenames."""
    written: list[str] = []

    def emit(fig_data, name):
        _write(fig_data, name, out)
        written.extend([f"{name}.json", f"{name}.csv"])
        if plot:
            try:
                print(render_figure(fig_data))
                print()
            except ValueError:
                pass  # empty panel (e.g. no accuracy series)

    if figure == "fig1":
        result = run_fig1(config)
        emit(result.figure, "fig1_post_switch_loss")
    elif figure == "fig4":
        result = run_fig4(config)
        emit(result.loss_vs_time, "fig4_loss_vs_time")
        emit(result.accuracy_vs_time, "fig4_accuracy_vs_time")
        emit(result.contribution_cdf, "fig4_contribution_cdf")
        for method, history in result.histories.items():
            path = out / f"fig4_history_{method}.json"
            save_history(history, path)
            written.append(path.name)
    elif figure == "fig5":
        result = run_fig5(config)
        emit(result.loss_vs_time, "fig5_loss_vs_time")
        emit(result.accuracy_vs_time, "fig5_accuracy_vs_time")
        emit(result.k_traces, "fig5_k_traces")
    elif figure == "fig6":
        result = run_fig6(config)
        emit(result.loss_vs_time, "fig6_loss_vs_time")
        emit(result.k_traces, "fig6_k_traces")
    elif figure in ("fig7", "fig8"):
        runner = run_fig7 if figure == "fig7" else run_fig8
        result = runner(config)
        assert result.k_traces is not None
        emit(result.k_traces, f"{figure}_k_traces")
        for beta, fig_data in result.loss_curves.items():
            emit(fig_data, f"{figure}_replay_beta_{beta:g}")
    else:
        raise ValueError(f"unknown figure {figure!r}")
    return written


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures of Han et al., ICDCS 2020.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figure commands")
    for figure in FIGURES:
        p = sub.add_parser(figure, help=f"reproduce {figure} of the paper")
        p.add_argument("--out", default="results", help="output directory")
        p.add_argument("--scale", default="bench",
                       choices=("smoke", "bench", "default", "paper"))
        p.add_argument("--rounds", type=int, default=None,
                       help="override the preset's round count")
        p.add_argument("--seed", type=int, default=None,
                       help="override the preset's seed")
        p.add_argument("--comm-time", type=float, default=None,
                       help="override the preset's communication time")
        p.add_argument("--backend", default=None,
                       choices=BACKEND_NAMES,
                       help="execution backend for the trainers "
                            "(vectorized batches all clients per round; "
                            "identical results, faster)")
        p.add_argument("--plot", action="store_true",
                       help="render ASCII charts to stdout")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for figure in FIGURES:
            print(figure)
        return 0

    config = _scaled_config(args.scale, args.command)
    overrides = {}
    if args.rounds is not None:
        overrides["num_rounds"] = args.rounds
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.comm_time is not None:
        overrides["comm_time"] = args.comm_time
    if args.backend is not None:
        overrides["backend"] = args.backend
    if overrides:
        config = config.with_overrides(**overrides)

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    written = _run_figure(args.command, config, out, plot=args.plot)
    for name in written:
        print(out / name)
    return 0


if __name__ == "__main__":
    sys.exit(main())
