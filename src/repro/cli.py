"""Command-line interface: regenerate paper figures and export artifacts.

Usage::

    python -m repro.cli fig4 --out results/ --scale bench
    python -m repro.cli fig7 --out results/ --rounds 200 --seed 1
    python -m repro.cli fig5 --out results/ --backend vectorized
    python -m repro.cli fig4 --backend sharded --jobs 4
    python -m repro.cli sweep --scale smoke --jobs 2
    python -m repro.cli list

Each figure command runs the corresponding experiment driver
(:mod:`repro.experiments`) and writes JSON + CSV artifacts into ``--out``.
``--scale`` picks a configuration preset: ``smoke`` (seconds), ``bench``
(tens of seconds, the benchmark suite's setting), ``default`` (minutes),
or ``paper`` (the paper's 156-client scale; hours).

``--backend`` selects the execution backend (``serial``, ``vectorized``,
or the multiprocessing ``sharded``); ``--jobs N`` sets the sharded worker
count (0 = all usable CPUs) and implies ``--backend sharded`` when more
than one worker is requested without an explicit backend.  Histories are
bit-identical across backends — only wall-clock speed changes.

``sweep`` runs a whole grid of figure configurations
(``--figures × --scales × --seeds × --backends``) across a process pool
(``--jobs`` sweep workers) with completed runs cached in a
content-addressed store (``--cache-dir``), so re-running a sweep only
computes what changed; see :mod:`repro.parallel.sweep`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.config import (
    SCALE_NAMES,
    ExperimentConfig,
    scaled_config,
)
from repro.fl.backends import BACKEND_NAMES
from repro.experiments.io import (
    export_figure_csv,
    figure_from_dict,
    write_json,
)
from repro.experiments.plotting import render_figure
from repro.parallel.sweep import (
    SWEEP_FIGURES,
    SweepSpec,
    collect_artifacts,
    run_sweep,
)

FIGURES = ("fig1", "fig4", "fig5", "fig6", "fig7", "fig8")


def _run_figure(figure: str, config: ExperimentConfig, out: Path,
                plot: bool = False) -> list[str]:
    """Run one figure driver and write its artifacts; returns filenames.

    The figure → artifacts mapping is :func:`repro.parallel.sweep.
    collect_artifacts` — the same collector the sweep orchestrator
    caches, so `repro <figN>` output and cached sweep exports cannot
    drift apart.  Figure artifacts additionally get a CSV (and an
    optional ASCII chart); history artifacts are JSON-only.
    """
    written: list[str] = []
    for name, payload in collect_artifacts(figure, config).items():
        write_json(out / f"{name}.json", payload)
        written.append(f"{name}.json")
        if payload.get("kind") != "figure":
            continue
        fig_data = figure_from_dict(payload)
        export_figure_csv(fig_data, out / f"{name}.csv")
        written.append(f"{name}.csv")
        if plot:
            try:
                print(render_figure(fig_data))
                print()
            except ValueError:
                pass  # empty panel (e.g. no accuracy series)
    return written


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures of Han et al., ICDCS 2020.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figure commands")
    for figure in FIGURES:
        p = sub.add_parser(figure, help=f"reproduce {figure} of the paper")
        p.add_argument("--out", default="results", help="output directory")
        p.add_argument("--scale", default="bench", choices=SCALE_NAMES)
        p.add_argument("--rounds", type=int, default=None,
                       help="override the preset's round count")
        p.add_argument("--seed", type=int, default=None,
                       help="override the preset's seed")
        p.add_argument("--comm-time", type=float, default=None,
                       help="override the preset's communication time")
        p.add_argument("--backend", default=None,
                       choices=BACKEND_NAMES,
                       help="execution backend for the trainers "
                            "(vectorized batches all clients per round, "
                            "sharded fans them out over worker processes; "
                            "identical results, faster)")
        p.add_argument("--jobs", type=int, default=None,
                       help="sharded worker processes (0 = all usable "
                            "CPUs); any value except 1 implies "
                            "--backend sharded")
        p.add_argument("--plot", action="store_true",
                       help="render ASCII charts to stdout")
    ps = sub.add_parser(
        "sweep",
        help="run a cached grid of figure configs over a process pool",
    )
    ps.add_argument("--figures", nargs="+", default=list(SWEEP_FIGURES),
                    choices=SWEEP_FIGURES, metavar="FIG",
                    help=f"figures to sweep (default: all of {SWEEP_FIGURES})")
    ps.add_argument("--scale", "--scales", nargs="+", dest="scales",
                    default=["bench"], choices=SCALE_NAMES)
    ps.add_argument("--seeds", nargs="+", type=int, default=[0])
    ps.add_argument("--backends", nargs="+", default=["serial"],
                    choices=BACKEND_NAMES)
    ps.add_argument("--rounds", type=int, default=None,
                    help="override every unit's round count")
    ps.add_argument("--jobs", type=int, default=1,
                    help="sweep pool worker processes (1 = run inline, "
                         "0 = all usable CPUs)")
    ps.add_argument("--out", default=None,
                    help="also export every unit's artifacts here")
    ps.add_argument("--cache-dir", default="results/sweep-cache",
                    help="content-addressed results store directory")
    ps.add_argument("--force", action="store_true",
                    help="recompute cached units")
    return parser


def _run_sweep_command(args) -> int:
    spec = SweepSpec(
        figures=tuple(args.figures),
        scales=tuple(args.scales),
        seeds=tuple(args.seeds),
        backends=tuple(args.backends),
        rounds=args.rounds,
    )
    from repro.parallel.pool import default_worker_count

    report = run_sweep(
        spec,
        cache_dir=args.cache_dir,
        out=args.out,
        jobs=args.jobs if args.jobs >= 1 else default_worker_count(),
        force=args.force,
        echo=print,
    )
    for result in report.results:
        timing = "cache hit" if result.status == "cached" else (
            f"{result.seconds:.2f}s"
        )
        print(f"{result.unit.run_id}: {result.status} ({timing}), "
              f"{len(result.artifacts)} artifacts [{result.key[:12]}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for figure in FIGURES:
            print(figure)
        return 0
    if args.command == "sweep":
        return _run_sweep_command(args)

    config = scaled_config(args.scale, args.command)
    overrides = {}
    if args.rounds is not None:
        overrides["num_rounds"] = args.rounds
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.comm_time is not None:
        overrides["comm_time"] = args.comm_time
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
        if args.backend is None and args.jobs != 1:
            overrides["backend"] = "sharded"
    if overrides:
        config = config.with_overrides(**overrides)

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    written = _run_figure(args.command, config, out, plot=args.plot)
    for name in written:
        print(out / name)
    return 0


if __name__ == "__main__":
    sys.exit(main())
