"""Federated dataset substrate.

The paper evaluates on FEMNIST (62 classes, pre-partitioned by writer —
naturally non-i.i.d.) and CIFAR-10 under an extreme partition where each
client holds a single class.  Neither dataset can be downloaded in this
offline environment, so :mod:`repro.data.synthetic` generates statistically
analogous datasets — class prototypes with per-writer style transforms and
additive noise — and :mod:`repro.data.partition` reproduces the paper's
partitioning schemes (by writer, one class per client, Dirichlet, IID).
DESIGN.md §2 documents why this substitution preserves the behaviour under
study.
"""

from repro.data.partition import (
    ClientDataset,
    FederatedDataset,
    partition_by_class,
    partition_by_writer,
    partition_dirichlet,
    partition_iid,
)
from repro.data.synthetic import (
    SyntheticDataset,
    make_cifar_like,
    make_femnist_like,
    make_gaussian_blobs,
)
from repro.data.virtual import (
    LazyClientDataset,
    VirtualFederation,
    VirtualSpec,
)

__all__ = [
    "ClientDataset",
    "FederatedDataset",
    "LazyClientDataset",
    "SyntheticDataset",
    "VirtualFederation",
    "VirtualSpec",
    "make_cifar_like",
    "make_femnist_like",
    "make_gaussian_blobs",
    "partition_by_class",
    "partition_by_writer",
    "partition_dirichlet",
    "partition_iid",
]
