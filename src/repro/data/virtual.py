"""Population-scale virtual federations.

The eager generators in :mod:`repro.data.synthetic` draw every writer from
ONE sequential RNG, so they cannot produce client ``i`` without producing
clients ``0..i-1`` first — fine at 96 clients, structurally O(population)
at a million.  This module provides a *generative family with per-client
pure streams*: every quantity a client needs is a function of
``(dataset_seed, client_id)`` alone (plus class prototypes, themselves a
pure function of the seed), so any client can be regenerated on demand,
byte-identically, in any order, in any process.

Three pieces:

* :class:`VirtualSpec` — the picklable value object describing the whole
  federation (what the sharded backend ships to workers instead of
  datasets).
* :class:`LazyClientDataset` — the :class:`~repro.data.partition.
  ClientDataset` surface with arrays that materialize on first access and
  can be released and regenerated at will; the minibatch RNG stream is
  seeded exactly like the eager class (``(seed, client_id)``) and survives
  releases, so draws are bit-identical to an eager run.
* :class:`VirtualFederation` — the :class:`~repro.data.partition.
  FederatedDataset` surface over ``population`` virtual clients with a
  bounded LRU over recently *materialized* clients and an
  ``eval_pool`` that replicates the engine's eager eval-pool RNG call
  exactly while only materializing the O(max_samples) touched clients.

Statistically the family mirrors :func:`~repro.data.synthetic.
make_femnist_like` (per-client class subset, gain/style/noise around
shared prototypes) — it is a *new* dataset, not a reordering of the eager
one, because the eager per-writer draws are not per-cid decomposable.
The bit-identity contract is therefore between a :class:`VirtualFederation`
and its own :meth:`VirtualFederation.materialize` eager twin.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import asdict, dataclass

import numpy as np

from repro.data.partition import ClientDataset, FederatedDataset
from repro.data.synthetic import _make_prototypes, _make_test_pool
from repro.obs import NULL_TELEMETRY

#: per-cid client-data stream tag (disjoint from every other stream tag
#: in the repo: 0xC11E client RNG, 0xE0A1 eval pool, 0x5CE2 sampler, ...)
CLIENT_DATA_TAG = 0xDA7A
#: prototype stream tag (shared across the federation, pure in the seed)
PROTOTYPE_TAG = 0x9707
#: held-out test-pool stream tag
TEST_POOL_TAG = 0x7E57
#: engine eval-pool tag — must equal the engine's so the virtual pool is
#: bit-identical to the eager ``global_pool + choice`` construction
EVAL_POOL_TAG = 0xE0A1

#: refuse O(population) conveniences (``.clients``/``global_pool``) above
#: this size — they exist so small virtual federations can be compared
#: against their eager twin, not for production populations
ENUMERATION_LIMIT = 200_000


@dataclass(frozen=True)
class VirtualSpec:
    """Everything needed to regenerate any client of the federation.

    A frozen value object of primitives: picklable (the sharded backend
    ships one of these per session instead of per-client datasets) and
    JSON-ready via :meth:`to_dict` (bench/CI manifests).
    """

    population: int
    samples_per_client: int = 30
    num_classes: int = 62
    image_size: int = 12
    classes_per_writer: int = 8
    channels: int = 1
    noise_std: float = 0.25
    flatten: bool = True
    test_samples: int = 256
    seed: int = 0
    name: str = "virtual-femnist"

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ValueError("population must be positive")
        if self.samples_per_client < 1:
            raise ValueError("samples_per_client must be positive")
        if self.classes_per_writer > self.num_classes:
            raise ValueError("classes_per_writer cannot exceed num_classes")
        if self.classes_per_writer < 1 or self.num_classes < 1:
            raise ValueError("need at least one class")
        if self.channels < 1 or self.image_size < 1:
            raise ValueError("invalid image shape")
        if self.test_samples < 1:
            raise ValueError("test_samples must be positive")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "VirtualSpec":
        return cls(**data)

    @property
    def feature_dim(self) -> int:
        return self.channels * self.image_size**2


class LazyClientDataset:
    """One virtual client's shard; arrays regenerate on demand.

    Satisfies the :class:`~repro.data.partition.ClientDataset` surface
    (``client_id``/``x``/``y``/``seed``/``__len__``/``minibatch``/
    ``label_histogram``).  The minibatch RNG is seeded ``(seed,
    client_id)`` exactly like the eager class and is *not* part of the
    releasable state: :meth:`release` drops only the arrays, so a client
    that hibernates and later rematerializes continues its draw stream
    where it left off — bit-identical to never having released.
    """

    def __init__(
        self,
        federation: "VirtualFederation",
        client_id: int,
        sample_count: int,
        seed: int,
    ) -> None:
        self.client_id = int(client_id)
        self.seed = seed
        self._federation = federation
        self._count = int(sample_count)
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._rng = np.random.default_rng((seed, self.client_id))

    def __len__(self) -> int:
        return self._count

    @property
    def virtual_spec(self) -> VirtualSpec:
        """The federation spec this client regenerates from.

        The sharded backend ships this tiny value object to the worker
        owning the client instead of pickling sample arrays; the worker
        rebuilds the dataset from ``(spec, client_id)`` bit-identically.
        """
        return self._federation.spec

    @property
    def materialized(self) -> bool:
        """Whether the sample arrays are currently resident."""
        return self._x is not None

    def _ensure(self) -> None:
        if self._x is None:
            self._x, self._y = self._federation.client_arrays(self.client_id)
            tel = self._federation.telemetry
            if tel.enabled:
                tel.count("virtual.regenerate")
        self._federation._touch(self)

    @property
    def x(self) -> np.ndarray:
        self._ensure()
        return self._x

    @property
    def y(self) -> np.ndarray:
        self._ensure()
        return self._y

    def release(self) -> None:
        """Drop the sample arrays (regenerated on next access)."""
        self._x = None
        self._y = None

    def minibatch(self, batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Seeded minibatch; identical logic (and stream) to the eager
        :meth:`~repro.data.partition.ClientDataset.minibatch`."""
        n = len(self)
        if batch_size >= n:
            return self.x, self.y
        idx = self._rng.choice(n, size=batch_size, replace=False)
        return self.x[idx], self.y[idx]

    def label_histogram(self, num_classes: int) -> np.ndarray:
        return np.bincount(self.y, minlength=num_classes)


class VirtualFederation:
    """``FederatedDataset`` surface over ``population`` virtual clients.

    Only ever-touched clients exist as objects; only the ``cache_size``
    most recently accessed hold their sample arrays (older ones are
    released and regenerate on demand).  Per-round cost of a training run
    is O(cohort); memory is O(ever-sampled clients).
    """

    #: duck-typed marker the engine/runner check instead of isinstance
    is_virtual = True
    #: observation-only; the engine replaces this with its telemetry so
    #: LRU hits/evictions/regenerations get counted (parent process only).
    telemetry = NULL_TELEMETRY

    def __init__(self, spec: VirtualSpec, cache_size: int = 256) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be positive")
        self.spec = spec
        self.cache_size = cache_size
        self.num_classes = spec.num_classes
        self.name = spec.name
        self._prototypes: np.ndarray | None = None
        self._test: tuple[np.ndarray, np.ndarray] | None = None
        #: ever-touched clients, identity-stable across queries
        self._datasets: dict[int, LazyClientDataset] = {}
        #: LRU over clients whose arrays are resident
        self._resident: OrderedDict[int, LazyClientDataset] = OrderedDict()

    @classmethod
    def build(cls, population: int, cache_size: int = 256, **spec_kwargs):
        """Convenience constructor mirroring ``make_femnist_like``."""
        return cls(VirtualSpec(population=population, **spec_kwargs), cache_size)

    # ------------------------------------------------------------------
    # FederatedDataset surface
    # ------------------------------------------------------------------
    @property
    def num_clients(self) -> int:
        return self.spec.population

    @property
    def client_ids(self) -> range:
        return range(self.spec.population)

    @property
    def sample_counts(self) -> np.ndarray:
        return np.full(self.spec.population, self.spec.samples_per_client)

    @property
    def total_samples(self) -> int:
        return self.spec.population * self.spec.samples_per_client

    @property
    def clients(self) -> list[LazyClientDataset]:
        """All clients as (unmaterialized) lazy datasets.

        O(population) object construction — only allowed for federations
        small enough to compare against an eager twin."""
        self._check_enumerable("clients")
        return [self.client_dataset(cid) for cid in self.client_ids]

    @property
    def test_x(self) -> np.ndarray:
        return self._test_pool()[0]

    @property
    def test_y(self) -> np.ndarray:
        return self._test_pool()[1]

    def global_pool(self) -> tuple[np.ndarray, np.ndarray]:
        """All training samples concatenated — O(population), guarded."""
        self._check_enumerable("global_pool")
        xs, ys = zip(*(self.client_arrays(cid) for cid in self.client_ids))
        return np.concatenate(xs), np.concatenate(ys)

    # ------------------------------------------------------------------
    # Virtual construction
    # ------------------------------------------------------------------
    def client_dataset(self, client_id: int) -> LazyClientDataset:
        """The (identity-stable) lazy dataset for one client."""
        cid = int(client_id)
        dataset = self._datasets.get(cid)
        if dataset is None:
            if not 0 <= cid < self.spec.population:
                raise ValueError(
                    f"client_id {cid} outside population "
                    f"[0, {self.spec.population})"
                )
            dataset = LazyClientDataset(
                self, cid, self.spec.samples_per_client, self.spec.seed
            )
            self._datasets[cid] = dataset
        return dataset

    def client_arrays(self, client_id: int) -> tuple[np.ndarray, np.ndarray]:
        """Regenerate one client's ``(x, y)`` from ``(seed, cid)`` alone.

        Pure: same ``(spec, client_id)`` gives byte-equal arrays across
        calls, instances, processes and query orders (the invariant lazy
        residual spilling and worker-side construction rest on).
        """
        spec = self.spec
        cid = int(client_id)
        if not 0 <= cid < spec.population:
            raise ValueError(
                f"client_id {cid} outside population [0, {spec.population})"
            )
        prototypes = self._prototype_array()
        rng = np.random.default_rng((spec.seed, CLIENT_DATA_TAG, cid))
        classes = rng.choice(
            spec.num_classes, size=spec.classes_per_writer, replace=False
        )
        gain = rng.uniform(0.7, 1.3)
        style = rng.normal(0.0, 0.2, size=prototypes[0].shape)
        labels = rng.choice(classes, size=spec.samples_per_client)
        noise = rng.normal(
            0.0, spec.noise_std,
            size=(spec.samples_per_client, *prototypes[0].shape),
        )
        x = np.clip(gain * prototypes[labels] + style + noise, -3.0, 3.0)
        if spec.flatten:
            x = x.reshape(x.shape[0], -1)
        return x, labels.astype(np.int64)

    def eval_pool(
        self, max_samples: int, seed: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The engine's evaluation pool without touching the population.

        Replicates the eager construction exactly — ``global_pool()``
        followed by ``default_rng((seed, 0xE0A1)).choice(total,
        max_samples, replace=False)`` — but only materializes the clients
        that own a selected row (every client holds ``samples_per_client``
        rows, so row ``r`` lives at ``(r // spc)[r % spc]``).  numpy's
        no-replacement ``choice`` is O(max_samples) in memory at any
        population size (verified: no permutation of ``total`` is built).
        """
        total = self.total_samples
        if total <= max_samples:
            return self.global_pool()
        rng = np.random.default_rng((seed, EVAL_POOL_TAG))
        rows = rng.choice(total, size=max_samples, replace=False)
        spc = self.spec.samples_per_client
        cids = rows // spc
        offsets = rows % spc
        x = np.empty((max_samples, *self._sample_shape()))
        y = np.empty(max_samples, dtype=np.int64)
        for cid in np.unique(cids):
            cx, cy = self.client_arrays(int(cid))
            mask = cids == cid
            x[mask] = cx[offsets[mask]]
            y[mask] = cy[offsets[mask]]
        return x, y

    def materialize(self) -> FederatedDataset:
        """The eager twin: every client as a plain ``ClientDataset``.

        Bit-identity anchor for tests — a training run over the virtual
        federation must equal the same run over this eager federation
        exactly.  Guarded to enumerable sizes.
        """
        self._check_enumerable("materialize")
        clients = [
            ClientDataset(client_id=cid, x=x, y=y, seed=self.spec.seed)
            for cid in self.client_ids
            for x, y in (self.client_arrays(cid),)
        ]
        return FederatedDataset(
            clients=clients,
            num_classes=self.spec.num_classes,
            test_x=self.test_x,
            test_y=self.test_y,
            name=self.spec.name,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sample_shape(self) -> tuple[int, ...]:
        spec = self.spec
        if spec.flatten:
            return (spec.feature_dim,)
        return (spec.channels, spec.image_size, spec.image_size)

    def _prototype_array(self) -> np.ndarray:
        if self._prototypes is None:
            rng = np.random.default_rng((self.spec.seed, PROTOTYPE_TAG))
            self._prototypes = _make_prototypes(
                rng, self.spec.num_classes, self.spec.channels,
                self.spec.image_size,
            )
        return self._prototypes

    def _test_pool(self) -> tuple[np.ndarray, np.ndarray]:
        if self._test is None:
            rng = np.random.default_rng((self.spec.seed, TEST_POOL_TAG))
            test_x, test_y = _make_test_pool(
                rng, self._prototype_array(), self.spec.noise_std,
                self.spec.test_samples, self.spec.num_classes,
            )
            if self.spec.flatten:
                test_x = test_x.reshape(test_x.shape[0], -1)
            self._test = (test_x, test_y)
        return self._test

    def _touch(self, dataset: LazyClientDataset) -> None:
        """LRU bookkeeping: ``dataset`` was just accessed while resident."""
        tel = self.telemetry
        cid = dataset.client_id
        if cid in self._resident:
            self._resident.move_to_end(cid)
            if tel.enabled:
                tel.count("virtual.lru_hit")
            return
        self._resident[cid] = dataset
        while len(self._resident) > self.cache_size:
            _, evicted = self._resident.popitem(last=False)
            evicted.release()
            if tel.enabled:
                tel.count("virtual.lru_evict")

    def _check_enumerable(self, what: str) -> None:
        if self.spec.population > ENUMERATION_LIMIT:
            raise RuntimeError(
                f"{what} is O(population) and this federation has "
                f"{self.spec.population} clients; use client_dataset(cid) "
                "/ eval_pool() instead"
            )
