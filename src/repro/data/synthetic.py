"""Synthetic dataset generators standing in for FEMNIST and CIFAR-10.

Generation model
----------------
Each class ``c`` has a fixed prototype image drawn once from a seeded RNG.
Each *writer* (FEMNIST terminology; "style group" in general) has a style
transform — a small affine distortion of pixel intensities plus a writer
bias pattern — applied to every sample the writer produces.  A sample is::

    x = clip(gain_w * prototype_c + style_w + noise, lo, hi)

This reproduces the two statistical properties the paper's experiments rely
on: samples of a class are mutually similar but not identical, and samples
from the same writer share correlated structure that differs between
writers (the source of non-i.i.d.-ness when partitioning by writer).

The images are intentionally low-resolution (default 12x12 for the
"FEMNIST-like" data, 8x8x3 for the "CIFAR-like" data) so that the
experiment sweeps complete at laptop scale; pass a larger ``image_size``
for higher fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SyntheticDataset:
    """A flat pool of labelled samples plus provenance metadata.

    Attributes
    ----------
    x:
        Sample array.  Shape ``(n, features)`` for flat models or
        ``(n, channels, h, w)`` for CNNs.
    y:
        Integer labels, shape ``(n,)``.
    writer:
        Writer (style-group) id of each sample, shape ``(n,)``.  Used by
        :func:`repro.data.partition.partition_by_writer`.
    num_classes:
        Total number of classes.
    name:
        Human-readable dataset name.
    """

    x: np.ndarray
    y: np.ndarray
    writer: np.ndarray
    num_classes: int
    name: str = "synthetic"
    test_x: np.ndarray | None = field(default=None, repr=False)
    test_y: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        n = self.x.shape[0]
        if self.y.shape != (n,) or self.writer.shape != (n,):
            raise ValueError("x, y, writer must agree on sample count")
        if n and (self.y.min() < 0 or self.y.max() >= self.num_classes):
            raise ValueError("labels out of range")

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def feature_dim(self) -> int:
        """Number of features per sample after flattening."""
        return int(np.prod(self.x.shape[1:]))


def make_femnist_like(
    num_writers: int = 30,
    samples_per_writer: int = 40,
    num_classes: int = 62,
    image_size: int = 12,
    classes_per_writer: int = 8,
    noise_std: float = 0.25,
    test_fraction: float = 0.1,
    flatten: bool = True,
    seed: int = 0,
) -> SyntheticDataset:
    """FEMNIST-like data: 62 classes, writer-partitioned, non-i.i.d.

    Each writer draws from a writer-specific subset of
    ``classes_per_writer`` classes (real FEMNIST writers likewise cover
    only the characters they wrote), with writer-specific style.  The
    paper's setup (156 writers, 34,659 samples) is reproduced by scaling
    ``num_writers`` and ``samples_per_writer`` up.

    Returns a dataset with held-out test samples (drawn from the same
    writers) in ``test_x`` / ``test_y``.
    """
    return _make_prototype_dataset(
        name="femnist-like",
        num_writers=num_writers,
        samples_per_writer=samples_per_writer,
        num_classes=num_classes,
        channels=1,
        image_size=image_size,
        classes_per_writer=classes_per_writer,
        noise_std=noise_std,
        test_fraction=test_fraction,
        flatten=flatten,
        seed=seed,
    )


def make_cifar_like(
    num_clients: int = 20,
    samples_per_client: int = 50,
    num_classes: int = 10,
    image_size: int = 8,
    noise_std: float = 0.3,
    test_fraction: float = 0.1,
    flatten: bool = True,
    seed: int = 0,
) -> SyntheticDataset:
    """CIFAR-10-like data for the one-class-per-client partition.

    Color (3-channel) prototypes.  The ``writer`` field holds the client id
    under the paper's strong non-i.i.d. assignment: client ``i`` receives
    samples of class ``i % num_classes`` only, so partitioning by writer
    reproduces "each client only has one class of images".
    """
    rng = np.random.default_rng(seed)
    channels = 3
    prototypes = _make_prototypes(rng, num_classes, channels, image_size)
    xs, ys, writers = [], [], []
    for client in range(num_clients):
        cls = client % num_classes
        gain = rng.uniform(0.8, 1.2)
        style = rng.normal(0.0, 0.15, size=prototypes[0].shape)
        noise = rng.normal(0.0, noise_std,
                           size=(samples_per_client, *prototypes[0].shape))
        samples = np.clip(gain * prototypes[cls] + style + noise, -3.0, 3.0)
        xs.append(samples)
        ys.append(np.full(samples_per_client, cls, dtype=np.int64))
        writers.append(np.full(samples_per_client, client, dtype=np.int64))
    x = np.concatenate(xs)
    y = np.concatenate(ys)
    writer = np.concatenate(writers)
    test_n = max(1, int(test_fraction * num_classes * samples_per_client))
    test_x, test_y = _make_test_pool(rng, prototypes, noise_std, test_n, num_classes)
    if flatten:
        x = x.reshape(x.shape[0], -1)
        test_x = test_x.reshape(test_x.shape[0], -1)
    return SyntheticDataset(
        x=x, y=y, writer=writer, num_classes=num_classes, name="cifar-like",
        test_x=test_x, test_y=test_y,
    )


def make_gaussian_blobs(
    num_samples: int = 200,
    num_classes: int = 4,
    feature_dim: int = 10,
    separation: float = 3.0,
    seed: int = 0,
) -> SyntheticDataset:
    """Tiny Gaussian-mixture dataset for fast unit tests.

    Class means are drawn on a sphere of radius ``separation``; features
    are unit-variance Gaussians around the class mean.  Writers are
    assigned round-robin so writer-based partitioning stays usable.
    """
    rng = np.random.default_rng(seed)
    means = rng.standard_normal((num_classes, feature_dim))
    means *= separation / np.linalg.norm(means, axis=1, keepdims=True)
    y = rng.integers(0, num_classes, num_samples).astype(np.int64)
    x = means[y] + rng.standard_normal((num_samples, feature_dim))
    writer = (np.arange(num_samples) % max(1, num_samples // 10)).astype(np.int64)
    test_y = rng.integers(0, num_classes, max(10, num_samples // 10)).astype(np.int64)
    test_x = means[test_y] + rng.standard_normal((test_y.size, feature_dim))
    return SyntheticDataset(
        x=x, y=y, writer=writer, num_classes=num_classes, name="gaussian-blobs",
        test_x=test_x, test_y=test_y,
    )


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _make_prototypes(
    rng: np.random.Generator, num_classes: int, channels: int, image_size: int
) -> np.ndarray:
    """Smooth random prototype image per class, shape (classes, c, h, w)."""
    raw = rng.standard_normal((num_classes, channels, image_size, image_size))
    # Box-blur once so prototypes have spatial structure rather than
    # white noise; classes stay well separated because the blur is shared.
    blurred = (
        raw
        + np.roll(raw, 1, axis=2)
        + np.roll(raw, -1, axis=2)
        + np.roll(raw, 1, axis=3)
        + np.roll(raw, -1, axis=3)
    ) / 5.0
    return blurred * 1.5


def _make_test_pool(
    rng: np.random.Generator,
    prototypes: np.ndarray,
    noise_std: float,
    test_n: int,
    num_classes: int,
) -> tuple[np.ndarray, np.ndarray]:
    test_y = rng.integers(0, num_classes, test_n).astype(np.int64)
    noise = rng.normal(0.0, noise_std, size=(test_n, *prototypes[0].shape))
    test_x = np.clip(prototypes[test_y] + noise, -3.0, 3.0)
    return test_x, test_y


def _make_prototype_dataset(
    name: str,
    num_writers: int,
    samples_per_writer: int,
    num_classes: int,
    channels: int,
    image_size: int,
    classes_per_writer: int,
    noise_std: float,
    test_fraction: float,
    flatten: bool,
    seed: int,
) -> SyntheticDataset:
    if classes_per_writer > num_classes:
        raise ValueError("classes_per_writer cannot exceed num_classes")
    rng = np.random.default_rng(seed)
    prototypes = _make_prototypes(rng, num_classes, channels, image_size)
    xs, ys, writers = [], [], []
    for w in range(num_writers):
        classes = rng.choice(num_classes, size=classes_per_writer, replace=False)
        gain = rng.uniform(0.7, 1.3)
        style = rng.normal(0.0, 0.2, size=prototypes[0].shape)
        labels = rng.choice(classes, size=samples_per_writer)
        noise = rng.normal(0.0, noise_std,
                           size=(samples_per_writer, *prototypes[0].shape))
        samples = np.clip(gain * prototypes[labels] + style + noise, -3.0, 3.0)
        xs.append(samples)
        ys.append(labels.astype(np.int64))
        writers.append(np.full(samples_per_writer, w, dtype=np.int64))
    x = np.concatenate(xs)
    y = np.concatenate(ys)
    writer = np.concatenate(writers)
    test_n = max(1, int(test_fraction * num_writers * samples_per_writer))
    test_x, test_y = _make_test_pool(rng, prototypes, noise_std, test_n, num_classes)
    if flatten:
        x = x.reshape(x.shape[0], -1)
        test_x = test_x.reshape(test_x.shape[0], -1)
    return SyntheticDataset(
        x=x, y=y, writer=writer, num_classes=num_classes, name=name,
        test_x=test_x, test_y=test_y,
    )
