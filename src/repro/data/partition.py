"""Partition a dataset pool into per-client shards.

The paper's two evaluation settings map to :func:`partition_by_writer`
(FEMNIST: "pre-partitioned according to the writer where each writer
corresponds to a client") and :func:`partition_by_class` (CIFAR-10: "each
client only has one class of images that is randomly partitioned among all
the clients with this image class").  Dirichlet and IID partitioners are
provided for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import SyntheticDataset


@dataclass
class ClientDataset:
    """One client's local shard with seeded minibatch sampling."""

    client_id: int
    x: np.ndarray
    y: np.ndarray
    seed: int = 0

    def __post_init__(self) -> None:
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError("x and y must have equal sample counts")
        if self.x.shape[0] == 0:
            raise ValueError(f"client {self.client_id} received no samples")
        self._rng = np.random.default_rng((self.seed, self.client_id))

    def __len__(self) -> int:
        return self.x.shape[0]

    def minibatch(self, batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Sample a minibatch with replacement-free draw when possible.

        When ``batch_size`` >= local sample count the full shard is
        returned (matching common FL simulators).
        """
        n = len(self)
        if batch_size >= n:
            return self.x, self.y
        idx = self._rng.choice(n, size=batch_size, replace=False)
        return self.x[idx], self.y[idx]

    def label_histogram(self, num_classes: int) -> np.ndarray:
        """Count of samples per class on this client."""
        return np.bincount(self.y, minlength=num_classes)


@dataclass
class FederatedDataset:
    """A full federation: client shards plus the global test pool."""

    clients: list[ClientDataset]
    num_classes: int
    test_x: np.ndarray | None = None
    test_y: np.ndarray | None = None
    name: str = "federated"

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    @property
    def sample_counts(self) -> np.ndarray:
        """``C_i`` of the paper: per-client sample counts."""
        return np.array([len(c) for c in self.clients])

    @property
    def total_samples(self) -> int:
        """``C`` of the paper."""
        return int(self.sample_counts.sum())

    def global_pool(self) -> tuple[np.ndarray, np.ndarray]:
        """All training samples concatenated (for global-loss evaluation)."""
        x = np.concatenate([c.x for c in self.clients])
        y = np.concatenate([c.y for c in self.clients])
        return x, y

    def non_iid_degree(self) -> float:
        """Mean total-variation distance between client and global label
        distributions; 0 for perfectly IID shards, → 1 for disjoint ones."""
        global_hist = np.zeros(self.num_classes)
        for c in self.clients:
            global_hist += c.label_histogram(self.num_classes)
        global_dist = global_hist / global_hist.sum()
        tvs = []
        for c in self.clients:
            h = c.label_histogram(self.num_classes)
            dist = h / h.sum()
            tvs.append(0.5 * np.abs(dist - global_dist).sum())
        return float(np.mean(tvs))


def partition_by_writer(
    dataset: SyntheticDataset, seed: int = 0, *, client_id: int | None = None
):
    """One client per writer (the FEMNIST setting).

    With ``client_id`` set, returns just that client's
    :class:`ClientDataset` — bit-identical to the eager partition's
    (same slice, same minibatch seed) without building the others.
    """
    writers = np.unique(dataset.writer)
    if client_id is not None:
        _check_client_id(client_id, writers.size)
        mask = dataset.writer == writers[client_id]
        return ClientDataset(
            client_id=int(client_id), x=dataset.x[mask], y=dataset.y[mask],
            seed=seed,
        )
    clients = []
    for cid, w in enumerate(writers):
        mask = dataset.writer == w
        clients.append(
            ClientDataset(client_id=cid, x=dataset.x[mask], y=dataset.y[mask], seed=seed)
        )
    return _wrap(dataset, clients)


def partition_by_class(
    dataset: SyntheticDataset, num_clients: int, seed: int = 0,
    *, client_id: int | None = None,
):
    """Each client holds a single class (the paper's CIFAR-10 setting).

    Clients are assigned classes round-robin; the samples of each class
    are split randomly and evenly among the clients holding that class.
    Requires ``num_clients >= num_classes`` so every class is covered.

    With ``client_id`` set, returns just that client's
    :class:`ClientDataset`, bit-identical to the eager partition's: the
    per-class shuffles consume one shared RNG in class order, so the
    materializer replays the shuffles up to the client's class and slices
    its chunk (index bookkeeping only — no other client's arrays are
    built).
    """
    if num_clients < dataset.num_classes:
        raise ValueError(
            f"need at least num_classes={dataset.num_classes} clients, "
            f"got {num_clients}"
        )
    rng = np.random.default_rng(seed)
    class_of_client = np.arange(num_clients) % dataset.num_classes
    if client_id is not None:
        _check_client_id(client_id, num_clients)
        target = int(client_id) % dataset.num_classes
        for cls in range(target + 1):
            holders = np.flatnonzero(class_of_client == cls)
            idx = np.flatnonzero(dataset.y == cls)
            if idx.size < holders.size:
                raise ValueError(
                    f"class {cls} has {idx.size} samples but "
                    f"{holders.size} clients"
                )
            rng.shuffle(idx)
        slot = int(np.searchsorted(holders, int(client_id)))
        part = np.array_split(idx, holders.size)[slot]
        return ClientDataset(
            client_id=int(client_id), x=dataset.x[part], y=dataset.y[part],
            seed=seed,
        )
    clients: list[ClientDataset] = []
    for cls in range(dataset.num_classes):
        holders = np.flatnonzero(class_of_client == cls)
        idx = np.flatnonzero(dataset.y == cls)
        if idx.size < holders.size:
            raise ValueError(
                f"class {cls} has {idx.size} samples but {holders.size} clients"
            )
        rng.shuffle(idx)
        for part, cid in zip(np.array_split(idx, holders.size), holders):
            clients.append(
                ClientDataset(
                    client_id=int(cid), x=dataset.x[part], y=dataset.y[part], seed=seed
                )
            )
    clients.sort(key=lambda c: c.client_id)
    return _wrap(dataset, clients)


def partition_dirichlet(
    dataset: SyntheticDataset, num_clients: int, alpha: float = 0.5,
    seed: int = 0, *, client_id: int | None = None,
):
    """Dirichlet(alpha) label-skew partition (smaller alpha = more skew).

    With ``client_id`` set, returns just that client's
    :class:`ClientDataset`, bit-identical to the eager partition's.  The
    donor-stealing rescue couples every bucket, so the per-client path
    still computes all index buckets — but materializes only one client's
    sample arrays (the dominant cost at image dimensions).
    """
    buckets = _dirichlet_buckets(dataset, num_clients, alpha, seed)
    if client_id is not None:
        _check_client_id(client_id, num_clients)
        rows = np.array(sorted(buckets[client_id]))
        return ClientDataset(
            client_id=int(client_id), x=dataset.x[rows], y=dataset.y[rows],
            seed=seed,
        )
    clients = [
        ClientDataset(
            client_id=cid,
            x=dataset.x[np.array(sorted(bucket))],
            y=dataset.y[np.array(sorted(bucket))],
            seed=seed,
        )
        for cid, bucket in enumerate(buckets)
    ]
    return _wrap(dataset, clients)


def _dirichlet_buckets(
    dataset: SyntheticDataset, num_clients: int, alpha: float, seed: int
) -> list[list[int]]:
    """Per-client sample-index buckets of the Dirichlet partition."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = np.random.default_rng(seed)
    buckets: list[list[int]] = [[] for _ in range(num_clients)]
    for cls in range(dataset.num_classes):
        idx = np.flatnonzero(dataset.y == cls)
        if idx.size == 0:
            continue
        rng.shuffle(idx)
        proportions = rng.dirichlet(np.full(num_clients, alpha))
        cuts = (np.cumsum(proportions)[:-1] * idx.size).astype(int)
        for cid, part in enumerate(np.split(idx, cuts)):
            buckets[cid].extend(part.tolist())
    # Guarantee every client has at least one sample by stealing from the
    # largest bucket; Dirichlet draws with small alpha can empty a client.
    for cid, bucket in enumerate(buckets):
        if not bucket:
            donor = max(range(num_clients), key=lambda c: len(buckets[c]))
            bucket.append(buckets[donor].pop())
    return buckets


def partition_iid(
    dataset: SyntheticDataset, num_clients: int, seed: int = 0
) -> FederatedDataset:
    """Uniform random split — the datacenter-style IID baseline."""
    if num_clients > len(dataset):
        raise ValueError("more clients than samples")
    rng = np.random.default_rng(seed)
    idx = rng.permutation(len(dataset))
    clients = [
        ClientDataset(client_id=cid, x=dataset.x[part], y=dataset.y[part], seed=seed)
        for cid, part in enumerate(np.array_split(idx, num_clients))
    ]
    return _wrap(dataset, clients)


def _check_client_id(client_id: int, num_clients: int) -> None:
    if not 0 <= int(client_id) < num_clients:
        raise ValueError(
            f"client_id {client_id} outside [0, {num_clients})"
        )


def _wrap(dataset: SyntheticDataset, clients: list[ClientDataset]) -> FederatedDataset:
    return FederatedDataset(
        clients=clients,
        num_classes=dataset.num_classes,
        test_x=dataset.test_x,
        test_y=dataset.test_y,
        name=dataset.name,
    )
