"""Flat-parameter view of a model.

Gradient sparsification (Section III of the paper) treats the model as a
single D-dimensional vector: clients accumulate residuals ``a_i ∈ R^D``,
upload top-k (index, value) pairs, and the server broadcasts k aggregated
pairs.  :class:`FlatModel` provides exactly that interface on top of a
:class:`repro.nn.layers.Sequential` network: getting/setting all weights as
one vector, computing the flat gradient of a minibatch, and evaluating
per-sample losses at arbitrary weight vectors (needed by the sign
estimator, which probes three different weight vectors per round).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Sequential
from repro.nn.losses import Loss, SoftmaxCrossEntropy


class FlatModel:
    """A `Sequential` network plus a loss, exposed through flat vectors.

    Parameters
    ----------
    network:
        The layer stack.  Its parameter arrays are referenced (not copied);
        :meth:`set_weights` writes into them in place.
    loss:
        Loss function; defaults to softmax cross-entropy.
    """

    def __init__(self, network: Sequential, loss: Loss | None = None) -> None:
        self.network = network
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()
        self._param_arrays = network.parameter_arrays()
        self._grad_arrays = network.gradient_arrays()
        if len(self._param_arrays) != len(self._grad_arrays):
            raise ValueError("network has mismatched parameter/gradient lists")
        self._shapes = [p.shape for p in self._param_arrays]
        self._sizes = [p.size for p in self._param_arrays]
        self._offsets = np.concatenate([[0], np.cumsum(self._sizes)])
        self.dimension = int(self._offsets[-1])

    # ------------------------------------------------------------------
    # Weight access
    # ------------------------------------------------------------------
    def parameter_slices(self) -> list[slice]:
        """Flat-vector slice of each parameter array, in layer order.

        Layer-wise sparsifiers (e.g. :class:`repro.sparsify.layerwise.
        LayerwiseTopK`) use these to budget k across layers.
        """
        return [
            slice(int(lo), int(hi))
            for lo, hi in zip(self._offsets[:-1], self._offsets[1:])
        ]

    def get_weights(self) -> np.ndarray:
        """Copy of all parameters as one flat vector of length ``dimension``."""
        return np.concatenate([p.ravel() for p in self._param_arrays])

    def set_weights(self, flat: np.ndarray) -> None:
        """Write ``flat`` into the model parameters in place."""
        flat = np.asarray(flat)
        if flat.shape != (self.dimension,):
            raise ValueError(
                f"expected flat weights of shape ({self.dimension},), got {flat.shape}"
            )
        for arr, lo, hi, shape in zip(
            self._param_arrays, self._offsets[:-1], self._offsets[1:], self._shapes
        ):
            arr[...] = flat[lo:hi].reshape(shape)

    # ------------------------------------------------------------------
    # Gradient / loss evaluation
    # ------------------------------------------------------------------
    def gradient(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Flat gradient of the mean loss on minibatch ``(x, y)``.

        Returns ``(grad, loss_value)`` where ``grad`` has length
        ``dimension`` and ``loss_value`` is the mean minibatch loss at the
        current weights.
        """
        self.network.zero_grad()
        logits = self.network.forward(x)
        loss_value = self.loss.forward(logits, y)
        grad_logits = self.loss.backward(logits, y)
        self.network.backward(grad_logits)
        flat_grad = np.concatenate([g.ravel() for g in self._grad_arrays])
        return flat_grad, loss_value

    def supports_batched_gradients(self) -> bool:
        """Whether :meth:`gradients_batched` can reproduce per-group calls.

        True when every layer processes samples independently and consumes
        no per-call RNG (no training-mode BatchNorm, no active Dropout).
        The whole experiment model zoo qualifies: dense layers run one
        batched gemm per layer, and Conv2D/MaxPool2D run grouped im2col
        passes whose per-group slices are the exact serial calls.
        """
        return self.network.supports_grouped_batch()

    def deterministic_gradients(self) -> bool:
        """Whether :meth:`gradient` is a pure function of (weights, batch).

        False when a layer draws per-call RNG in training mode (active
        Dropout): the gradient then also depends on the layer's RNG
        stream position, so it cannot be reproduced from a model replica
        in another process.  Process-based backends must fall back to
        in-process gradients for such models.
        """
        return not self.network.consumes_forward_rng()

    def gradients_batched(
        self, xs: list[np.ndarray], ys: list[np.ndarray]
    ) -> np.ndarray:
        """Per-group flat gradients in one stacked forward/backward pass.

        ``xs``/``ys`` are per-group minibatches of one common batch size
        (in FL: one minibatch per client, all at the synchronized weights).
        Returns an array of shape ``(groups, dimension)`` whose row ``g``
        equals ``self.gradient(xs[g], ys[g])[0]``, but the network runs a
        single stacked pass: the O(groups) Python loop over clients
        collapses into batched NumPy/BLAS work.  Image minibatches stack
        to ``(groups, batch, C, H, W)`` and flow through the conv/pool
        grouped passes, so CNN configs take this path too.

        The loss gradient is still taken per group (each group's loss is
        the *mean* over its own batch), and parameterized layers reduce
        their parameter gradients per group via
        :meth:`repro.nn.layers.Layer.backward_grouped`.  Raises
        ``ValueError`` when the network contains a layer for which the
        stacked pass is not equivalent (see
        :meth:`supports_batched_gradients`) or batch sizes differ.
        """
        groups = len(xs)
        if groups == 0 or len(ys) != groups:
            raise ValueError("need matching, non-empty xs and ys")
        batch = xs[0].shape[0]
        if any(x.shape[0] != batch for x in xs) or any(
            np.shape(y)[0] != batch for y in ys
        ):
            raise ValueError("all groups must share one batch size")
        if not self.supports_batched_gradients():
            raise ValueError(
                "network contains a layer without grouped-batch support"
            )
        x3 = np.stack(xs)  # (groups, batch, *feature_dims)
        logits3 = self.network.forward_grouped(x3)
        # The loss gradient normalizes by each group's own batch size, so
        # it is taken per group (vectorized when the loss supports it).
        grad3 = self.loss.backward_grouped(logits3, ys)
        _, param_grads = self.network.backward_grouped(grad3)
        flat = np.empty((groups, self.dimension))
        for grads, lo, hi in zip(param_grads, self._offsets[:-1], self._offsets[1:]):
            flat[:, lo:hi] = grads.reshape(groups, hi - lo)
        return flat

    def loss_value(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean loss on ``(x, y)`` at the current weights (no gradients)."""
        was_training = self.network.training
        self.network.train(False)
        logits = self.network.forward(x)
        value = self.loss.forward(logits, y)
        self.network.train(was_training)
        return value

    def per_sample_losses(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Loss of each sample at the current weights, shape ``(batch,)``."""
        was_training = self.network.training
        self.network.train(False)
        logits = self.network.forward(x)
        values = self.loss.per_sample(logits, y)
        self.network.train(was_training)
        return values

    def loss_at(self, weights: np.ndarray, x: np.ndarray, y: np.ndarray) -> float:
        """Mean loss of ``(x, y)`` evaluated at an arbitrary weight vector.

        The current weights are restored afterwards.  Used by the
        derivative-sign estimator, which compares losses at ``w(m-1)``,
        ``w(m)`` and the probe weights ``w'(m)``.
        """
        saved = self.get_weights()
        try:
            self.set_weights(weights)
            return self.loss_value(x, y)
        finally:
            self.set_weights(saved)

    def per_sample_losses_at(
        self, weights: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Per-sample losses at an arbitrary weight vector (weights restored)."""
        saved = self.get_weights()
        try:
            self.set_weights(weights)
            return self.per_sample_losses(x, y)
        finally:
            self.set_weights(saved)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy at the current weights.

        Only meaningful for classification losses exposing ``predict``.
        """
        predict = getattr(self.loss, "predict", None)
        if predict is None:
            raise TypeError("loss does not define hard predictions")
        was_training = self.network.training
        self.network.train(False)
        logits = self.network.forward(x)
        self.network.train(was_training)
        return float((predict(logits) == y).mean())
