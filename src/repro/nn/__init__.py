"""Pure-numpy neural-network substrate.

The paper trains PyTorch CNNs; no deep-learning framework is available in
this environment, so this subpackage provides the minimal-but-complete
substrate the federated-learning simulation needs:

- explicit-backward layers (:mod:`repro.nn.layers`),
- classification/regression losses with per-sample access
  (:mod:`repro.nn.losses`, required by the derivative-sign estimator of
  Section IV-E of the paper),
- seeded weight initializers (:mod:`repro.nn.init`),
- a flat-parameter view of a whole model (:mod:`repro.nn.flat`), which is
  the object gradient sparsifiers operate on, and
- a model zoo (:mod:`repro.nn.models`) mirroring the paper's CNN plus
  cheaper MLP / logistic-regression configurations for laptop-scale runs.
"""

from repro.nn.flat import FlatModel
from repro.nn.init import glorot_uniform, he_normal, normal_init, zeros_init
from repro.nn.layers import (
    BatchNorm1D,
    Conv2D,
    Dropout,
    Flatten,
    Layer,
    Linear,
    MaxPool2D,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import Loss, MSELoss, SoftmaxCrossEntropy
from repro.nn.models import make_cnn, make_logistic, make_mlp
from repro.nn.optim import SGD, constant_lr, cosine_lr, step_decay_lr

__all__ = [
    "BatchNorm1D",
    "Conv2D",
    "Dropout",
    "Flatten",
    "FlatModel",
    "Layer",
    "Linear",
    "Loss",
    "MaxPool2D",
    "MSELoss",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "SoftmaxCrossEntropy",
    "Tanh",
    "constant_lr",
    "cosine_lr",
    "step_decay_lr",
    "glorot_uniform",
    "he_normal",
    "make_cnn",
    "make_logistic",
    "make_mlp",
    "normal_init",
    "zeros_init",
]
