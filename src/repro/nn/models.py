"""Model zoo used by the experiments.

The paper trains a CNN with two convolutional and two dense layers
(architecture of Wang et al. [16], D > 400,000).  We provide that shape
(:func:`make_cnn`) together with cheaper MLP and logistic-regression
configurations whose flat dimension D is in the 10k–120k range, which keeps
the full experiment sweeps laptop-scale while exercising identical
sparsification code paths (see DESIGN.md §2).
"""

from __future__ import annotations

import numpy as np

from repro.nn.flat import FlatModel
from repro.nn.layers import (
    Conv2D,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.nn.losses import SoftmaxCrossEntropy


def make_mlp(
    input_dim: int,
    num_classes: int,
    hidden: tuple[int, ...] = (64,),
    seed: int = 0,
) -> FlatModel:
    """Multilayer perceptron with ReLU activations.

    With the defaults and FEMNIST-like inputs (784 features, 62 classes)
    the flat dimension is ~54k, comparable in order of magnitude to the
    paper's setup while fast enough for hundreds of simulated rounds.
    """
    rng = np.random.default_rng(seed)
    layers = []
    prev = input_dim
    for width in hidden:
        layers.append(Linear(prev, width, rng))
        layers.append(ReLU())
        prev = width
    layers.append(Linear(prev, num_classes, rng))
    return FlatModel(Sequential(layers), SoftmaxCrossEntropy())


def make_logistic(input_dim: int, num_classes: int, seed: int = 0) -> FlatModel:
    """Multinomial logistic regression — the smallest useful model.

    Handy for fast unit tests: D = input_dim*classes + classes.
    """
    rng = np.random.default_rng(seed)
    network = Sequential([Linear(input_dim, num_classes, rng)])
    return FlatModel(network, SoftmaxCrossEntropy())


def make_cnn(
    image_size: int,
    channels: int,
    num_classes: int,
    conv_channels: tuple[int, int] = (8, 16),
    dense_width: int = 64,
    seed: int = 0,
) -> FlatModel:
    """CNN mirroring the paper's architecture: conv-pool-conv-pool-dense-dense.

    ``image_size`` must be divisible by 4 (two 2x2 poolings).  With
    ``image_size=28, channels=1`` and the default widths the flat dimension
    is ~53k.  Larger ``conv_channels``/``dense_width`` reach the paper's
    D > 400k if desired.
    """
    if image_size % 4:
        raise ValueError("image_size must be divisible by 4 for two 2x2 poolings")
    rng = np.random.default_rng(seed)
    c1, c2 = conv_channels
    final_spatial = image_size // 4
    network = Sequential(
        [
            Conv2D(channels, c1, kernel_size=3, rng=rng, padding=1),
            ReLU(),
            MaxPool2D(2),
            Conv2D(c1, c2, kernel_size=3, rng=rng, padding=1),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Linear(c2 * final_spatial * final_spatial, dense_width, rng),
            ReLU(),
            Linear(dense_width, num_classes, rng),
        ]
    )
    return FlatModel(network, SoftmaxCrossEntropy())
