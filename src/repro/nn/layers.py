"""Neural-network layers with explicit forward/backward passes.

Each layer owns its parameters as a list of numpy arrays (``params``) and
produces gradients of identical shapes (``grads``) during ``backward``.
The federated-learning code never touches layers directly — it sees the
flat parameter/gradient vectors exposed by :class:`repro.nn.flat.FlatModel`
— but the layers are public API so users can assemble custom models.

Design notes
------------
- Everything is float64.  Gradient sparsification selects elements by
  absolute magnitude; float64 avoids spurious ties that float32 rounding
  would introduce in tests.
- ``forward`` stores whatever the matching ``backward`` needs on ``self``.
  A layer instance therefore processes one batch at a time, which matches
  the synchronous FL simulation (one client's minibatch per call).
- Convolution is batched-gemm on *both* execution paths: the serial
  forward/backward and the grouped multi-client pass each expand inputs
  with im2col and run one (batched) matrix multiplication, and the input
  gradient comes back through the same vectorized ``_col2im`` scatter-add
  — per-sample contribution order is identical in every path, so serial
  and grouped convolutions are bit-identical, not merely close.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.nn.init import glorot_uniform, he_normal, zeros_init


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward` and expose
    parameters via ``params`` / gradients via ``grads`` (parallel lists of
    arrays, possibly empty for stateless layers).
    """

    def __init__(self) -> None:
        self.params: list[np.ndarray] = []
        self.grads: list[np.ndarray] = []
        self.training = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_out`` (dLoss/dOutput) and return dLoss/dInput.

        Side effect: fills ``self.grads`` with dLoss/dParam for each entry
        of ``self.params``.
        """
        raise NotImplementedError

    def zero_grad(self) -> None:
        for g in self.grads:
            g.fill(0.0)

    def train(self, mode: bool = True) -> None:
        self.training = mode

    # ------------------------------------------------------------------
    # Grouped (multi-client) batched execution support
    #
    # A grouped pass carries a stack of G independent minibatches with a
    # leading group axis: inputs have shape (G, batch, *feature_dims).
    # Linear algebra runs through np.matmul's batched-gemm path, whose
    # per-slice calls have exactly the shapes and strides of the serial
    # per-group calls — so results are bit-identical, not merely close.
    # Layers that mix samples across a batch (training-mode BatchNorm) or
    # consume RNG per forward call (active Dropout) cannot claim support.
    # ------------------------------------------------------------------
    def supports_grouped_batch(self) -> bool:
        """Whether this layer implements the grouped (G, batch, ...) pass
        with results identical to running each group separately."""
        return False

    def consumes_forward_rng(self) -> bool:
        """Whether a training-mode forward draws from a per-layer RNG.

        Such layers (active Dropout) make the gradient a function of the
        layer's RNG *stream position*, not just (weights, batch) — so
        execution backends that replicate the model into worker processes
        (sharded) must fall back to in-process gradients to keep the
        single stream's draw order, exactly like grouped execution does.
        """
        return False

    def forward_grouped(self, x: np.ndarray) -> np.ndarray:
        """Forward for a grouped input of shape ``(G, batch, *dims)``."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support grouped execution"
        )

    def backward_grouped(
        self, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Grouped backward; returns ``(grad_in, per_group_param_grads)``.

        The second item holds one array per entry of ``params``, each with
        a leading group axis; it is empty for parameter-free layers.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support grouped execution"
        )


class Linear(Layer):
    """Fully-connected layer: ``y = x @ W + b`` with W of shape (in, out)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        weight_init=glorot_uniform,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        w = weight_init((in_features, out_features), rng)
        b = zeros_init((out_features,), rng)
        self.params = [w, b]
        self.grads = [np.zeros_like(w), np.zeros_like(b)]
        self._x: np.ndarray | None = None
        self._x3: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expected input of shape (batch, {self.in_features}), "
                f"got {x.shape}"
            )
        self._x = x
        w, b = self.params
        return x @ w + b

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        x = self._x
        w, _ = self.params
        self.grads[0][...] = x.T @ grad_out
        self.grads[1][...] = grad_out.sum(axis=0)
        return grad_out @ w.T

    def supports_grouped_batch(self) -> bool:
        return True

    def forward_grouped(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[2] != self.in_features:
            raise ValueError(
                f"grouped Linear expected (groups, batch, {self.in_features}), "
                f"got {x.shape}"
            )
        self._x3 = x
        w, b = self.params
        return np.matmul(x, w) + b

    def backward_grouped(
        self, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        if self._x3 is None:
            raise RuntimeError("grouped backward called before forward")
        x3 = self._x3
        w, _ = self.params
        # Batched x_g.T @ g_g / g_g @ w.T — per group the identical dgemm
        # calls the serial path makes, so results are bit-exact.
        grad_w = np.matmul(x3.transpose(0, 2, 1), grad_out)
        grad_b = grad_out.sum(axis=1)
        return np.matmul(grad_out, w.T), [grad_w, grad_b]


class _ElementwiseLayer(Layer):
    """Base for parameter-free per-element layers.

    Their forward/backward are shape-agnostic, so the grouped pass simply
    reuses them on the (G, batch, *dims) stack.
    """

    def supports_grouped_batch(self) -> bool:
        return True

    def forward_grouped(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def backward_grouped(
        self, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        return self.backward(grad_out), []


class ReLU(_ElementwiseLayer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class Tanh(_ElementwiseLayer):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._y**2)


class Sigmoid(_ElementwiseLayer):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Numerically stable piecewise evaluation.
        out = np.empty_like(x, dtype=np.float64)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        ex = np.exp(x[~positive])
        out[~positive] = ex / (1.0 + ex)
        self._y = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._y * (1.0 - self._y)


class BatchNorm1D(Layer):
    """Batch normalization over feature axis 1 of a 2-D input.

    Training mode normalizes with batch statistics and updates running
    estimates; evaluation mode uses the running estimates.  Known caveat
    in federated settings: batch statistics computed on non-i.i.d. client
    minibatches differ across clients, so models containing BatchNorm
    lose the exact weight-synchronization property of Algorithm 1 (the
    running buffers are local state).  Provided for completeness of the
    substrate; the paper's experiments do not use it.
    """

    def __init__(self, num_features: int, momentum: float = 0.1,
                 eps: float = 1e-5) -> None:
        super().__init__()
        if num_features < 1:
            raise ValueError("num_features must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        gamma = np.ones(num_features)
        beta = np.zeros(num_features)
        self.params = [gamma, beta]
        self.grads = [np.zeros_like(gamma), np.zeros_like(beta)]
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1D expected (batch, {self.num_features}), got {x.shape}"
            )
        gamma, beta = self.params
        if self.training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        std = np.sqrt(var + self.eps)
        x_hat = (x - mean) / std
        self._cache = (x_hat, std)
        return gamma * x_hat + beta

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, std = self._cache
        gamma, _ = self.params
        self.grads[0][...] = (grad_out * x_hat).sum(axis=0)
        self.grads[1][...] = grad_out.sum(axis=0)
        if not self.training:
            return grad_out * gamma / std
        grad_xhat = grad_out * gamma
        return (
            grad_xhat
            - grad_xhat.mean(axis=0)
            - x_hat * (grad_xhat * x_hat).mean(axis=0)
        ) / std


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)

    def supports_grouped_batch(self) -> bool:
        return True

    def forward_grouped(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward_grouped(
        self, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        if self._shape is None:
            raise RuntimeError("grouped backward called before forward")
        return grad_out.reshape(self._shape), []


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time.

    The dropout mask is drawn from the layer's own generator, seeded at
    construction, so training runs are reproducible.
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask

    def supports_grouped_batch(self) -> bool:
        # An active mask is drawn per forward call, so a single grouped
        # forward consumes the RNG differently than per-group forwards.
        return self.rate == 0.0

    def consumes_forward_rng(self) -> bool:
        return self.rate > 0.0

    def forward_grouped(self, x: np.ndarray) -> np.ndarray:
        self._mask = None
        return x

    def backward_grouped(
        self, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        return grad_out, []


class Conv2D(Layer):
    """2-D convolution (NCHW) via im2col, stride 1, symmetric zero padding."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        padding: int = 0,
        weight_init=he_normal,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.padding = padding
        w = weight_init((out_channels, in_channels, kernel_size, kernel_size), rng)
        b = zeros_init((out_channels,), rng)
        self.params = [w, b]
        self.grads = [np.zeros_like(w), np.zeros_like(b)]
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None
        self._cols3: np.ndarray | None = None
        self._gx_shape: tuple[int, ...] | None = None

    def _output_hw(self, h: int, w_in: int) -> tuple[int, int]:
        k, p = self.kernel_size, self.padding
        h_out = h + 2 * p - k + 1
        w_out = w_in + 2 * p - k + 1
        if h_out <= 0 or w_out <= 0:
            raise ValueError(
                f"kernel {k} with padding {p} too large for input {h}x{w_in}"
            )
        return h_out, w_out

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expected (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        n, _, h, w_in = x.shape
        h_out, w_out = self._output_hw(h, w_in)
        cols = _im2col(x, self.kernel_size, self.padding)  # (n*h_out*w_out, c*k*k)
        # Cache for backward only while training: evaluation forwards run
        # over whole eval pools, and pinning a pool-sized im2col buffer
        # until the next forward would dwarf any minibatch-sized leak.
        self._cols = cols if self.training else None
        self._x_shape = x.shape
        self._cols3 = None  # invalidate any stale grouped cache
        w_mat = self.params[0].reshape(self.out_channels, -1)  # (out, c*k*k)
        out = cols @ w_mat.T + self.params[1]
        return out.reshape(n, h_out, w_out, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w_in = self._x_shape
        k, p = self.kernel_size, self.padding
        # (n, out, h_out, w_out) -> (n*h_out*w_out, out)
        g = grad_out.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        self.grads[0][...] = (g.T @ self._cols).reshape(self.params[0].shape)
        self.grads[1][...] = g.sum(axis=0)
        w_mat = self.params[0].reshape(self.out_channels, -1)
        grad_cols = g @ w_mat  # (n*h_out*w_out, c*k*k)
        # Drop the im2col buffer: it holds n·H·W·C·k² floats, and keeping
        # it would pin that much memory per client between rounds.
        self._cols = None
        return _col2im(grad_cols, (n, c, h, w_in), k, p)

    def supports_grouped_batch(self) -> bool:
        return True

    def forward_grouped(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 5 or x.shape[2] != self.in_channels:
            raise ValueError(
                f"grouped Conv2D expected (groups, batch, {self.in_channels}, "
                f"H, W), got {x.shape}"
            )
        groups, n, c, h, w_in = x.shape
        h_out, w_out = self._output_hw(h, w_in)
        # im2col is per-sample work, so the group axis folds into the
        # batch; the gemm below must NOT fold it (see comment there).
        cols = _im2col(
            x.reshape(groups * n, c, h, w_in), self.kernel_size, self.padding
        )
        cols3 = cols.reshape(groups, n * h_out * w_out, -1)
        self._cols3 = cols3 if self.training else None
        self._gx_shape = x.shape
        self._cols = None  # invalidate any stale serial cache
        w_mat = self.params[0].reshape(self.out_channels, -1)
        # One batched gemm whose per-group slices have exactly the serial
        # forward's operand shapes — (n*h_out*w_out, c*k*k) @ (c*k*k, out)
        # — so each group's output is bit-identical to its serial call.
        out = np.matmul(cols3, w_mat.T) + self.params[1]
        return out.reshape(
            groups, n, h_out, w_out, self.out_channels
        ).transpose(0, 1, 4, 2, 3)

    def backward_grouped(
        self, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        if self._cols3 is None or self._gx_shape is None:
            raise RuntimeError("grouped backward called before forward")
        groups, n, c, h, w_in = self._gx_shape
        h_out, w_out = self._output_hw(h, w_in)
        cols3 = self._cols3
        # (groups, n, out, h_out, w_out) -> (groups, n*h_out*w_out, out),
        # per group the identical reshape the serial backward performs.
        g3 = grad_out.transpose(0, 1, 3, 4, 2).reshape(
            groups, -1, self.out_channels
        )
        grad_w = np.matmul(g3.transpose(0, 2, 1), cols3).reshape(
            (groups,) + self.params[0].shape
        )
        grad_b = g3.sum(axis=1)
        w_mat = self.params[0].reshape(self.out_channels, -1)
        grad_cols = np.matmul(g3, w_mat)  # (groups, n*h_out*w_out, c*k*k)
        self._cols3 = None
        grad_x = _col2im(
            grad_cols.reshape(groups * n * h_out * w_out, -1),
            (groups * n, c, h, w_in),
            self.kernel_size,
            self.padding,
        )
        return grad_x.reshape(self._gx_shape), [grad_w, grad_b]


class MaxPool2D(Layer):
    """Non-overlapping max pooling (NCHW); input H, W must be divisible."""

    def __init__(self, pool_size: int) -> None:
        super().__init__()
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.pool_size = pool_size
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.pool_size
        if h % s or w % s:
            raise ValueError(f"input {h}x{w} not divisible by pool size {s}")
        xr = x.reshape(n, c, h // s, s, w // s, s).transpose(0, 1, 2, 4, 3, 5)
        xr = xr.reshape(n, c, h // s, w // s, s * s)
        # argmax is only needed for backward; skip it (and don't pin an
        # output-sized int buffer) on evaluation forwards over eval pools.
        self._argmax = xr.argmax(axis=-1) if self.training else None
        self._x_shape = x.shape
        return xr.max(axis=-1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        s = self.pool_size
        grad_windows = np.zeros((n, c, h // s, w // s, s * s))
        np.put_along_axis(
            grad_windows, self._argmax[..., None], grad_out[..., None], axis=-1
        )
        grad = grad_windows.reshape(n, c, h // s, w // s, s, s)
        grad = grad.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)
        return grad

    def supports_grouped_batch(self) -> bool:
        return True

    def forward_grouped(self, x: np.ndarray) -> np.ndarray:
        # Pooling reduces each window independently, so the group axis
        # simply folds into the batch: every per-window max/argmax is the
        # exact operation the per-group forward performs.
        if x.ndim != 5:
            raise ValueError(
                f"grouped MaxPool2D expected (groups, batch, C, H, W), got {x.shape}"
            )
        groups, n = x.shape[:2]
        out = self.forward(x.reshape((groups * n,) + x.shape[2:]))
        return out.reshape((groups, n) + out.shape[1:])

    def backward_grouped(
        self, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        groups, n = grad_out.shape[:2]
        grad = self.backward(
            grad_out.reshape((groups * n,) + grad_out.shape[2:])
        )
        return grad.reshape((groups, n) + grad.shape[1:]), []


class Sequential(Layer):
    """Container applying layers in order; owns no parameters itself."""

    def __init__(self, layers: list[Layer]) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def train(self, mode: bool = True) -> None:
        self.training = mode
        for layer in self.layers:
            layer.train(mode)

    def supports_grouped_batch(self) -> bool:
        return all(layer.supports_grouped_batch() for layer in self.layers)

    def consumes_forward_rng(self) -> bool:
        return any(layer.consumes_forward_rng() for layer in self.layers)

    def forward_grouped(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward_grouped(x)
        return x

    def backward_grouped(
        self, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Grouped backward; parameter gradients come back in layer order."""
        per_layer: list[list[np.ndarray]] = []
        for layer in reversed(self.layers):
            grad_out, param_grads = layer.backward_grouped(grad_out)
            per_layer.append(param_grads)
        per_layer.reverse()
        return grad_out, [g for grads in per_layer for g in grads]

    def parameter_arrays(self) -> list[np.ndarray]:
        """All parameter arrays, in deterministic layer order."""
        return [p for layer in self.layers for p in layer.params]

    def gradient_arrays(self) -> list[np.ndarray]:
        """All gradient arrays, parallel to :meth:`parameter_arrays`."""
        return [g for layer in self.layers for g in layer.grads]


def _im2col(x: np.ndarray, kernel: int, padding: int) -> np.ndarray:
    """Expand sliding windows of ``x`` into rows.

    Returns an array of shape ``(n * h_out * w_out, c * kernel * kernel)``.
    """
    n, c, h, w = x.shape
    if padding:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    h_out = h + 2 * padding - kernel + 1
    w_out = w + 2 * padding - kernel + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
    # windows: (n, c, h_out, w_out, kernel, kernel)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * h_out * w_out, -1)
    return np.ascontiguousarray(cols)


@lru_cache(maxsize=64)
def _col2im_taps(
    c: int, hp: int, wp: int, h_out: int, w_out: int, kernel: int
) -> np.ndarray:
    """Flat within-sample target offsets for every im2col column entry.

    Entry order matches the C-order traversal of the im2col layout
    ``(h_out, w_out, c, ki, kj)``; offsets index the flattened padded
    input ``(c, hp, wp)``.  Cached because the pattern depends only on
    the geometry, not the data.
    """
    i = np.arange(h_out)
    j = np.arange(w_out)
    tap = np.arange(kernel)
    rows = i[:, None] + tap[None, :]  # (h_out, kernel)
    cols = j[:, None] + tap[None, :]  # (w_out, kernel)
    chan = np.arange(c) * (hp * wp)
    offsets = (
        chan[None, None, :, None, None]
        + rows[:, None, None, :, None] * wp
        + cols[None, :, None, None, :]
    )
    return offsets.ravel()


def _col2im(
    cols: np.ndarray, x_shape: tuple[int, ...], kernel: int, padding: int
) -> np.ndarray:
    """Inverse of :func:`_im2col`: scatter-add window gradients back.

    Vectorized: one ``np.bincount`` accumulates every (window, tap)
    contribution instead of a Python loop over the k² kernel offsets.
    ``bincount`` adds weights in input order and each sample's entries
    keep the same fixed traversal order regardless of how many samples
    share the batch, so grouped callers that fold their group axis into
    the batch get bit-identical per-sample gradients.
    """
    n, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    h_out = hp - kernel + 1
    w_out = wp - kernel + 1
    taps = _col2im_taps(c, hp, wp, h_out, w_out, kernel)
    sample_size = c * hp * wp
    flat_indices = (
        np.arange(n, dtype=np.int64)[:, None] * sample_size + taps[None, :]
    ).ravel()
    acc = np.bincount(
        flat_indices, weights=cols.ravel(), minlength=n * sample_size
    )
    x_padded = acc.reshape(n, c, hp, wp)
    if padding:
        return x_padded[:, :, padding:-padding, padding:-padding]
    return x_padded
