"""Optimizers and learning-rate schedules for the flat-parameter models.

The paper trains with plain SGD (η = 0.01).  This module adds the
standard variants an adopter would expect — momentum, Nesterov momentum,
and learning-rate schedules — all operating on the flat weight vector so
they compose with the sparse updates of Algorithm 1 (the trainer applies
``optimizer.step(weights, update)`` where ``update`` is the aggregated
sparse gradient densified).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

LRSchedule = Callable[[int], float]


def constant_lr(lr: float) -> LRSchedule:
    """Constant learning rate (the paper's setting)."""
    if lr <= 0:
        raise ValueError("learning rate must be positive")
    return lambda step: lr


def step_decay_lr(lr: float, decay: float, every: int) -> LRSchedule:
    """Multiply the rate by ``decay`` every ``every`` steps."""
    if lr <= 0 or not 0 < decay <= 1 or every < 1:
        raise ValueError("need lr > 0, 0 < decay <= 1, every >= 1")
    return lambda step: lr * decay ** (step // every)


def cosine_lr(lr: float, total_steps: int, floor: float = 0.0) -> LRSchedule:
    """Cosine annealing from ``lr`` to ``floor`` over ``total_steps``."""
    if lr <= 0 or total_steps < 1 or floor < 0:
        raise ValueError("need lr > 0, total_steps >= 1, floor >= 0")

    def schedule(step: int) -> float:
        t = min(step, total_steps) / total_steps
        return floor + 0.5 * (lr - floor) * (1.0 + math.cos(math.pi * t))

    return schedule


class SGD:
    """Stochastic gradient descent on a flat weight vector.

    ``momentum`` > 0 enables heavy-ball momentum; ``nesterov`` switches to
    Nesterov's accelerated variant.  The optimizer is stateful (velocity
    buffer) and counts its own steps for the schedule.
    """

    def __init__(
        self,
        lr: float | LRSchedule = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0.0:
            raise ValueError("weight_decay cannot be negative")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov requires momentum > 0")
        self.schedule = lr if callable(lr) else constant_lr(lr)
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        self._velocity: np.ndarray | None = None
        self._step = 0

    @property
    def step_count(self) -> int:
        return self._step

    def current_lr(self) -> float:
        return self.schedule(self._step)

    def step(self, weights: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """Return updated weights; does not mutate the inputs."""
        if weights.shape != gradient.shape:
            raise ValueError("weights and gradient shapes differ")
        grad = gradient
        if self.weight_decay:
            grad = grad + self.weight_decay * weights
        lr = self.schedule(self._step)
        if self.momentum > 0.0:
            if self._velocity is None:
                self._velocity = np.zeros_like(weights)
            self._velocity = self.momentum * self._velocity + grad
            if self.nesterov:
                direction = grad + self.momentum * self._velocity
            else:
                direction = self._velocity
        else:
            direction = grad
        self._step += 1
        return weights - lr * direction

    def reset(self) -> None:
        """Clear momentum state and the step counter."""
        self._velocity = None
        self._step = 0
