"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so that
every model in the repository is reproducible from a single seed.  The
federated-learning experiments rely on this: all clients must start from an
identical ``w(0)`` (Algorithm 1, line 1 of the paper).
"""

from __future__ import annotations

import numpy as np


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization.

    Suitable for tanh/linear layers.  ``fan_in`` and ``fan_out`` are taken
    from the first two axes for dense weights and from the full receptive
    field for convolution kernels shaped ``(out, in, kh, kw)``.
    """
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal initialization, suited to ReLU activations."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def normal_init(
    shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.01
) -> np.ndarray:
    """Plain Gaussian initialization with a fixed standard deviation."""
    return rng.normal(0.0, std, size=shape)


def zeros_init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zeros initialization (biases)."""
    del rng  # deterministic; accepted for interface uniformity
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional weight shapes."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        # Dense weight of shape (in, out).
        return shape[0], shape[1]
    if len(shape) == 4:
        # Convolution kernel of shape (out_channels, in_channels, kh, kw).
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape for fan computation: {shape}")
