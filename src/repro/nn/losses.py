"""Loss functions with per-sample access.

The derivative-sign estimator in Section IV-E of the paper evaluates the
loss of a *single* sample ``h`` at three different weight vectors, so every
loss here exposes both the batch-mean value (used for training) and the
per-sample vector (used by the estimator and by fine-grained metrics).
"""

from __future__ import annotations

import numpy as np


class Loss:
    """Interface: batch-mean forward plus gradient, per-sample values."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss over the batch."""
        return float(self.per_sample(predictions, targets).mean())

    def per_sample(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Loss of each sample in the batch, shape ``(batch,)``."""
        raise NotImplementedError

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the *mean* loss w.r.t. ``predictions``."""
        raise NotImplementedError

    def backward_grouped(self, predictions: np.ndarray, targets) -> np.ndarray:
        """Per-group :meth:`backward` for stacked predictions.

        ``predictions`` has shape ``(groups, batch, ...)`` and
        ``targets[g]`` is group g's target array; each group's gradient is
        normalized by its own batch size, exactly as the per-group calls
        would be.  Subclasses may override with a vectorized computation
        as long as results stay bit-identical to this loop.
        """
        return np.stack(
            [self.backward(predictions[g], targets[g])
             for g in range(predictions.shape[0])]
        )


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy on integer class labels.

    ``predictions`` are raw logits of shape ``(batch, classes)``; ``targets``
    are integer labels of shape ``(batch,)``.
    """

    def per_sample(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        log_probs = _log_softmax(predictions)
        batch = np.arange(predictions.shape[0])
        return -log_probs[batch, targets.astype(np.intp)]

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        probs = _softmax(predictions)
        batch = np.arange(predictions.shape[0])
        grad = probs
        grad[batch, targets.astype(np.intp)] -= 1.0
        return grad / predictions.shape[0]

    def backward_grouped(self, predictions: np.ndarray, targets) -> np.ndarray:
        probs = _softmax(predictions)
        groups, batch = predictions.shape[0], predictions.shape[1]
        labels = np.asarray(targets).astype(np.intp)
        grad = probs
        grad[np.arange(groups)[:, None], np.arange(batch)[None, :], labels] -= 1.0
        return grad / batch

    def predict(self, predictions: np.ndarray) -> np.ndarray:
        """Hard class decisions from logits."""
        return predictions.argmax(axis=1)


class MSELoss(Loss):
    """Mean squared error; ``targets`` has the same shape as ``predictions``."""

    def per_sample(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        diff = predictions - targets
        return 0.5 * (diff * diff).reshape(diff.shape[0], -1).sum(axis=1)

    def backward(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return (predictions - targets) / predictions.shape[0]

    def backward_grouped(self, predictions: np.ndarray, targets) -> np.ndarray:
        return (predictions - np.asarray(targets)) / predictions.shape[1]


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)
