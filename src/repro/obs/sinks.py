"""Telemetry sinks: the append-only JSONL file and in-memory aggregator.

The JSONL sink writes one complete line per event in append mode, so
several processes (e.g. sweep workers tracing into the same file) each
append whole records without interleaving; POSIX ``O_APPEND`` semantics
make single-``write`` line appends safe.
"""

from __future__ import annotations

import json
import pathlib


def _jsonable(obj):
    """Coerce numpy scalars (and other ``.item()`` carriers) to plain JSON."""
    item = getattr(obj, "item", None)
    if callable(item):
        return obj.item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def encode_event(record: dict) -> str:
    """One event as a compact, key-sorted JSON line (no trailing newline).

    ``allow_nan=False`` is a backstop: emitters are responsible for
    coercing non-finite floats (the engine ships them as ``loss: null``
    plus a ``loss_nonfinite`` marker), and any NaN/inf that slips
    through raises here instead of writing the non-standard
    ``NaN``/``Infinity`` tokens that break strict JSONL consumers.
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":"),
                      default=_jsonable, allow_nan=False)


class JsonlSink:
    """Append-only JSON-lines event file."""

    def __init__(self, path: str | pathlib.Path):
        self.path = pathlib.Path(path)
        if self.path.parent != pathlib.Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")

    def write(self, record: dict) -> None:
        self._file.write(encode_event(record) + "\n")

    def flush(self) -> None:
        if not self._file.closed:
            self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class MemoryAggregator:
    """Running rollup of the event stream (no per-event storage).

    Keeps totals only — event counts by type, span/phase wall-clock,
    traffic, and drop/recovery tallies — so tracing a long run costs
    O(1) memory on top of the JSONL file.
    """

    def __init__(self):
        self.event_counts: dict[str, int] = {}
        self.span_seconds: dict[str, float] = {}
        self.phase_seconds: dict[str, float] = {}
        self.rounds = 0
        self.uplink_elements = 0
        self.downlink_elements = 0
        self.uplink_bytes = 0
        self.downlink_bytes = 0
        self.wall_seconds = 0.0
        self.dropped_uploads = 0
        self.recovered_clients = 0
        self.counters: dict[str, float] = {}
        # flagged rollup: detector -> events seen, client -> times flagged.
        self.flagged_by_detector: dict[str, int] = {}
        self.flags_by_client: dict[int, int] = {}
        # per-process span rollup (parent vs worker-N attribution).
        self.process_spans: dict[str, dict[str, float]] = {}
        # alert rollup: detector -> count, plus the first few records so
        # the report can show *what* fired without per-event storage.
        self.alerts_by_detector: dict[str, int] = {}
        self.first_alerts: list[dict] = []

    def add(self, record: dict) -> None:
        kind = record["type"]
        self.event_counts[kind] = self.event_counts.get(kind, 0) + 1
        if kind == "round":
            self.rounds += 1
            for phase, seconds in record["phases"].items():
                self.phase_seconds[phase] = (
                    self.phase_seconds.get(phase, 0.0) + seconds
                )
            self.uplink_elements += record["uplink_elements"]
            self.downlink_elements += record["downlink_elements"]
            self.uplink_bytes += record["uplink_bytes"]
            self.downlink_bytes += record["downlink_bytes"]
            self.wall_seconds += record["wall_seconds"]
        elif kind == "span":
            name = record["name"]
            self.span_seconds[name] = (
                self.span_seconds.get(name, 0.0) + record["seconds"]
            )
            process = record.get("process", "parent")
            per = self.process_spans.setdefault(process, {})
            per[name] = per.get(name, 0.0) + record["seconds"]
        elif kind == "flagged":
            detector = record["detector"]
            self.flagged_by_detector[detector] = (
                self.flagged_by_detector.get(detector, 0) + 1
            )
            for cid in record["client_ids"]:
                cid = int(cid)
                self.flags_by_client[cid] = self.flags_by_client.get(cid, 0) + 1
        elif kind == "alert":
            detector = record["detector"]
            self.alerts_by_detector[detector] = (
                self.alerts_by_detector.get(detector, 0) + 1
            )
            if len(self.first_alerts) < 20:
                self.first_alerts.append({
                    "round": record["round"],
                    "detector": detector,
                    "severity": record["severity"],
                    "message": record["message"],
                })
        elif kind == "drop":
            self.dropped_uploads += len(record["client_ids"])
        elif kind == "recovery":
            self.recovered_clients += len(record["client_ids"])
        elif kind == "counters":
            for name, value in record["counters"].items():
                self.counters[name] = self.counters.get(name, 0) + value

    def summary(self) -> dict:
        return {
            "events": dict(sorted(self.event_counts.items())),
            "rounds": self.rounds,
            "phases": sorted(self.phase_seconds),
            "phase_seconds": {k: self.phase_seconds[k]
                              for k in sorted(self.phase_seconds)},
            "wall_seconds": self.wall_seconds,
            "uplink_elements": self.uplink_elements,
            "downlink_elements": self.downlink_elements,
            "uplink_bytes": self.uplink_bytes,
            "downlink_bytes": self.downlink_bytes,
            "dropped_uploads": self.dropped_uploads,
            "recovered_clients": self.recovered_clients,
            "span_seconds": {k: self.span_seconds[k]
                             for k in sorted(self.span_seconds)},
            "span_seconds_by_process": {
                process: {name: per[name] for name in sorted(per)}
                for process, per in sorted(self.process_spans.items())
            },
            "flagged": {
                "events": sum(self.flagged_by_detector.values()),
                "by_detector": dict(sorted(self.flagged_by_detector.items())),
                "top_clients": self.top_flagged_clients(),
            },
            "alerts": {
                "total": sum(self.alerts_by_detector.values()),
                "by_detector": dict(sorted(self.alerts_by_detector.items())),
                "first": list(self.first_alerts),
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def top_flagged_clients(self, limit: int = 10) -> list[list[int]]:
        """``[client_id, times_flagged]`` pairs, worst offenders first."""
        ranked = sorted(self.flags_by_client.items(),
                        key=lambda item: (-item[1], item[0]))
        return [[cid, count] for cid, count in ranked[:limit]]
