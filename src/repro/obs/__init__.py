"""Zero-overhead-when-disabled telemetry: tracing, counters, profiling.

The facade is :class:`Telemetry` / :class:`NullTelemetry`; instrumented
code holds a reference (defaulting to :data:`NULL_TELEMETRY`) and checks
``telemetry.enabled`` before doing any work, so disabled runs pay one
attribute read per site.  Events are schema-validated (:mod:`.events`),
stream to an append-only JSONL file (:mod:`.sinks`), and roll up through
``python -m repro.cli trace-report`` (:mod:`.report`).

Invariant: telemetry consumes no RNG and touches no numeric training
state — enabled and disabled runs are bit-identical on every backend.
"""

from .events import ENGINE_PHASES, EVENT_TYPES, validate_event
from .health import HealthConfig, HealthMonitor, robust_zscore, scan_trace
from .log import configure_cli_logging, get_logger
from .report import format_trace_report, summarize_trace
from .sinks import JsonlSink, MemoryAggregator, encode_event
from .telemetry import (
    NULL_TELEMETRY,
    SPARSE_ELEMENT_BYTES,
    NullTelemetry,
    Telemetry,
    WorkerTelemetry,
    open_telemetry,
)

__all__ = [
    "ENGINE_PHASES",
    "EVENT_TYPES",
    "HealthConfig",
    "HealthMonitor",
    "JsonlSink",
    "MemoryAggregator",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "SPARSE_ELEMENT_BYTES",
    "Telemetry",
    "WorkerTelemetry",
    "configure_cli_logging",
    "encode_event",
    "format_trace_report",
    "get_logger",
    "open_telemetry",
    "robust_zscore",
    "scan_trace",
    "summarize_trace",
    "validate_event",
]
