"""Package-level logging helpers.

``repro`` installs a ``NullHandler`` on import (library best practice);
CLI entry points call :func:`configure_cli_logging` to attach a stderr
handler, with ``--verbose`` flipping the level to DEBUG.
"""

from __future__ import annotations

import logging

_ROOT = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` logger, or a ``repro.<name>`` child."""
    return logging.getLogger(_ROOT if not name else f"{_ROOT}.{name}")


def configure_cli_logging(verbose: bool = False) -> logging.Logger:
    """Attach one stream handler to the package logger (idempotent)."""
    logger = logging.getLogger(_ROOT)
    logger.setLevel(logging.DEBUG if verbose else logging.INFO)
    if not any(getattr(h, "_repro_cli", False) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        handler._repro_cli = True
        logger.addHandler(handler)
    return logger
