"""Run-health monitor: pure streaming detectors over the event stream.

:class:`HealthMonitor` watches the same schema-validated records that go
to the sink and raises ``alert`` events when a run looks unhealthy:

* **divergence** — a round loss is non-finite (NaN/inf) or exploded far
  above the best loss seen so far;
* **drop_rate** — the cumulative share of dropped uploads crossed a
  threshold;
* **flagged_accumulation** — one client keeps getting flagged by the
  robust aggregators (a persistent-attacker signature);
* **stall** — one engine phase's wall-clock is a far outlier against its
  own history, by a robust (median/MAD) z-score.

Every detector is pure streaming arithmetic over values the run already
emitted — no RNG, no numeric training state, O(1) memory apart from the
bounded per-phase windows — so the monitor rides the telemetry invariant
unchanged.  Detectors latch: each (detector, subject) pair alerts once
per run, so a sick run produces a handful of alerts, not thousands.

Post-hoc use (``trace-report``) replays a JSONL trace through
:func:`scan_trace`; live use hands a monitor to
:class:`~repro.obs.telemetry.Telemetry`, which re-emits raised alerts
into the stream as schema-registered ``alert`` events.  Note the stall
detector reads wall-clock phase times, so live alerts are inherently
host-dependent; runs that must be byte-compared should scan post-hoc.
"""

from __future__ import annotations

import json
import math
import pathlib
from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class HealthConfig:
    """Detector thresholds; defaults are deliberately conservative."""

    #: Loss counts as diverged when above ``divergence_factor * best``
    #: (after ``divergence_min_rounds`` finite losses have been seen).
    divergence_factor: float = 50.0
    divergence_min_rounds: int = 3
    #: Alert when cumulative dropped / (participants + dropped) crosses
    #: this share, after ``drop_min_rounds`` rounds.
    drop_rate_threshold: float = 0.5
    drop_min_rounds: int = 5
    #: Alert when one client has been flagged this many times.
    flag_threshold: int = 3
    #: Stall: per-phase robust z-score ``(x - median) / (1.4826 * MAD)``
    #: over a bounded window; both the z and an absolute floor must
    #: trip, so microsecond jitter on fast phases never alerts.
    stall_zscore: float = 8.0
    stall_min_seconds: float = 0.25
    stall_window: int = 64
    stall_min_samples: int = 8
    #: Phases excluded from stall detection (``eval`` is bimodal by
    #: design — the evaluation cadence skips most rounds).
    stall_exclude: tuple[str, ...] = ("eval",)


def robust_zscore(value: float, history: list[float]) -> float:
    """``(value - median) / (1.4826 * MAD)`` over ``history``.

    Returns 0.0 when the history is degenerate (MAD of 0 means the
    phase is metronome-steady; any jitter would otherwise be infinite).
    """
    ordered = sorted(history)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    median = ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2
    deviations = sorted(abs(x - median) for x in ordered)
    mad = deviations[mid] if n % 2 else (
        (deviations[mid - 1] + deviations[mid]) / 2
    )
    if mad <= 0.0:
        return 0.0
    return (value - median) / (1.4826 * mad)


@dataclass
class HealthMonitor:
    """Streaming health detectors; feed records, collect alert dicts.

    ``observe(record)`` returns a (usually empty) list of alert field
    dicts — each ready to emit as an ``alert`` event — and ``summary()``
    reports everything raised so far.
    """

    config: HealthConfig = field(default_factory=HealthConfig)

    def __post_init__(self) -> None:
        self._best_loss = math.inf
        self._finite_losses = 0
        self._rounds = 0
        self._participants = 0
        self._dropped = 0
        self._flag_counts: dict[int, int] = {}
        self._phase_history: dict[str, deque] = {}
        self._latched: set[tuple] = set()
        self.alerts: list[dict] = []

    # ------------------------------------------------------------------
    def observe(self, record: dict) -> list[dict]:
        """Feed one event record; return any newly raised alerts."""
        kind = record.get("type")
        if kind == "round":
            return self._observe_round(record)
        if kind == "flagged":
            return self._observe_flagged(record)
        return []

    def _raise(self, key: tuple, round_index: int, detector: str,
               severity: str, message: str, **detail) -> list[dict]:
        if key in self._latched:
            return []
        self._latched.add(key)
        alert = {
            "round": round_index,
            "detector": detector,
            "severity": severity,
            "message": message,
            **detail,
        }
        self.alerts.append(alert)
        return [alert]

    def _observe_round(self, record: dict) -> list[dict]:
        cfg = self.config
        out: list[dict] = []
        round_index = record["round"]
        self._rounds += 1

        # --- divergence --------------------------------------------------
        loss = record.get("loss")
        nonfinite = record.get("loss_nonfinite")
        if loss is None and isinstance(nonfinite, str):
            # This repo's sink ships non-finite losses as ``loss: null``
            # plus a ``loss_nonfinite`` marker (strict JSON has no
            # NaN/Infinity literal); surface them to the detector.
            loss = float(nonfinite)
        if isinstance(loss, (int, float)):
            loss = float(loss)
            if not math.isfinite(loss):
                out += self._raise(
                    ("divergence",), round_index, "divergence", "critical",
                    f"non-finite loss at round {round_index}",
                    loss=repr(loss),
                )
            else:
                if (
                    self._finite_losses >= cfg.divergence_min_rounds
                    and loss > cfg.divergence_factor
                    * max(self._best_loss, 1e-12)
                ):
                    out += self._raise(
                        ("divergence",), round_index, "divergence",
                        "critical",
                        f"loss {loss:.6g} exploded to "
                        f"{loss / max(self._best_loss, 1e-12):.1f}x the "
                        f"best seen ({self._best_loss:.6g})",
                        loss=loss, best_loss=self._best_loss,
                    )
                self._finite_losses += 1
                self._best_loss = min(self._best_loss, loss)

        # --- drop rate ---------------------------------------------------
        # ``participants`` on a round event counts the *survivors* (the
        # scenario hooks filter dropped clients out before the engine
        # snapshots the round), so the exposure base is survivors plus
        # drops — dropped/(participants+dropped), bounded in [0, 1].
        self._participants += record.get("participants", 0)
        self._dropped += record.get("dropped", 0)
        exposed = self._participants + self._dropped
        if (
            self._rounds >= cfg.drop_min_rounds
            and exposed > 0
            and self._dropped / exposed > cfg.drop_rate_threshold
        ):
            out += self._raise(
                ("drop_rate",), round_index, "drop_rate", "warning",
                f"{self._dropped}/{exposed} uploads dropped "
                f"({100.0 * self._dropped / exposed:.0f}% cumulative)",
                dropped=self._dropped, participants=exposed,
            )

        # --- stall -------------------------------------------------------
        phases = record.get("phases")
        if isinstance(phases, dict):
            for phase, seconds in phases.items():
                if phase in cfg.stall_exclude:
                    continue
                history = self._phase_history.setdefault(
                    phase, deque(maxlen=cfg.stall_window)
                )
                if (
                    len(history) >= cfg.stall_min_samples
                    and seconds >= cfg.stall_min_seconds
                ):
                    z = robust_zscore(seconds, list(history))
                    if z > cfg.stall_zscore:
                        out += self._raise(
                            ("stall", phase), round_index, "stall",
                            "warning",
                            f"phase {phase!r} took {seconds:.3f}s at round "
                            f"{round_index} (robust z={z:.1f} against its "
                            f"history)",
                            phase=phase, seconds=seconds, zscore=z,
                        )
                history.append(seconds)
        return out

    def _observe_flagged(self, record: dict) -> list[dict]:
        cfg = self.config
        out: list[dict] = []
        round_index = record["round"]
        for cid in record["client_ids"]:
            cid = int(cid)
            count = self._flag_counts.get(cid, 0) + 1
            self._flag_counts[cid] = count
            if count >= cfg.flag_threshold:
                out += self._raise(
                    ("flagged_accumulation", cid), round_index,
                    "flagged_accumulation", "warning",
                    f"client {cid} flagged {count} times "
                    f"(detector {record['detector']!r})",
                    client_id=cid, times_flagged=count,
                )
        return out

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Everything raised so far, for the trace-report health section."""
        by_detector: dict[str, int] = {}
        for alert in self.alerts:
            by_detector[alert["detector"]] = (
                by_detector.get(alert["detector"], 0) + 1
            )
        return {
            "healthy": not self.alerts,
            "rounds_observed": self._rounds,
            "alerts": [dict(alert) for alert in self.alerts],
            "by_detector": dict(sorted(by_detector.items())),
        }


def scan_trace(path: str | pathlib.Path,
               config: HealthConfig | None = None) -> HealthMonitor:
    """Replay a JSONL trace through a fresh monitor (post-hoc health).

    Lenient by design: lines that are not valid JSON objects are skipped
    (``trace-report`` validates separately), and ``loss`` values parsed
    from bare ``NaN``/``Infinity`` tokens — which third-party emitters
    may produce even though this repo's sink never does — feed the
    divergence detector like any other non-finite loss.
    """
    monitor = HealthMonitor(config or HealthConfig())
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                monitor.observe(record)
    return monitor
