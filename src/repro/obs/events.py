"""Event schema for the telemetry subsystem.

Every record emitted through :class:`repro.obs.Telemetry` is a flat JSON
object with a ``type`` field naming one of the schemas below.  The schema
is deliberately open: required keys must be present (and are what the CI
smoke and ``trace-report`` rely on), while extra keys — run annotations
such as ``figure``/``method``/``backend``, or event-specific detail — are
always allowed so future subsystems (async aggregation, adversary axis)
can extend events without a schema migration.
"""

from __future__ import annotations

#: The engine phases every ``round`` event's ``phases`` breakdown covers.
#: ``probe`` aggregates the hook work around local steps (deadline gate,
#: counterfactual replays, probe-loss evaluations).
ENGINE_PHASES = (
    "sample",
    "local_steps",
    "probe",
    "preprocess",
    "select",
    "aggregate",
    "update",
    "residual_reset",
    "eval",
)

#: ``type`` -> required field names.  Extra fields are always permitted.
EVENT_TYPES: dict[str, frozenset[str]] = {
    # One per engine round: RoundRecord fields + wall-clock breakdown and
    # element/byte traffic.
    "round": frozenset({
        "round", "k", "round_time", "cumulative_time", "participants",
        "uplink_elements", "downlink_elements", "uplink_bytes",
        "downlink_bytes", "wall_seconds", "phases",
    }),
    # A named wall-clock interval (e.g. a whole figure build).  ``process``
    # attributes the span to its emitter: ``"parent"`` for the driver
    # process, ``"worker-<i>"`` for pool workers (whose buffered spans
    # carry a worker-lifetime ``seq`` and are merged parent-side in
    # deterministic ``(round, worker_id, seq)`` order).
    "span": frozenset({"name", "seconds", "process"}),
    # The deadline gate rejected uploads this round.
    "drop": frozenset({"round", "client_ids", "deadline", "close_time"}),
    # Previously-dropped clients delivered an accepted upload again.
    "recovery": frozenset({"round", "client_ids"}),
    # Online-k probe walk (adaptive trainer).
    "probe": frozenset({
        "round", "k_continuous", "probe_k", "loss_prev", "loss_now",
        "loss_probe",
    }),
    # A robust aggregator found uploads suspicious (detector = aggregator
    # name, scores aligned with client_ids).  Detection is deterministic
    # arithmetic over the round's uploads — no RNG, no numeric state.
    "flagged": frozenset({"round", "client_ids", "detector", "scores"}),
    # Learned-deadline walk (adaptive deadline schedule).
    "deadline": frozenset({
        "round", "deadline", "arrived", "dropped", "round_time",
    }),
    # Snapshot of accumulated counters/gauges (emitted on flush/close).
    "counters": frozenset({"counters", "gauges"}),
    # A run-health detector fired (:mod:`repro.obs.health`): divergence,
    # drop-rate, flagged-client accumulation, or wall-clock stall.
    # ``severity`` is ``"warning"`` or ``"critical"``.
    "alert": frozenset({"round", "detector", "severity", "message"}),
}


def validate_event(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` matches the schema."""
    if not isinstance(record, dict):
        raise ValueError(f"event must be a dict, got {type(record).__name__}")
    kind = record.get("type")
    if kind not in EVENT_TYPES:
        raise ValueError(f"unknown event type: {kind!r}")
    missing = EVENT_TYPES[kind] - record.keys()
    if missing:
        raise ValueError(
            f"{kind!r} event missing fields: {sorted(missing)}"
        )
    if kind == "round":
        phases = record["phases"]
        if not isinstance(phases, dict):
            raise ValueError("'phases' must be a dict of phase -> seconds")
        unknown = set(phases) - set(ENGINE_PHASES)
        if unknown:
            raise ValueError(f"unknown engine phases: {sorted(unknown)}")
