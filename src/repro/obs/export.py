"""Bench trajectory and regression gate: history, baselines, diffs.

The standalone benchmarks write point-in-time snapshots
(``BENCH_engine.json`` etc. — JSON lists of per-run reports, each with a
``host`` stanza from :mod:`benchmarks._hostmeta`).  This module turns
those snapshots into a trajectory:

* :func:`bench_history_entry` flattens one report into dotted numeric
  metrics plus a content fingerprint;
* :func:`append_bench_history` appends entries to ``BENCH_history.jsonl``
  (append-only JSONL, fingerprint-deduplicated, so re-running the
  backfill is idempotent);
* :func:`diff_metrics` compares a current report against the recorded
  baseline with direction-aware tolerances, and
  ``python -m repro.cli bench-diff`` exits nonzero on regression.

Host awareness: benchmark numbers only compare across runs of the same
machine shape.  A baseline from a different host signature downgrades
every finding to informational — the CI soft gate stays green on fresh
runners while still printing the deltas.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from collections import Counter

#: Relative slowdown tolerated before a metric counts as regressed.
#: Generous by default: the committed baselines come from small, noisy
#: runs (often single-CPU CI hosts).
DEFAULT_TOLERANCE = 0.30

#: Substrings classifying a metric's good direction.  First match wins;
#: metrics matching neither list are informational (never gate).
_HIGHER_BETTER = ("per_second", "rps", "speedup")
_LOWER_BETTER = ("seconds", "overhead", "fraction", "bytes", "rss")


def flatten_bench_report(report: dict) -> dict[str, float]:
    """Numeric leaves of ``report['results']`` as dotted-key metrics.

    Handles both report shapes in the repo: ``results`` as a dict of
    nested dicts (bench_parallel) and as a list of per-scenario dicts
    (bench_engine — list entries are keyed by their identifying fields,
    e.g. ``mlp.n24``).
    """
    metrics: dict[str, float] = {}

    def walk(prefix: str, node) -> None:
        if isinstance(node, bool):
            return
        if isinstance(node, (int, float)):
            metrics[prefix] = float(node)
        elif isinstance(node, dict):
            for key, value in node.items():
                walk(f"{prefix}.{key}" if prefix else str(key), value)
        elif isinstance(node, list):
            # Entries sharing every identifying field would collide on
            # the same dotted key and silently overwrite each other;
            # only colliding labels get the list index appended, so all
            # pre-existing (unique) metric names stay stable.
            labels = [_entry_label(value, index)
                      for index, value in enumerate(node)]
            counts = Counter(labels)
            for index, (label, value) in enumerate(zip(labels, node)):
                if counts[label] > 1:
                    label = f"{label}.{index}"
                walk(f"{prefix}.{label}" if prefix else label, value)

    walk("", report.get("results", {}))
    return metrics


def _entry_label(entry, index: int) -> str:
    """A stable label for a list entry: identifying fields if present."""
    if isinstance(entry, dict):
        parts = []
        for key in ("model", "backend", "name"):
            if isinstance(entry.get(key), str):
                parts.append(entry[key])
        for key in ("num_clients", "population", "rounds_key"):
            if isinstance(entry.get(key), int):
                parts.append(f"n{entry[key]}")
        if parts:
            return ".".join(parts)
    return str(index)


def host_signature(host: dict) -> str:
    """The machine shape a benchmark number is comparable within."""
    return "/".join(str(host.get(key, "?")) for key in
                    ("machine", "cpu_count", "usable_cpus"))


def fingerprint(report: dict) -> str:
    """Content hash of a report (stable across key order)."""
    canonical = json.dumps(report, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def bench_history_entry(bench: str, report: dict) -> dict:
    """One ``BENCH_history.jsonl`` line for a bench report."""
    host = report.get("host", {})
    return {
        "bench": bench,
        "timestamp_utc": host.get("timestamp_utc"),
        "host": host,
        "host_signature": host_signature(host),
        "fingerprint": fingerprint(report),
        "metrics": flatten_bench_report(report),
    }


def load_bench_history(path: str | pathlib.Path) -> list[dict]:
    path = pathlib.Path(path)
    if not path.exists():
        return []
    entries = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def append_bench_history(path: str | pathlib.Path,
                         entries: list[dict]) -> int:
    """Append new entries (fingerprint-deduplicated); return count added."""
    path = pathlib.Path(path)
    seen = {(e.get("bench"), e.get("fingerprint"))
            for e in load_bench_history(path)}
    added = 0
    with open(path, "a", encoding="utf-8") as fh:
        for entry in entries:
            key = (entry.get("bench"), entry.get("fingerprint"))
            if key in seen:
                continue
            seen.add(key)
            fh.write(json.dumps(entry, sort_keys=True,
                                separators=(",", ":")) + "\n")
            added += 1
    return added


def select_baseline(history: list[dict], bench: str, host_sig: str,
                    exclude_fingerprint: str | None = None) -> dict | None:
    """Most recent history entry to diff against.

    Prefers the latest same-host entry; falls back to the latest entry
    from any host (the caller downgrades that comparison to
    informational).  ``exclude_fingerprint`` skips the entry recorded
    from the report under comparison itself.
    """
    candidates = [
        e for e in history
        if e.get("bench") == bench
        and e.get("fingerprint") != exclude_fingerprint
    ]
    same_host = [e for e in candidates
                 if e.get("host_signature") == host_sig]
    pool = same_host or candidates
    return pool[-1] if pool else None


def metric_direction(name: str) -> str:
    """``"higher"``, ``"lower"``, or ``"info"`` for a dotted metric."""
    lowered = name.lower()
    for token in _HIGHER_BETTER:
        if token in lowered:
            return "higher"
    for token in _LOWER_BETTER:
        if token in lowered:
            return "lower"
    return "info"


def diff_metrics(baseline: dict[str, float], current: dict[str, float],
                 tolerance: float = DEFAULT_TOLERANCE) -> list[dict]:
    """Per-metric comparison rows, worst regressions first.

    A row regresses when the change in the metric's bad direction
    exceeds ``tolerance`` (relative).  Metrics present on only one side
    are reported as ``added``/``removed`` and never gate.
    """
    rows = []
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            rows.append({"metric": name, "status": "removed",
                         "baseline": baseline[name]})
            continue
        if name not in baseline:
            rows.append({"metric": name, "status": "added",
                         "current": current[name]})
            continue
        base, now = baseline[name], current[name]
        direction = metric_direction(name)
        if base == 0:
            change = 0.0 if now == 0 else float("inf")
        else:
            change = (now - base) / abs(base)
        if direction == "higher":
            regressed = change < -tolerance
        elif direction == "lower":
            regressed = change > tolerance
        else:
            regressed = False
        rows.append({
            "metric": name,
            "status": "regressed" if regressed else "ok",
            "direction": direction,
            "baseline": base,
            "current": now,
            "change_pct": round(100.0 * change, 1),
        })
    rows.sort(key=lambda r: (r["status"] != "regressed",
                             -abs(r.get("change_pct", 0.0)), r["metric"]))
    return rows


def diff_bench_report(bench: str, report: dict, history: list[dict],
                      tolerance: float = DEFAULT_TOLERANCE) -> dict:
    """Diff one current report against its recorded baseline."""
    current_entry = bench_history_entry(bench, report)
    baseline = select_baseline(
        history, bench, current_entry["host_signature"],
        exclude_fingerprint=current_entry["fingerprint"],
    )
    if baseline is None:
        return {"bench": bench, "status": "no_baseline",
                "host_match": False, "rows": []}
    host_match = (baseline.get("host_signature")
                  == current_entry["host_signature"])
    rows = diff_metrics(baseline.get("metrics", {}),
                        current_entry["metrics"], tolerance)
    regressions = [r for r in rows if r["status"] == "regressed"]
    if not host_match:
        # Cross-host numbers are not comparable; report, never gate.
        status = "informational"
    elif regressions:
        status = "regressed"
    else:
        status = "ok"
    return {
        "bench": bench,
        "status": status,
        "host_match": host_match,
        "baseline_timestamp": baseline.get("timestamp_utc"),
        "baseline_host": baseline.get("host_signature"),
        "regressions": len(regressions),
        "rows": rows,
    }


def format_bench_diff(diffs: list[dict], tolerance: float) -> str:
    """Human-readable multi-bench diff."""
    lines = [f"bench-diff (tolerance ±{100 * tolerance:.0f}%)",
             "=" * 34]
    for diff in diffs:
        bench = diff["bench"]
        if diff["status"] == "no_baseline":
            lines.append(f"{bench}: no baseline recorded — skipped")
            continue
        note = "" if diff["host_match"] else \
            f"  [host mismatch vs {diff['baseline_host']} — informational]"
        lines.append(
            f"{bench}: {diff['status']} "
            f"({diff['regressions']} regression(s), baseline "
            f"{diff['baseline_timestamp'] or 'unknown'}){note}"
        )
        for row in diff["rows"]:
            if row["status"] in ("added", "removed"):
                continue
            if row["status"] != "regressed" and abs(
                    row.get("change_pct", 0.0)) < 100 * tolerance / 2:
                continue
            marker = "!!" if row["status"] == "regressed" else "  "
            lines.append(
                f"  {marker} {row['metric']:<48} "
                f"{row['baseline']:>10.4g} -> {row['current']:>10.4g} "
                f"({row['change_pct']:+.1f}%)"
            )
    return "\n".join(lines)
