"""The telemetry facade: counters, gauges, span timers, structured events.

Two implementations share one interface:

* :class:`NullTelemetry` — the default.  Every method is a no-op and
  ``enabled`` is ``False``, so instrumented hot paths pay exactly one
  attribute check before skipping all telemetry work.
* :class:`Telemetry` — accumulates counters/gauges in memory, times spans
  with the monotonic clock, and emits schema-validated events to an
  in-memory aggregator plus (optionally) an append-only JSONL sink.

The hard invariant every emitter must respect: telemetry consumes **no
RNG and touches no numeric training state**.  It only reads values the
run already computed (plus ``time.perf_counter``), which is what keeps
telemetry-on runs bit-identical to telemetry-off runs on every backend.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from .events import validate_event
from .sinks import JsonlSink, MemoryAggregator

#: Bytes per sparse upload element on the simulated wire: an int64
#: coordinate plus a float64 value.
SPARSE_ELEMENT_BYTES = 16


class NullTelemetry:
    """Disabled telemetry: every operation is a no-op.

    Instrumentation sites should check ``telemetry.enabled`` before doing
    any work beyond calling these methods, so the disabled path costs one
    attribute read.
    """

    enabled = False
    current_round = 0

    def count(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def event(self, kind: str, **fields) -> None:
        pass

    def annotate(self, **fields) -> None:
        pass

    @contextmanager
    def span(self, name: str, **fields):
        yield

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


#: Shared default instance — safe because NullTelemetry is stateless.
NULL_TELEMETRY = NullTelemetry()


class Telemetry:
    """Enabled telemetry: counters, gauges, spans, and structured events."""

    enabled = True

    #: Identifies the emitting process on ``span`` events; pool workers
    #: override it via :class:`WorkerTelemetry`.
    process = "parent"

    def __init__(self, sink: JsonlSink | None = None,
                 aggregator: MemoryAggregator | None = None,
                 health=None):
        self.sink = sink
        self.aggregator = MemoryAggregator() if aggregator is None \
            else aggregator
        #: Optional live :class:`repro.obs.health.HealthMonitor`; every
        #: non-alert event streams through it and any alerts it raises
        #: are re-emitted as schema-registered ``alert`` events.
        self.health = health
        #: Engine-maintained current round index, used to stamp merged
        #: worker events (set by ``RoundEngine.begin_round`` when tracing).
        self.current_round = 0
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.annotations: dict[str, object] = {}

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named monotonically-growing counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a point-in-time measurement."""
        self.gauges[name] = value

    def annotate(self, **fields) -> None:
        """Attach run-level context (figure, method, …) to future events."""
        self.annotations.update(fields)

    def event(self, kind: str, **fields) -> None:
        """Emit one schema-validated event to the aggregator and sink."""
        record = {"type": kind, **self.annotations, **fields}
        if kind == "span":
            record.setdefault("process", self.process)
        validate_event(record)
        self.aggregator.add(record)
        if self.sink is not None:
            self.sink.write(record)
        if self.health is not None and kind != "alert":
            for alert in self.health.observe(record):
                self.event("alert", **alert)

    @contextmanager
    def span(self, name: str, **fields):
        """Time a block with the monotonic clock; emits a ``span`` event."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.event("span", name=name,
                       seconds=time.perf_counter() - start, **fields)

    def flush(self) -> None:
        """Emit accumulated counters/gauges as a ``counters`` event.

        Counters are reset after the snapshot so repeated flushes (e.g.
        per sweep unit) report deltas, never double-counting.
        """
        if self.counters or self.gauges:
            self.event("counters", counters=dict(self.counters),
                       gauges=dict(self.gauges))
            self.counters = {}
            self.gauges = {}
        if self.sink is not None:
            self.sink.flush()

    def close(self) -> None:
        self.flush()
        if self.sink is not None:
            self.sink.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class WorkerTelemetry(Telemetry):
    """Buffered telemetry for one pool worker process.

    Events never touch a sink or aggregator in the worker; they append to
    an in-memory buffer stamped with the worker's ``process`` label and a
    worker-lifetime monotonic ``seq``.  The parent drains the buffer over
    the existing result pipe and re-emits every record through its own
    :class:`Telemetry` (where validation, annotations, aggregation and
    the JSONL sink happen), merging streams in deterministic
    ``(round, worker_id, seq)`` order.

    Same hard invariant as the parent facade: no RNG, no numeric state —
    only values the gradient request already computed, plus the clock.
    """

    def __init__(self, process: str):
        super().__init__(sink=None, aggregator=_NULL_AGGREGATOR)
        self.process = process
        self._seq = 0
        self._buffer: list[dict] = []

    def event(self, kind: str, **fields) -> None:
        record = {"type": kind, **self.annotations, **fields}
        if kind == "span":
            record.setdefault("process", self.process)
        record["seq"] = self._seq
        self._seq += 1
        self._buffer.append(record)

    def drain(self) -> list[dict]:
        """Return and clear the buffered events (in emission order)."""
        out = self._buffer
        self._buffer = []
        return out


class _NullAggregator:
    """Aggregator stand-in for worker-side telemetry (events buffer
    instead of rolling up; the parent aggregates after the merge)."""

    def add(self, record: dict) -> None:  # pragma: no cover - never called
        pass


_NULL_AGGREGATOR = _NullAggregator()


def open_telemetry(path: str | None) -> NullTelemetry | Telemetry:
    """Build telemetry from a config/CLI value.

    ``None`` (or empty string) yields the shared no-op instance; a path
    yields enabled telemetry appending JSONL events to that file.
    """
    if not path:
        return NULL_TELEMETRY
    return Telemetry(sink=JsonlSink(path))
