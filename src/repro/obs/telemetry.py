"""The telemetry facade: counters, gauges, span timers, structured events.

Two implementations share one interface:

* :class:`NullTelemetry` — the default.  Every method is a no-op and
  ``enabled`` is ``False``, so instrumented hot paths pay exactly one
  attribute check before skipping all telemetry work.
* :class:`Telemetry` — accumulates counters/gauges in memory, times spans
  with the monotonic clock, and emits schema-validated events to an
  in-memory aggregator plus (optionally) an append-only JSONL sink.

The hard invariant every emitter must respect: telemetry consumes **no
RNG and touches no numeric training state**.  It only reads values the
run already computed (plus ``time.perf_counter``), which is what keeps
telemetry-on runs bit-identical to telemetry-off runs on every backend.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from .events import validate_event
from .sinks import JsonlSink, MemoryAggregator

#: Bytes per sparse upload element on the simulated wire: an int64
#: coordinate plus a float64 value.
SPARSE_ELEMENT_BYTES = 16


class NullTelemetry:
    """Disabled telemetry: every operation is a no-op.

    Instrumentation sites should check ``telemetry.enabled`` before doing
    any work beyond calling these methods, so the disabled path costs one
    attribute read.
    """

    enabled = False

    def count(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def event(self, kind: str, **fields) -> None:
        pass

    def annotate(self, **fields) -> None:
        pass

    @contextmanager
    def span(self, name: str, **fields):
        yield

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared default instance — safe because NullTelemetry is stateless.
NULL_TELEMETRY = NullTelemetry()


class Telemetry:
    """Enabled telemetry: counters, gauges, spans, and structured events."""

    enabled = True

    def __init__(self, sink: JsonlSink | None = None,
                 aggregator: MemoryAggregator | None = None):
        self.sink = sink
        self.aggregator = MemoryAggregator() if aggregator is None \
            else aggregator
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.annotations: dict[str, object] = {}

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named monotonically-growing counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a point-in-time measurement."""
        self.gauges[name] = value

    def annotate(self, **fields) -> None:
        """Attach run-level context (figure, method, …) to future events."""
        self.annotations.update(fields)

    def event(self, kind: str, **fields) -> None:
        """Emit one schema-validated event to the aggregator and sink."""
        record = {"type": kind, **self.annotations, **fields}
        validate_event(record)
        self.aggregator.add(record)
        if self.sink is not None:
            self.sink.write(record)

    @contextmanager
    def span(self, name: str, **fields):
        """Time a block with the monotonic clock; emits a ``span`` event."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.event("span", name=name,
                       seconds=time.perf_counter() - start, **fields)

    def flush(self) -> None:
        """Emit accumulated counters/gauges as a ``counters`` event.

        Counters are reset after the snapshot so repeated flushes (e.g.
        per sweep unit) report deltas, never double-counting.
        """
        if self.counters or self.gauges:
            self.event("counters", counters=dict(self.counters),
                       gauges=dict(self.gauges))
            self.counters = {}
            self.gauges = {}
        if self.sink is not None:
            self.sink.flush()

    def close(self) -> None:
        self.flush()
        if self.sink is not None:
            self.sink.close()


def open_telemetry(path: str | None) -> NullTelemetry | Telemetry:
    """Build telemetry from a config/CLI value.

    ``None`` (or empty string) yields the shared no-op instance; a path
    yields enabled telemetry appending JSONL events to that file.
    """
    if not path:
        return NULL_TELEMETRY
    return Telemetry(sink=JsonlSink(path))
