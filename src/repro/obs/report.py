"""Summarize a JSONL trace file: the ``trace-report`` rollup.

Replays a trace through :class:`MemoryAggregator`, so a post-hoc report
of a file and the in-memory summary of a live run agree by construction.
"""

from __future__ import annotations

import json
import pathlib

from .events import ENGINE_PHASES, validate_event
from .health import HealthConfig, HealthMonitor
from .sinks import MemoryAggregator


def summarize_trace(path: str | pathlib.Path,
                    health_config: HealthConfig | None = None) -> dict:
    """Validate every event in ``path`` and return the aggregate summary.

    The stream is also replayed through a :class:`HealthMonitor`, so the
    summary's ``health`` section reports post-hoc what a live monitor
    would have raised.
    """
    aggregator = MemoryAggregator()
    monitor = HealthMonitor(health_config or HealthConfig())
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}")
            try:
                validate_event(record)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}")
            aggregator.add(record)
            monitor.observe(record)
    summary = aggregator.summary()
    summary["health"] = monitor.summary()
    return summary


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"


def format_trace_report(summary: dict) -> str:
    """Human-readable phase-time / bytes / drops rollup of a summary."""
    lines = ["trace summary", "============="]
    events = summary["events"]
    lines.append("events:   " + ", ".join(
        f"{kind}={count}" for kind, count in events.items()) or "none")
    lines.append(f"rounds:   {summary['rounds']}")

    total = sum(summary["phase_seconds"].values())
    if summary["phase_seconds"]:
        lines.append("")
        lines.append(f"phase wall-clock ({total:.3f}s total)")
        # Present in engine order, extras (if any) after.
        ordered = [p for p in ENGINE_PHASES if p in summary["phase_seconds"]]
        ordered += [p for p in summary["phase_seconds"] if p not in ordered]
        for phase in ordered:
            seconds = summary["phase_seconds"][phase]
            share = 100.0 * seconds / total if total else 0.0
            lines.append(f"  {phase:<14} {seconds:9.3f}s  {share:5.1f}%")

    lines.append("")
    lines.append(
        f"uplink:   {summary['uplink_elements']} elements"
        f" ({_fmt_bytes(summary['uplink_bytes'])})"
    )
    lines.append(
        f"downlink: {summary['downlink_elements']} elements"
        f" ({_fmt_bytes(summary['downlink_bytes'])})"
    )
    lines.append(
        f"drops:    {summary['dropped_uploads']} uploads dropped,"
        f" {summary['recovered_clients']} clients recovered"
    )

    if summary["span_seconds"]:
        lines.append("")
        lines.append("spans")
        for name, seconds in summary["span_seconds"].items():
            lines.append(f"  {name:<24} {seconds:9.3f}s")

    by_process = summary.get("span_seconds_by_process", {})
    if len(by_process) > 1 or any(p != "parent" for p in by_process):
        lines.append("")
        lines.append("spans by process")
        for process, per in by_process.items():
            total_seconds = sum(per.values())
            lines.append(f"  {process:<14} {total_seconds:9.3f}s")
            for name, seconds in per.items():
                lines.append(f"    {name:<22} {seconds:9.3f}s")

    flagged = summary.get("flagged", {})
    if flagged.get("events"):
        lines.append("")
        lines.append(f"flagged clients ({flagged['events']} events)")
        for detector, count in flagged["by_detector"].items():
            lines.append(f"  {detector:<24} {count} events")
        if flagged["top_clients"]:
            offenders = ", ".join(
                f"{cid}×{count}" for cid, count in flagged["top_clients"]
            )
            lines.append(f"  top offenders: {offenders}")

    health = summary.get("health")
    if health is not None:
        lines.append("")
        if health["healthy"]:
            lines.append(
                f"health:   OK ({health['rounds_observed']} rounds,"
                " no alerts)"
            )
        else:
            lines.append(f"health:   {len(health['alerts'])} alert(s)")
            for alert in health["alerts"]:
                lines.append(
                    f"  [{alert['severity']}] {alert['detector']}"
                    f" @ round {alert['round']}: {alert['message']}"
                )

    if summary["counters"]:
        lines.append("")
        lines.append("counters")
        for name, value in summary["counters"].items():
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<28} {rendered}")
    return "\n".join(lines)
