"""Adaptive sparsity: online learning of k during federated training.

The headline capability of the paper: instead of hand-tuning the sparsity
k, Algorithm 3 + the derivative-sign estimator learn a near-optimal k
online, adapting to the communication/computation ratio.  This example
trains the same federation under cheap (β = 0.5) and expensive (β = 50)
communication and shows the learned k settling at very different levels —
large k when communication is cheap, small k when it is dear.

Run:  python examples/adaptive_sparsification.py
"""

import numpy as np

from repro.data.partition import partition_by_writer
from repro.data.synthetic import make_femnist_like
from repro.nn.models import make_mlp
from repro.online.adaptive_trainer import AdaptiveKTrainer
from repro.online.algorithm3 import AdaptiveSignOGD
from repro.online.interval import SearchInterval
from repro.online.policy import SignPolicy
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK


def run_one(comm_time: float, num_rounds: int = 250) -> None:
    dataset = make_femnist_like(
        num_writers=15, samples_per_writer=30, num_classes=10,
        classes_per_writer=4, image_size=10, seed=0,
    )
    federation = partition_by_writer(dataset)
    model = make_mlp(dataset.feature_dim, 10, hidden=(32,), seed=0)
    timing = TimingModel(dimension=model.dimension, comm_time=comm_time)

    # The paper's search interval: K = [0.002*D, D], with Algorithm 3's
    # parameters alpha = 1.5 and update window M_u = 20.
    interval = SearchInterval(max(2.0, 0.002 * model.dimension),
                              float(model.dimension))
    policy = SignPolicy(AdaptiveSignOGD(interval, alpha=1.5, update_window=20))

    trainer = AdaptiveKTrainer(
        model, federation, FABTopK(), policy, timing,
        learning_rate=0.05, batch_size=16, eval_every=25, seed=0,
    )
    trainer.run(num_rounds)

    ks = trainer.history.ks()
    print(f"\n=== communication time beta = {comm_time} ===")
    print(f"k trajectory: start {ks[0]:.0f} -> "
          f"mean(last 50) {np.mean(ks[-50:]):.0f} "
          f"(D = {model.dimension})")
    restarts = policy.algorithm.restart_rounds
    print(f"Algorithm 3 interval restarts at rounds: {restarts or 'none'}")
    print(f"final loss {trainer.history.final_loss:.4f} "
          f"after normalized time {trainer.clock:.0f}")
    sample = ks[:: max(1, len(ks) // 10)]
    print("k samples:", " ".join(f"{k:.0f}" for k in sample))


def main() -> None:
    print(__doc__)
    run_one(comm_time=0.5)
    run_one(comm_time=50.0)
    print("\nNote how expensive communication drives the learned k down —")
    print("the trade-off the paper's online algorithm optimizes automatically.")


if __name__ == "__main__":
    main()
