"""Extensions in action: stragglers, client sampling, and energy budgets.

The paper's conclusion sketches two extensions this library implements:

1. *Heterogeneous client resources* — some clients are much slower; a
   synchronous round waits for the slowest participant, so sampling a
   fast subset each round can beat full participation in time-to-loss.
2. *Other additive resources* — by replacing the timing model with a
   weighted time+energy+money resource model, the same training loop
   (and the online-k machinery) minimizes a joint budget instead of
   time alone.

Run:  python examples/heterogeneous_energy.py
"""

from repro.data.partition import partition_by_writer
from repro.data.synthetic import make_femnist_like
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_mlp
from repro.simulation.heterogeneous import (
    ClientProfile,
    ClientSampler,
    HeterogeneousTimingModel,
)
from repro.simulation.resources import ResourceModel, ResourceWeights
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK


def build():
    dataset = make_femnist_like(
        num_writers=16, samples_per_writer=25, num_classes=10,
        classes_per_writer=4, image_size=10, seed=2,
    )
    federation = partition_by_writer(dataset)
    model = make_mlp(dataset.feature_dim, 10, hidden=(24,), seed=2)
    return dataset, federation, model


def straggler_demo() -> None:
    print("=" * 60)
    print("Part 1: straggler avoidance via fastest-biased sampling")
    print("=" * 60)
    _, federation, _ = build()
    # Every fourth client is an 8x straggler.
    profiles = [
        ClientProfile(c.client_id,
                      compute_factor=8.0 if c.client_id % 4 == 0 else 1.0,
                      comm_factor=8.0 if c.client_id % 4 == 0 else 1.0)
        for c in federation.clients
    ]
    ids = [c.client_id for c in federation.clients]
    budget = 350.0
    for label, sampler in (
        ("full participation", None),
        ("uniform half", ClientSampler(ids, count=8, seed=0)),
        ("fastest-biased half", ClientSampler(
            ids, count=8, strategy="fastest-biased", profiles=profiles,
            seed=0)),
    ):
        _, federation, model = build()
        timing = HeterogeneousTimingModel(
            model.dimension, comm_time=10.0, profiles=profiles,
        )
        trainer = FLTrainer(model, federation, FABTopK(), timing=timing,
                            sampler=sampler, learning_rate=0.05,
                            batch_size=16, eval_every=10, seed=2)
        k = max(2, int(0.4 * model.dimension / federation.num_clients))
        while trainer.clock < budget:
            trainer.step(k)
        print(f"  {label:<22} rounds={len(trainer.history):>4} "
              f"loss={trainer.history.last_evaluated_loss:.4f}")


def energy_demo() -> None:
    print()
    print("=" * 60)
    print("Part 2: minimizing a joint time+energy objective")
    print("=" * 60)
    _, federation, model = build()
    timing = TimingModel(model.dimension, comm_time=10.0)
    resources = ResourceModel(
        timing,
        weights=ResourceWeights(time=1.0, energy=2.0),
        compute_energy=0.5,              # each round of local compute
        energy_per_element=0.01,         # radio energy per element sent
    )
    trainer = FLTrainer(model, federation, FABTopK(), timing=resources,
                        learning_rate=0.05, batch_size=16, eval_every=20,
                        seed=2)
    k = max(2, int(0.4 * model.dimension / federation.num_clients))
    trainer.run(150, k=k)
    time_only = timing.sparse_round(k, k).total * 150
    print(f"  joint cost consumed : {trainer.clock:.0f} units")
    print(f"  (pure time would be : {time_only:.0f} units)")
    print(f"  final loss          : {trainer.history.last_evaluated_loss:.4f}")
    print("  The trainer and the online-k algorithm see only 'cost per")
    print("  round', so swapping the model changes what gets minimized —")
    print("  the extension the paper describes in its conclusion.")


if __name__ == "__main__":
    print(__doc__)
    straggler_demo()
    energy_demo()
