"""Using the online-learning core standalone, beyond federated learning.

The paper notes its sign-based online algorithm "can be directly extended
to the minimization of other types of additive resources, such as energy,
monetary cost, or a sum of them".  This example treats the decision
variable as a generic resource knob with a user-defined per-round cost
(here: a weighted sum of energy and money whose optimum the algorithm
does not know), runs Algorithm 2 with exact signs and Algorithm 3 with a
*noisy* sign channel, and compares measured regret with the GB√(2M) and
GHB√(2M) bounds of Theorems 1 and 2.

Run:  python examples/custom_cost_online_learning.py
"""

import numpy as np

from repro.online.algorithm2 import SignOGD
from repro.online.algorithm3 import AdaptiveSignOGD
from repro.online.interval import SearchInterval
from repro.online.regret import theorem1_bound, theorem2_bound
from repro.simulation.cost import CostOracle, NoisySignOracle


class EnergyMoneyCost(CostOracle):
    """Example custom cost: energy rises with k, money falls with it.

    cost(k) = energy_price * k / 100  +  money_price * 4000 / k
    Convex with optimum k* = sqrt(4000 * 100 * money/energy).
    """

    def __init__(self, energy_price: float, money_price: float,
                 kmax: float) -> None:
        self.energy = energy_price
        self.money = money_price
        grid = np.linspace(1.0, kmax, 1000)
        self.derivative_bound = float(
            np.abs(self.energy / 100 - self.money * 4000 / grid**2).max()
        )

    def optimum(self, kmin: float, kmax: float) -> float:
        k_star = np.sqrt(4000 * 100 * self.money / self.energy)
        return float(np.clip(k_star, kmin, kmax))

    def tau(self, k: float, m: int) -> float:
        return self.energy * k / 100 + self.money * 4000 / k

    def derivative(self, k: float, m: int) -> float:
        return self.energy / 100 - self.money * 4000 / k**2


def main() -> None:
    print(__doc__)
    interval = SearchInterval(10.0, 2010.0)
    cost = EnergyMoneyCost(energy_price=2.0, money_price=1.5, kmax=interval.kmax)
    M = 1500
    k_star = cost.optimum(interval.kmin, interval.kmax)
    print(f"hidden optimum k* = {k_star:.0f}, search interval "
          f"[{interval.kmin:.0f}, {interval.kmax:.0f}], M = {M} rounds\n")

    # --- Algorithm 2 with exact derivative signs -----------------------
    alg2 = SignOGD(interval, k1=1800.0)
    ks = []
    for m in range(1, M + 1):
        ks.append(alg2.k)
        alg2.update(cost.sign(alg2.k, m))
    regret = cost.regret(ks, interval.kmin, interval.kmax)
    bound = theorem1_bound(cost.derivative_bound, interval.width, M)
    print("Algorithm 2 (exact signs):")
    print(f"  final k = {ks[-1]:.0f} (target {k_star:.0f})")
    print(f"  regret {regret:.1f} <= Theorem-1 bound {bound:.1f}: "
          f"{regret <= bound}")

    # --- Algorithm 3 with a 25%-flipped sign channel --------------------
    noisy = NoisySignOracle(cost, flip_probability=0.25, seed=0)
    alg3 = AdaptiveSignOGD(interval, k1=1800.0, alpha=1.5, update_window=20)
    ks3 = []
    for m in range(1, M + 1):
        ks3.append(alg3.k)
        alg3.update(noisy.sign(alg3.k, m))
    regret3 = cost.regret(ks3, interval.kmin, interval.kmax)
    bound3 = theorem2_bound(cost.derivative_bound, noisy.H, interval.width, M)
    print("\nAlgorithm 3 (25% sign flips, H = {:.1f}):".format(noisy.H))
    print(f"  final k = {ks3[-1]:.0f} (target {k_star:.0f})")
    print(f"  interval restarts at rounds {alg3.restart_rounds}")
    print(f"  regret {regret3:.1f} <= Theorem-2 bound {bound3:.1f}: "
          f"{regret3 <= bound3}")

    print("\nTime-averaged regret (should vanish as M grows):")
    for M_i in (100, 500, 1500):
        r = cost.regret(ks[:M_i], interval.kmin, interval.kmax) / M_i
        print(f"  M = {M_i:>5}: R(M)/M = {r:.3f}")


if __name__ == "__main__":
    main()
