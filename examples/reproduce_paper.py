"""One-command tour of the paper's evaluation at smoke scale.

Runs miniature versions of the paper's key experiments back to back,
renders ASCII charts, and prints quantitative comparison tables — a
5-minute, dependency-free version of `pytest benchmarks/ --benchmark-only`.

Run:  python examples/reproduce_paper.py
"""

from repro.experiments.compare import compare_histories, speedup_at_target
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.plotting import render_figure
from repro.experiments.runner import text_table


def config():
    return ExperimentConfig(
        num_clients=12, samples_per_client=20, image_size=10,
        num_classes=10, classes_per_writer=4, hidden=(16,),
        learning_rate=0.05, batch_size=16, comm_time=10.0,
        num_rounds=120, eval_every=5, eval_max_samples=250, seed=0,
    )


def part1_gs_methods() -> None:
    print("=" * 72)
    print("Experiment 1 (paper Fig. 4): GS methods at fixed k, comm time 10")
    print("=" * 72)
    result = run_fig4(config())
    print(render_figure(result.loss_vs_time, height=16))
    print()
    summaries = compare_histories(result.histories)
    print(text_table(
        summaries[0].headers(), [s.row() for s in summaries],
    ))
    target = summaries[0].final_loss * 2
    speedups = speedup_at_target(result.histories, "always-send-all", target)
    print(f"\nspeedup vs always-send-all at loss {target:.3f}:")
    for name, s in speedups.items():
        print(f"  {name:<22} {'never reached' if s is None else f'{s:.1f}x'}")


def part2_adaptive_k() -> None:
    print()
    print("=" * 72)
    print("Experiment 2 (paper Fig. 5): online learning of k, comm time 10")
    print("=" * 72)
    result = run_fig5(config().with_overrides(num_rounds=150))
    print(render_figure(result.k_traces, height=14))
    print()
    summaries = compare_histories(result.histories)
    print(text_table(
        summaries[0].headers(), [s.row() for s in summaries],
    ))
    stability = result.k_stability()
    print("\nk-trace stability (std of the 2nd half — lower is steadier):")
    for name, std in sorted(stability.items(), key=lambda kv: kv[1]):
        print(f"  {name:<20} {std:.0f}")


if __name__ == "__main__":
    print(__doc__)
    part1_gs_methods()
    part2_adaptive_k()
    print("\nFull-scale versions: pytest benchmarks/ --benchmark-only -s")
