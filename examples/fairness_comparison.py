"""Fairness: FAB-top-k vs fairness-unaware bidirectional top-k.

The paper's FAB-top-k guarantees every client contributes at least
floor(k/N) gradient elements per round, so no client's data is silently
ignored — important under non-i.i.d. federations where one client's
gradients can dominate in magnitude.  This example builds exactly that
scenario (one client with rescaled features producing outsized gradients)
and prints the per-client contribution distribution for both schemes as a
text CDF, mirroring Fig. 4 (right) of the paper.

Run:  python examples/fairness_comparison.py
"""

import numpy as np

from repro.data.partition import partition_by_writer
from repro.data.synthetic import make_femnist_like
from repro.experiments.runner import contribution_cdf
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_mlp
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK
from repro.sparsify.fub_topk import FUBTopK


def run_scheme(sparsifier, num_rounds=100, dominant_scale=10.0):
    dataset = make_femnist_like(
        num_writers=12, samples_per_writer=25, num_classes=10,
        classes_per_writer=4, image_size=10, seed=3,
    )
    federation = partition_by_writer(dataset)
    # Client 0 produces much larger gradients than everyone else.
    federation.clients[0].x = federation.clients[0].x * dominant_scale
    model = make_mlp(dataset.feature_dim, 10, hidden=(24,), seed=3)
    timing = TimingModel(dimension=model.dimension, comm_time=10.0)
    trainer = FLTrainer(model, federation, sparsifier, timing=timing,
                        learning_rate=0.05, batch_size=16,
                        eval_every=num_rounds, seed=3)
    k = max(federation.num_clients, int(0.4 * model.dimension
                                        / federation.num_clients))
    trainer.run(num_rounds, k=k)
    return trainer.history.contribution_counts(), k, federation.num_clients


def ascii_cdf(totals: dict[int, int], width: int = 50) -> str:
    values, cdf = contribution_cdf(totals)
    lines = []
    vmax = values.max()
    for v, c in zip(values, cdf):
        bar = "#" * int(round(c * width))
        lines.append(f"  {v:>7.0f} elems |{bar:<{width}}| {c:.2f}")
    del vmax
    return "\n".join(lines)


def main() -> None:
    print(__doc__)
    for name, sparsifier in (("FAB-top-k (proposed)", FABTopK()),
                             ("FUB-top-k (baseline)", FUBTopK())):
        totals, k, n = run_scheme(sparsifier)
        floor = (k // n) * 100  # per-round floor x rounds
        print(f"\n=== {name}: k={k}, N={n}, "
              f"guaranteed floor {floor} elements over 100 rounds ===")
        print(ascii_cdf(totals))
        print(f"min client contribution: {min(totals.values())}, "
              f"max: {max(totals.values())}, "
              f"median: {np.median(list(totals.values())):.0f}")


if __name__ == "__main__":
    main()
