"""Quickstart: federated learning with FAB-top-k gradient sparsification.

Builds a small non-i.i.d. federation (writer-partitioned synthetic
FEMNIST-like data), trains an MLP with the paper's Algorithm 1 using
FAB-top-k sparsification, and prints the loss/accuracy trajectory along
with the communication saved versus sending dense gradients.

Run:  python examples/quickstart.py
"""

from repro.data.partition import partition_by_writer
from repro.data.synthetic import make_femnist_like
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_mlp
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK


def main(num_writers: int = 15, samples_per_writer: int = 30,
         num_rounds: int = 200, eval_every: int = 10) -> None:
    # 1. Data: 15 writers, each a client with its own handwriting style
    #    and a subset of classes (non-i.i.d., as in FEMNIST).
    dataset = make_femnist_like(
        num_writers=num_writers, samples_per_writer=samples_per_writer,
        num_classes=10, classes_per_writer=4, image_size=10, seed=0,
    )
    federation = partition_by_writer(dataset)
    print(f"{federation.num_clients} clients, "
          f"{federation.total_samples} samples, "
          f"non-iid degree {federation.non_iid_degree():.2f}")

    # 2. Model: an MLP; its flat dimension D is what sparsification acts on.
    model = make_mlp(input_dim=dataset.feature_dim, num_classes=10,
                     hidden=(32,), seed=0)
    print(f"model dimension D = {model.dimension}")

    # 3. Timing: computation = 1 per round, full-gradient exchange = 10.
    timing = TimingModel(dimension=model.dimension, comm_time=10.0)

    # 4. Train with k-element FAB-top-k GS (Algorithm 1 of the paper).
    k = max(2, int(0.4 * model.dimension / federation.num_clients))
    trainer = FLTrainer(
        model, federation, FABTopK(), timing=timing,
        learning_rate=0.05, batch_size=16, eval_every=eval_every, seed=0,
    )
    print(f"\ntraining with k = {k} "
          f"({100 * k / model.dimension:.1f}% of the gradient)\n")
    trainer.run(num_rounds=num_rounds, k=k)

    print(f"{'round':>6} {'time':>9} {'loss':>8} {'accuracy':>9}")
    for record in trainer.history:
        if record.loss == record.loss:  # evaluated rounds only
            acc = f"{record.accuracy:.3f}" if record.accuracy is not None else "-"
            print(f"{record.round_index:>6} {record.cumulative_time:>9.1f} "
                  f"{record.loss:>8.4f} {acc:>9}")

    dense_comm = num_rounds * timing.dense_round().communication
    sparse_comm = sum(
        timing.sparse_round(r.uplink_elements, r.downlink_elements).communication
        for r in trainer.history
    )
    print(f"\ncommunication: {sparse_comm:.0f} vs {dense_comm:.0f} "
          f"normalized time for dense ({100 * sparse_comm / dense_comm:.1f}%)")


if __name__ == "__main__":
    main()
