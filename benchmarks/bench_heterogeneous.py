"""Ablation: heterogeneous clients and straggler-avoiding sampling.

The paper's future-work remark (Section VI): with heterogeneous client
resources "it may be beneficial to select a subset of clients in each
training round".  This bench creates a federation where 1/4 of the
clients are 8x stragglers and compares: full participation, uniform
sampling, and fastest-biased sampling — measuring loss reached within a
fixed normalized-time budget.
"""

from benchmarks.conftest import bench_config
from repro.experiments.runner import build_federation, build_model, text_table
from repro.fl.trainer import FLTrainer
from repro.simulation.heterogeneous import (
    ClientProfile,
    ClientSampler,
    HeterogeneousTimingModel,
)
from repro.sparsify.fab_topk import FABTopK


def _profiles(num_clients: int):
    out = []
    for cid in range(num_clients):
        slow = 8.0 if cid % 4 == 0 else 1.0
        out.append(ClientProfile(cid, compute_factor=slow, comm_factor=slow))
    return out


def _run(config, mode: str, time_budget: float):
    model = build_model(config)
    federation = build_federation(config)
    profiles = _profiles(config.num_clients)
    timing = HeterogeneousTimingModel(
        model.dimension, comm_time=config.comm_time, profiles=profiles,
    )
    ids = [c.client_id for c in federation.clients]
    count = max(2, config.num_clients // 2)
    if mode == "full":
        sampler = None
    elif mode == "uniform":
        sampler = ClientSampler(ids, count=count, seed=config.seed)
    else:
        sampler = ClientSampler(ids, count=count, strategy="fastest-biased",
                                profiles=profiles, seed=config.seed)
    trainer = FLTrainer(model, federation, FABTopK(), timing=timing,
                        sampler=sampler,
                        learning_rate=config.learning_rate,
                        batch_size=config.batch_size,
                        eval_every=config.eval_every,
                        eval_max_samples=config.eval_max_samples,
                        seed=config.seed)
    k = max(2, int(0.4 * model.dimension / config.num_clients))
    while trainer.clock < time_budget:
        trainer.step(k)
    return trainer.history


def test_straggler_avoidance(benchmark, capsys):
    config = bench_config()
    time_budget = 400.0

    def run():
        return {
            mode: _run(config, mode, time_budget)
            for mode in ("full", "uniform", "fastest-biased")
        }

    histories = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for mode, history in histories.items():
        rows.append([
            mode,
            str(len(history)),
            f"{history.last_evaluated_loss:.4f}",
        ])
    with capsys.disabled():
        print(f"\n[Heterogeneous ablation] 25% of clients are 8x stragglers,"
              f" time budget {time_budget:.0f}")
        print(text_table(["participation", "rounds completed", "final loss"],
                         rows))

    # Avoiding stragglers completes more rounds in the same budget...
    assert len(histories["fastest-biased"]) > len(histories["full"])
    # ...and reaches a lower loss.
    assert (histories["fastest-biased"].last_evaluated_loss
            < histories["full"].last_evaluated_loss)
