"""Micro-benchmarks of the sparsifier kernels.

Measures the per-round server-selection cost of each GS scheme at a
dimension close to the paper's (D = 400k, N = 50 clients, k = 1000).
The paper quotes O(ND log D) for FAB-top-k's selection; these benches
confirm the kernels are far from being the simulation bottleneck.
"""

import numpy as np
import pytest

from repro.sparsify.base import ClientUpload, SparseVector
from repro.sparsify.fab_topk import FABTopK
from repro.sparsify.fub_topk import FUBTopK
from repro.sparsify.topk import top_k_indices
from repro.sparsify.unidirectional import UnidirectionalTopK

DIMENSION = 400_000
NUM_CLIENTS = 50
K = 1000


@pytest.fixture(scope="module")
def uploads():
    rng = np.random.default_rng(0)
    out = []
    for cid in range(NUM_CLIENTS):
        dense = rng.standard_normal(DIMENSION)
        idx = top_k_indices(dense, K)
        out.append(
            ClientUpload(
                client_id=cid,
                payload=SparseVector.from_dense(dense, idx),
                sample_count=100,
            )
        )
    return out


def test_client_topk_selection(benchmark):
    rng = np.random.default_rng(1)
    residual = rng.standard_normal(DIMENSION)
    result = benchmark(top_k_indices, residual, K)
    assert result.size == K


def test_fab_topk_server_selection(benchmark, uploads):
    sparsifier = FABTopK()
    result = benchmark(sparsifier.server_select, uploads, K, DIMENSION)
    assert result.indices.size == K
    # Fairness floor: every client contributed at least floor(k/N).
    assert min(result.contributions.values()) >= K // NUM_CLIENTS


def test_fub_topk_server_selection(benchmark, uploads):
    sparsifier = FUBTopK()
    result = benchmark(sparsifier.server_select, uploads, K, DIMENSION)
    assert result.indices.size == K


def test_unidirectional_server_selection(benchmark, uploads):
    sparsifier = UnidirectionalTopK()
    result = benchmark(sparsifier.server_select, uploads, K, DIMENSION)
    # Random uploads rarely collide: union close to k*N.
    assert result.indices.size > 0.9 * K * NUM_CLIENTS
