"""Ablation: empirical check of Assumption 2 on the real FL system.

The paper's online algorithm is derived under Assumption 2 (t(k, l)
convex in k, common minimizer across loss levels) but only remarks that
the algorithm works empirically without it.  This bench measures
t̂(k, band) over a k grid and reports each loss band's curve shape.
"""

from benchmarks.conftest import bench_config
from repro.experiments.assumption2 import run_assumption2
from repro.experiments.runner import text_table


def test_assumption2_measured_cost_shape(run_once, capsys):
    config = bench_config().with_overrides(comm_time=30.0, num_rounds=220)
    result = run_once(run_assumption2, config, num_bands=3)

    rows = []
    for i, (hi, lo) in enumerate(result.loss_bands):
        argmin = result.band_argmin(i)
        rows.append([
            f"{hi:.2f} -> {lo:.2f}",
            "-" if argmin is None else str(argmin),
            f"{result.convexity_score(i):.2f}",
        ])
    with capsys.disabled():
        print("\n[Assumption 2] measured t(k, l) over k grid "
              f"{result.k_grid} (comm time 30)")
        print(text_table(
            ["loss band", "argmin k", "convexity score"], rows,
        ))
        print(f"relative argmin spread across bands: "
              f"{result.argmin_spread():.2f}")

    # Each band's measured curve is predominantly convex over the grid.
    for i in range(len(result.loss_bands)):
        assert result.convexity_score(i) >= 0.5, f"band {i} far from convex"
    # The minimizing k stays in the same region across bands
    # (Assumption 2c holds approximately).
    assert result.argmin_spread() <= 0.9
