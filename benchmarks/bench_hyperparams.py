"""Ablation: Algorithm 3's hyper-parameters α and M_u.

DESIGN.md calls out the shrinking-interval mechanism as the design choice
distinguishing Algorithm 3 from Algorithm 2.  This bench sweeps the
widening coefficient α and the update window M_u on an Assumption-2 cost
oracle (β = 100 regime, small optimum) and reports regret and tail
fluctuation — showing the paper's α = 1.5, M_u = 20 sits in the flat part
of the sweep (the method is not fragile to these knobs).
"""

import numpy as np

from repro.experiments.runner import text_table
from repro.online.algorithm3 import AdaptiveSignOGD
from repro.online.interval import SearchInterval
from repro.simulation.cost import TimePerLossCost


def _drive(oracle, interval, alg, M):
    ks = []
    for m in range(1, M + 1):
        ks.append(alg.k)
        alg.update(oracle.sign(alg.k, m))
    regret = oracle.regret(ks, interval.kmin, interval.kmax)
    tail_std = float(np.std(ks[-M // 4:]))
    return regret, tail_std


def test_alpha_window_sweep(benchmark, capsys):
    interval = SearchInterval(1.0, 1001.0)
    oracle_seed = 3
    M = 1500

    def run():
        rows = []
        results = {}
        for alpha in (1.1, 1.5, 2.5):
            for window in (5, 20, 80):
                oracle = TimePerLossCost(dimension=1000, comm_time=100.0,
                                         round_scale_jitter=0.15,
                                         seed=oracle_seed)
                alg = AdaptiveSignOGD(interval, k1=800.0, alpha=alpha,
                                      update_window=window)
                regret, tail_std = _drive(oracle, interval, alg, M)
                results[(alpha, window)] = (regret, tail_std,
                                            len(alg.restart_rounds))
                rows.append([f"{alpha:g}", str(window), f"{regret:.1f}",
                             f"{tail_std:.1f}", str(len(alg.restart_rounds))])
        return rows, results

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[Hyper-parameter sweep] Algorithm 3 on synthetic cost, "
              f"M={M}, k* ≈ 22")
        print(text_table(
            ["alpha", "M_u", "regret", "k tail std", "restarts"], rows,
        ))

    # The paper's setting must be competitive: within 3x of the best
    # regret in the sweep and with low tail fluctuation.
    regrets = {key: val[0] for key, val in results.items()}
    best = min(regrets.values())
    assert regrets[(1.5, 20)] <= 3.0 * best
    # Every setting restarts at least once in this regime (the interval
    # genuinely shrinks), demonstrating the mechanism is active.
    assert all(val[2] >= 1 for val in results.values())
