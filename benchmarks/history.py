"""Bench trajectory recorder: BENCH_*.json -> BENCH_history.jsonl.

Each standalone benchmark appends its report to a ``BENCH_*.json``
snapshot; this module folds those snapshots into the append-only
``BENCH_history.jsonl`` trajectory that ``python -m repro.cli
bench-diff`` gates against.  Entries are fingerprint-deduplicated, so
both uses are idempotent:

* the bench mains call :func:`record_report` right after writing their
  snapshot, and
* ``PYTHONPATH=src python benchmarks/history.py`` backfills every
  report already committed in the ``BENCH_*.json`` files.
"""

from __future__ import annotations

import json
import pathlib

from repro.obs.export import append_bench_history, bench_history_entry

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"


def record_report(bench_path: pathlib.Path, report: dict,
                  history_path: pathlib.Path = HISTORY_PATH) -> int:
    """Append one just-measured report to the history; returns 0/1."""
    entry = bench_history_entry(bench_path.stem, report)
    return append_bench_history(history_path, [entry])


def backfill(root: pathlib.Path = REPO_ROOT,
             history_path: pathlib.Path = HISTORY_PATH) -> int:
    """Fold every committed ``BENCH_*.json`` report into the history."""
    entries = []
    for bench_path in sorted(root.glob("BENCH_*.json")):
        reports = json.loads(bench_path.read_text())
        for report in reports:
            entries.append(bench_history_entry(bench_path.stem, report))
    return append_bench_history(history_path, entries)


def main() -> None:
    added = backfill()
    total = sum(1 for _ in open(HISTORY_PATH, encoding="utf-8")) \
        if HISTORY_PATH.exists() else 0
    print(f"BENCH_history.jsonl: {added} entries added ({total} total)")


if __name__ == "__main__":
    main()
