"""Benchmark regenerating Fig. 1 — Assumption-1 validation.

Paper result: after every run reaches the target loss ψ and switches to a
common k, the loss trajectories are nearly identical regardless of the
pre-switch k'.  We report the post-switch curves and the maximum
cross-run deviation.
"""

from benchmarks.conftest import bench_config
from repro.experiments.fig1 import run_fig1
from repro.experiments.runner import text_table


def test_fig1_assumption1_validation(run_once, capsys):
    config = bench_config().with_overrides(num_rounds=80)
    dimension_probe_ks = None  # defaults: {D, D/4, D/40, D/400}
    result = run_once(
        run_fig1, config, pre_ks=dimension_probe_ks, post_rounds=60,
    )

    rows = []
    for series in result.figure.series:
        rows.append([
            series.label,
            f"{result.pre_rounds[int(series.label.split('=')[1])]}",
            f"{series.y[0]:.4f}",
            f"{series.y[len(series.y) // 2]:.4f}",
            f"{series.y[-1]:.4f}",
        ])
    with capsys.disabled():
        print("\n[Fig 1] post-switch loss trajectories (common k)")
        print(text_table(
            ["pre-switch k", "rounds to psi", "loss@switch", "loss@mid",
             "loss@end"],
            rows,
        ))
        print(f"max cross-run deviation: {result.max_deviation():.4f} "
              f"(psi={result.psi:.4f})")
        print(f"mean post-switch loss spread: "
              f"{result.mean_post_loss_spread():.4f}")

    # Assumption 1 at this scale: post-switch trajectories coincide to a
    # small fraction of the loss scale.
    assert result.max_deviation() < 0.35 * result.psi
