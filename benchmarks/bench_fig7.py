"""Benchmark regenerating Fig. 7 — cross-application of learned k
sequences across communication times (FEMNIST-like data).

Paper result: Algorithm 3 learns larger k for smaller β; replaying a
sequence learned at one β under a different β is worse than the matched
sequence (adaptation matters — "a single value (or sequence) of k does
not work well for all cases").
"""

from benchmarks.conftest import bench_config
from repro.experiments.fig7 import run_fig7
from repro.experiments.runner import text_table

COMM_TIMES = (0.1, 1.0, 10.0, 100.0)


def test_fig7_cross_application_femnist(run_once, capsys):
    config = bench_config().with_overrides(num_rounds=150)
    result = run_once(run_fig7, config, comm_times=COMM_TIMES,
                      learn_rounds=150)

    with capsys.disabled():
        print("\n[Fig 7] learned k vs communication time (femnist-like)")
        print(text_table(
            ["beta", "mean learned k"],
            [[f"{b:g}", f"{result.mean_k(b):.0f}"] for b in COMM_TIMES],
        ))
        print("\nreplay matrix: final loss of sequence (row) at beta (col)")
        headers = ["sequence \\ beta"] + [f"{b:g}" for b in COMM_TIMES]
        rows = []
        for seq_beta in COMM_TIMES:
            rows.append(
                [f"{seq_beta:g}"]
                + [f"{result.final_loss[(seq_beta, b)]:.3f}" for b in COMM_TIMES]
            )
        print(text_table(headers, rows))
        print("matched-sequence rank per beta (0=best):",
              {f"{b:g}": result.matched_sequence_rank(b) for b in COMM_TIMES})

    # Learned k decreases (weakly) as communication gets more expensive.
    assert result.mean_k(COMM_TIMES[0]) > result.mean_k(COMM_TIMES[-1])
    # At the extreme betas the matched sequence is at or near the top.
    assert result.matched_sequence_rank(COMM_TIMES[-1]) <= 1
    assert result.matched_sequence_rank(COMM_TIMES[0]) <= 1
