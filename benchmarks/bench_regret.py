"""Benchmark verifying Theorems 1 and 2 empirically.

Drives Algorithm 2 (exact and noisy signs) and Algorithm 3 against
synthetic Assumption-2 cost oracles and reports measured regret against
the theoretical bounds GB√(2M) and GHB√(2M), plus the √M growth exponent.
"""

import numpy as np

from repro.experiments.runner import text_table
from repro.online.algorithm2 import SignOGD
from repro.online.algorithm3 import AdaptiveSignOGD
from repro.online.interval import SearchInterval
from repro.online.regret import theorem1_bound, theorem2_bound
from repro.simulation.cost import NoisySignOracle, QuadraticCost, TimePerLossCost


def _drive(oracle, interval, M, algorithm, sign_source=None):
    ks = []
    for m in range(1, M + 1):
        ks.append(algorithm.k)
        algorithm.update((sign_source or oracle).sign(algorithm.k, m))
    return oracle.regret(ks, interval.kmin, interval.kmax)


def test_regret_vs_theoretical_bounds(benchmark, capsys):
    def run():
        interval = SearchInterval(1.0, 1001.0)
        rows = []
        M = 2000

        oracle = TimePerLossCost(dimension=1000, comm_time=10.0,
                                 round_scale_jitter=0.2, seed=0)
        regret = _drive(oracle, interval, M, SignOGD(interval, k1=800.0))
        bound = theorem1_bound(oracle.derivative_bound, interval.width, M)
        rows.append(["Alg2 exact sign (Thm 1)", f"{regret:.1f}", f"{bound:.1f}",
                     f"{regret / bound:.3f}"])

        noisy_regrets = []
        H = NoisySignOracle(oracle, 0.2).H
        for seed in range(5):
            noisy = NoisySignOracle(oracle, flip_probability=0.2, seed=seed)
            noisy_regrets.append(
                _drive(oracle, interval, M, SignOGD(interval, k1=800.0),
                       sign_source=noisy)
            )
        regret2 = float(np.mean(noisy_regrets))
        bound2 = theorem2_bound(oracle.derivative_bound, H, interval.width, M)
        rows.append(["Alg2 noisy sign (Thm 2)", f"{regret2:.1f}",
                     f"{bound2:.1f}", f"{regret2 / bound2:.3f}"])

        alg3 = AdaptiveSignOGD(interval, k1=800.0, alpha=1.5, update_window=20)
        regret3 = _drive(oracle, interval, M, alg3)
        rows.append(["Alg3 exact sign", f"{regret3:.1f}", f"{bound:.1f}",
                     f"{regret3 / bound:.3f}"])

        # Growth exponent: fit regret ~ M^p on the quadratic oracle.
        quad = QuadraticCost(k_star=200.0, kmax=1001.0, seed=1)
        Ms = [250, 1000, 4000]
        regs = []
        for M_i in Ms:
            regs.append(max(
                _drive(quad, interval, M_i, SignOGD(interval, k1=800.0)), 1e-9
            ))
        p = float(np.polyfit(np.log(Ms), np.log(regs), 1)[0])
        return rows, p, (regret, bound, regret2, bound2, regret3)

    rows, p, checks = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n[Regret] measured vs theoretical bounds (M=2000)")
        print(text_table(["setting", "regret", "bound", "ratio"], rows))
        print(f"regret growth exponent p (regret ~ M^p): {p:.2f}")

    regret, bound, regret2, bound2, regret3 = checks
    assert 0 <= regret <= bound
    assert regret2 <= bound2
    assert regret3 <= bound
    assert p < 0.8  # sublinear, consistent with O(sqrt(M))
