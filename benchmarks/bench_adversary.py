"""Robust-aggregation overhead: Byzantine defenses vs the plain mean.

A robust aggregator replaces one ``np.add.at`` accumulation with a
per-coordinate order statistic (one lexsort over the round's ragged
upload hits plus cumulative-sum arithmetic — see
``repro.fl.robust._CoordinateView``), so its cost must stay a thin
per-round constant over the mean path.  This benchmark measures exactly
that: rounds/second of the same attacked federation under each
aggregator, in the sparse (top-k) and dense (k = D) upload regimes —
dense rounds are where the statistic has the most work to do, sparse
rounds are the paper's operating point.

``aggregation_overhead`` per aggregator is ``mean_rate / rate − 1`` in
the same regime: the wall-clock premium of the defense.  The attack
itself (sign-flip corruption of designated uploads, a parent-side copy
of each poisoned payload) rides along in every cell including "mean",
so the comparison isolates aggregation, not corruption.

Run under the benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_adversary.py --benchmark-only -s

or standalone, appending to ``BENCH_adversary.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_adversary.py
"""

import json
import pathlib
import time

import pytest

from _hostmeta import host_metadata
from repro.data.partition import partition_by_writer
from repro.data.synthetic import make_femnist_like
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_mlp
from repro.scenarios import DeploymentScenario, ScenarioConfig
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK

NUM_CLIENTS = 24
MEASURE_ROUNDS = 60
AGGREGATORS = ("mean", "trimmed_mean", "median", "cosine")
REGIMES = ("sparse", "dense")
BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_adversary.json"
)


def build_trainer(aggregator: str):
    """Bench-scale federation under a 25% sign-flip attack.

    Availability is "always" with no deadline so every round aggregates
    the full 24-upload cohort — the aggregation path is the only thing
    the cells vary.
    """
    ds = make_femnist_like(
        num_writers=NUM_CLIENTS, samples_per_writer=25, num_classes=16,
        image_size=10, classes_per_writer=5, seed=0,
    )
    federation = partition_by_writer(ds, seed=0)
    model = make_mlp(100, 16, hidden=(16,), seed=0)
    config = ScenarioConfig(
        availability="always",
        adversary="sign_flip",
        adversary_fraction=0.25,
        aggregator=aggregator,
        seed=0,
    )
    ids = [c.client_id for c in federation.clients]
    profiles = config.build_profiles(ids)
    timing = TimingModel(dimension=model.dimension, comm_time=10.0)
    scenario = DeploymentScenario.build(config, ids, timing, profiles)
    trainer = FLTrainer(
        model, federation, FABTopK(), timing=timing, learning_rate=0.05,
        batch_size=16, eval_every=1_000_000, seed=0, scenario=scenario,
    )
    return trainer, scenario


def round_k(trainer: FLTrainer, regime: str) -> int:
    if regime == "dense":
        return trainer.model.dimension
    return max(2, int(0.4 * trainer.model.dimension / NUM_CLIENTS))


def measure(aggregator: str, regime: str, rounds: int = MEASURE_ROUNDS,
            repeats: int = 3):
    """Best-of-``repeats`` rounds/second plus the corruption count."""
    trainer, scenario = build_trainer(aggregator)
    k = round_k(trainer, regime)
    trainer.step(k)  # warmup (round 1 always evaluates)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(rounds):
            trainer.step(k)
        best = min(best, time.perf_counter() - start)
    corrupted = sum(scenario.stats.corrupted_by_client.values())
    return rounds / best, corrupted


@pytest.mark.parametrize("regime", REGIMES)
@pytest.mark.parametrize("aggregator", AGGREGATORS)
def test_adversary_round_throughput(benchmark, aggregator, regime):
    trainer, _ = build_trainer(aggregator)
    k = round_k(trainer, regime)
    trainer.step(k)  # warmup
    benchmark(trainer.step, k)


@pytest.mark.parametrize("aggregator", AGGREGATORS)
def test_attack_actually_fires(aggregator):
    """The overhead comparison is only meaningful under live corruption."""
    trainer, scenario = build_trainer(aggregator)
    trainer.run(3, k=round_k(trainer, "sparse"))
    assert scenario.stats.corrupted_by_client


def main() -> None:
    report = {"host": host_metadata(), "results": []}
    for regime in REGIMES:
        rates, corrupted = {}, {}
        for aggregator in AGGREGATORS:
            rates[aggregator], corrupted[aggregator] = measure(
                aggregator, regime
            )
        entry = {
            "regime": regime,
            "num_clients": NUM_CLIENTS,
            "rounds": MEASURE_ROUNDS,
            "adversary_fraction": 0.25,
            "rounds_per_second": {a: round(r, 2) for a, r in rates.items()},
            "aggregation_overhead": {
                a: round(rates["mean"] / rates[a] - 1.0, 4)
                for a in AGGREGATORS if a != "mean"
            },
            "corrupted_uploads": corrupted["mean"],
        }
        report["results"].append(entry)
        premiums = " | ".join(
            f"{a} {100 * entry['aggregation_overhead'][a]:+5.1f}%"
            for a in AGGREGATORS if a != "mean"
        )
        print(
            f"{regime:>6}: mean {rates['mean']:7.1f} r/s | {premiums}"
        )
    history = []
    if BENCH_PATH.exists():
        history = json.loads(BENCH_PATH.read_text())
    history.append(report)
    BENCH_PATH.write_text(json.dumps(history, indent=1))
    print(f"appended to {BENCH_PATH}")
    from history import record_report
    record_report(BENCH_PATH, report)


if __name__ == "__main__":
    main()
