"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation figures at a
reduced-but-faithful scale (see DESIGN.md §7) and prints the series the
figure plots, so `pytest benchmarks/ --benchmark-only -s` reproduces the
whole evaluation section.  Expensive experiment drivers run exactly once
per benchmark via ``benchmark.pedantic(..., rounds=1, iterations=1)``.
"""

import pytest

from repro.experiments.config import ExperimentConfig


def bench_config() -> ExperimentConfig:
    """The common benchmark-scale configuration.

    ~12 writers x 25 samples, 10 classes, D ≈ 3.5k, a few hundred rounds:
    small enough that the full figure suite finishes in minutes, large
    enough that the qualitative orderings of the paper emerge.
    """
    return ExperimentConfig(
        dataset="femnist",
        num_clients=24,
        samples_per_client=25,
        image_size=10,
        num_classes=16,
        classes_per_writer=5,
        hidden=(16,),
        learning_rate=0.05,
        batch_size=16,
        comm_time=10.0,
        num_rounds=150,
        eval_every=5,
        eval_max_samples=300,
        seed=0,
    )


def cifar_bench_config() -> ExperimentConfig:
    return ExperimentConfig(
        dataset="cifar",
        num_clients=10,
        samples_per_client=25,
        image_size=8,
        num_classes=10,
        hidden=(16,),
        learning_rate=0.05,
        batch_size=16,
        comm_time=10.0,
        num_rounds=120,
        eval_every=5,
        eval_max_samples=250,
        seed=0,
    )


@pytest.fixture
def run_once(benchmark):
    """Run an expensive experiment exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
