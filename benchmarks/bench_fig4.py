"""Benchmark regenerating Fig. 4 — GS methods at fixed k, β = 10.

Paper result: FAB-top-k attains the lowest loss / highest accuracy versus
normalized time; FUB-top-k is close behind but starves some clients
(contribution CDF reaching zero), while periodic-k, comm-matched FedAvg,
and always-send-all trail clearly.
"""

from benchmarks.conftest import bench_config
from repro.experiments.fig4 import run_fig4
from repro.experiments.runner import text_table


def test_fig4_gs_method_comparison(run_once, capsys):
    config = bench_config().with_overrides(num_rounds=250)
    result = run_once(run_fig4, config)

    budget = result.histories["fab-top-k"].total_time
    checkpoints = [budget * f for f in (0.25, 0.5, 1.0)]
    rows = []
    for method, history in result.histories.items():
        losses = [f"{result.loss_at_time(t)[method]:.4f}" for t in checkpoints]
        accs = [a for a in history.accuracies()]
        rows.append([
            method,
            *losses,
            f"{accs[-1]:.3f}" if accs else "-",
            str(result.min_client_contribution(method)),
        ])
    with capsys.disabled():
        print(f"\n[Fig 4] GS methods, k={result.k}, comm time=10")
        print(text_table(
            ["method", "loss@25%t", "loss@50%t", "loss@100%t",
             "final acc", "min client contrib"],
            rows,
        ))
        print("ranking at full budget:", " > ".join(result.ranking_at_time(budget)))

    final = result.loss_at_time(budget)
    # Paper's orderings at β=10:
    assert final["fab-top-k"] < final["periodic-k"]
    assert final["fab-top-k"] < final["fedavg"]
    assert final["fab-top-k"] < final["always-send-all"]
    assert final["fub-top-k"] < final["always-send-all"]
    # Fairness floor: FAB guarantees every client contributes; FUB can
    # starve clients (or at best matches FAB).
    assert result.min_client_contribution("fab-top-k") > 0
    assert (
        result.min_client_contribution("fab-top-k")
        >= result.min_client_contribution("fub-top-k")
    )
