"""Ablation: measured top-k contraction of real FL gradients vs theory.

The convergence analyses the paper points at ([29]) rest on the top-k
contraction bound (1 − k/D).  This bench collects actual round gradients
from a federated run and reports how much better they contract — real
gradients are heavy-tailed, which is the empirical reason top-k GS keeps
nearly all the signal at tiny k/D.
"""

import numpy as np

from benchmarks.conftest import bench_config
from repro.analysis.contraction import empirical_contraction
from repro.experiments.runner import build_federation, build_model, text_table
from repro.fl.diagnostics import gradient_concentration


def test_gradient_contraction_vs_bound(benchmark, capsys):
    config = bench_config()

    def run():
        model = build_model(config)
        federation = build_federation(config)
        gradients = []
        # Collect gradients along an actual optimization trajectory.
        for _ in range(20):
            x, y = federation.global_pool()
            grad, _ = model.gradient(x, y)
            model.set_weights(model.get_weights() - 0.05 * grad)
            gradients.append(grad)
        rows = []
        stats_small = None
        for fraction in (0.005, 0.02, 0.1):
            k = max(1, int(fraction * model.dimension))
            stats = empirical_contraction(gradients, k)
            if fraction == 0.005:
                stats_small = stats
            rows.append([
                f"{fraction:.1%}", str(k),
                f"{stats['mean']:.3f}", f"{stats['max']:.3f}",
                f"{stats['bound']:.3f}",
            ])
        concentration = gradient_concentration(gradients[0],
                                               fractions=(0.01, 0.1))
        return rows, stats_small, concentration

    rows, stats_small, concentration = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n[Contraction] ||g - top_k(g)||^2 / ||g||^2 on real FL "
              "gradients (20 rounds)")
        print(text_table(
            ["k/D", "k", "measured mean", "measured max", "worst-case bound"],
            rows,
        ))
        print(f"top-1% of |g| carries {concentration[0.01]:.1%} of the mass; "
              f"top-10% carries {concentration[0.1]:.1%}")

    # Real gradients must contract strictly better than the worst case —
    # the heavy-tail advantage top-k GS exploits.
    assert stats_small is not None
    assert stats_small["max"] < stats_small["bound"]
    assert np.isfinite(stats_small["mean"])