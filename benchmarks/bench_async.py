"""Async commit engine: commit throughput + staleness distribution.

The asynchronous engine (:mod:`repro.fl.async_engine`) replaces the
round barrier with an event queue of virtual arrivals; its wall-clock
cost per commit must stay comparable to a plain synchronous round — the
queue, the staleness discounts, and (in adaptive mode) the exponent
probe all run parent-side on top of the same backend ``local_steps``
call.  This benchmark measures commits/second per backend for:

- ``sync-equivalence`` — the full-cohort barrier with the identity
  discount (bit-identical histories to the plain trainer; its cost over
  a plain round prices the event queue itself);
- ``constant`` / ``polynomial`` — buffered commits (half the cohort per
  commit) under the fixed discounts;
- ``adaptive`` — the same plus the learned-exponent counterfactual
  probe (one extra aggregation and up to two evaluation-pool losses per
  stale commit, no extra client communication).

Each buffered mode also reports its realized staleness trace (mean/max
of per-commit mean staleness) and the final virtual clock — a run whose
staleness is identically zero is not exercising the async path at all.

Run under the benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_async.py --benchmark-only -s

or standalone, appending to ``BENCH_async.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_async.py
"""

import json
import pathlib
import time

import pytest

from _hostmeta import host_metadata
from repro.data.partition import partition_by_writer
from repro.data.synthetic import make_femnist_like
from repro.fl.async_engine import AsyncFLTrainer
from repro.nn.models import make_mlp
from repro.scenarios import ScenarioConfig
from repro.simulation.heterogeneous import HeterogeneousTimingModel
from repro.sparsify.fab_topk import FABTopK

NUM_CLIENTS = 24
#: buffered modes commit after half the cohort — stragglers arrive stale
COMMIT_COUNT = NUM_CLIENTS // 2
MEASURE_COMMITS = 60
BACKENDS = ("serial", "vectorized")
MODES = ("sync-equivalence", "constant", "polynomial", "adaptive")
BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_async.json"
)


def build_trainer(backend: str, mode: str) -> AsyncFLTrainer:
    """Bench-scale federation with a 25% straggler population at 4x.

    Heterogeneous profiles are what make arrivals reorder — without
    them every commit batch would be staleness-free and the discounts
    (and the adaptive probe) would never run.
    """
    ds = make_femnist_like(
        num_writers=NUM_CLIENTS, samples_per_writer=25, num_classes=16,
        image_size=10, classes_per_writer=5, seed=0,
    )
    federation = partition_by_writer(ds, seed=0)
    model = make_mlp(100, 16, hidden=(16,), seed=0)
    profiles = ScenarioConfig(
        availability="always", slow_fraction=0.25, slow_factor=4.0, seed=0,
    ).build_profiles([c.client_id for c in federation.clients])
    timing = HeterogeneousTimingModel(
        model.dimension, comm_time=10.0, profiles=profiles
    )
    extra = (
        dict(synchronous=True) if mode == "sync-equivalence"
        else dict(discount=mode, commit_count=COMMIT_COUNT)
    )
    return AsyncFLTrainer(
        model, federation, FABTopK(), timing=timing, learning_rate=0.05,
        batch_size=16, eval_every=1_000_000, seed=0, backend=backend,
        profiles=profiles, **extra,
    )


def round_k(trainer: AsyncFLTrainer) -> int:
    return max(2, int(0.4 * trainer.model.dimension / NUM_CLIENTS))


def measure(backend: str, mode: str, commits: int = MEASURE_COMMITS,
            repeats: int = 3):
    """Best-of-``repeats`` commits/second plus the staleness trace."""
    trainer = build_trainer(backend, mode)
    k = round_k(trainer)
    trainer.step(k)  # warmup (round 1 always evaluates)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(commits):
            trainer.step(k)
        best = min(best, time.perf_counter() - start)
    trace = trainer.staleness_history
    stats = {
        "staleness_mean": round(sum(trace) / len(trace), 4),
        "staleness_peak": round(max(trace), 4),
        "virtual_clock": round(trainer.virtual_clock, 2),
    }
    if trainer.discount.adaptive:
        stats["final_exponent"] = round(
            trainer.discount.exponent_history[-1], 4
        )
    return commits / best, stats


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_async_commit_throughput(benchmark, backend, mode):
    trainer = build_trainer(backend, mode)
    k = round_k(trainer)
    trainer.step(k)  # warmup
    benchmark(trainer.step, k)


@pytest.mark.parametrize("backend", BACKENDS)
def test_async_actually_stale(backend):
    """The discount comparison is only meaningful if staleness occurs."""
    trainer = build_trainer(backend, "constant")
    trainer.run(8, k=round_k(trainer))
    assert max(trainer.staleness_history) > 0


def main() -> None:
    report = {"host": host_metadata(), "results": []}
    for backend in BACKENDS:
        rates, stats = {}, {}
        for mode in MODES:
            rates[mode], stats[mode] = measure(backend, mode)
        report["results"].append({
            "backend": backend,
            "num_clients": NUM_CLIENTS,
            "commit_count": COMMIT_COUNT,
            "commits": MEASURE_COMMITS,
            "commits_per_second": {m: round(r, 2) for m, r in rates.items()},
            "adaptive_overhead": round(
                rates["constant"] / rates["adaptive"] - 1.0, 4
            ),
            "staleness": {m: stats[m] for m in MODES if m in stats},
        })
        print(
            f"{backend:>10}: sync-eq {rates['sync-equivalence']:7.1f} c/s | "
            f"constant {rates['constant']:7.1f} c/s "
            f"(stale mean {stats['constant']['staleness_mean']:.2f}, "
            f"peak {stats['constant']['staleness_peak']:.0f}) | "
            f"adaptive {rates['adaptive']:7.1f} c/s "
            f"(a_final {stats['adaptive']['final_exponent']:.3f})"
        )
    history = []
    if BENCH_PATH.exists():
        history = json.loads(BENCH_PATH.read_text())
    history.append(report)
    BENCH_PATH.write_text(json.dumps(history, indent=1))
    print(f"appended to {BENCH_PATH}")
    from history import record_report
    record_report(BENCH_PATH, report)


if __name__ == "__main__":
    main()
