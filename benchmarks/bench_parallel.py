"""Parallel subsystem throughput: sharded backend scaling + sweep cache.

Two measurements, both appended (with host metadata) to
``BENCH_parallel.json`` at the repo root:

1. **Rounds/sec vs worker count** — the 96-client bench-scale federation
   of ``bench_engine.py`` run under ``SerialBackend`` and under
   ``ShardedBackend`` at 2 and 4 workers.  The backends produce
   bit-identical histories (tests/test_engine.py), so this is purely
   wall-clock; the recorded ``usable_cpus`` decides whether a speedup is
   even possible (a 1-core container timeshares the workers and the
   sharded numbers go *down* — that is the honest reading, not a bug).
2. **Sweep wall-clock: cold vs cached** — a small figure grid run cold
   into a fresh results store, then re-run; the second pass must be
   served entirely from the cache.

Run under the benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py --benchmark-only -s

or standalone to append to ``BENCH_parallel.json``::

    PYTHONPATH=src python benchmarks/bench_parallel.py
"""

import json
import pathlib
import tempfile
import time

import pytest

from _hostmeta import host_metadata
from bench_engine import build_trainer, round_k
from repro.data.partition import partition_by_writer
from repro.data.synthetic import make_femnist_like
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_mlp
from repro.parallel.sharded import ShardedBackend
from repro.parallel.sweep import SweepSpec, run_sweep
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK

NUM_CLIENTS = 96
WORKER_COUNTS = (2, 4)
MEASURE_ROUNDS = 40
SWEEP_SPEC = SweepSpec(figures=("fig1", "fig6"), scales=("smoke",), rounds=10)
BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
)


def build_sharded_trainer(jobs: int) -> FLTrainer:
    """The bench_engine federation on a forced ``jobs``-worker pool."""
    trainer = build_trainer(NUM_CLIENTS, ShardedBackend(jobs=jobs))
    return trainer


def measure_rounds_per_second(backend_spec, rounds: int = MEASURE_ROUNDS,
                              repeats: int = 3) -> float:
    """Best-of-``repeats`` whole-round throughput for one backend spec."""
    if isinstance(backend_spec, int):
        trainer = build_sharded_trainer(backend_spec)
    else:
        trainer = build_trainer(NUM_CLIENTS, backend_spec)
    k = round_k(trainer, NUM_CLIENTS)
    trainer.step(k)  # warmup: first round evaluates + spawns the pool
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(rounds):
            trainer.step(k)
        best = min(best, time.perf_counter() - start)
    trainer.close()
    return rounds / best


def measure_sweep() -> dict:
    """Cold sweep vs fully cached re-run on a throwaway store."""
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        cache = pathlib.Path(tmp) / "cache"
        start = time.perf_counter()
        cold = run_sweep(SWEEP_SPEC, cache_dir=cache, jobs=2)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_sweep(SWEEP_SPEC, cache_dir=cache, jobs=2)
        warm_seconds = time.perf_counter() - start
    assert cold.computed == len(cold.results) and warm.cached == len(warm.results)
    return {
        "units": len(cold.results),
        "cold_seconds": round(cold_seconds, 4),
        "cached_seconds": round(warm_seconds, 4),
        "cached_fraction_of_cold": round(warm_seconds / cold_seconds, 4),
    }


@pytest.mark.parametrize("jobs", WORKER_COUNTS)
def test_sharded_round_throughput(benchmark, jobs):
    trainer = build_sharded_trainer(jobs)
    k = round_k(trainer, NUM_CLIENTS)
    trainer.step(k)  # warmup
    benchmark(trainer.step, k)
    trainer.close()


def test_sharded_agrees_with_serial_at_scale():
    """The throughput comparison is only meaningful if results match."""
    serial = build_trainer(NUM_CLIENTS, "serial")
    sharded = build_sharded_trainer(2)
    k = round_k(serial, NUM_CLIENTS)
    hs = serial.run(3, k=k)
    hh = sharded.run(3, k=k)
    sharded.close()
    assert [r.cumulative_time for r in hs] == [r.cumulative_time for r in hh]
    assert [r.loss for r in hs][:1] == [r.loss for r in hh][:1]


def main() -> None:
    report = {
        "host": host_metadata(),
        "rounds": MEASURE_ROUNDS,
        "num_clients": NUM_CLIENTS,
        "results": {},
    }
    serial_rate = measure_rounds_per_second("serial")
    rates = {"serial": serial_rate}
    print(f"N={NUM_CLIENTS}: serial {serial_rate:7.1f} r/s")
    for jobs in WORKER_COUNTS:
        rate = measure_rounds_per_second(jobs)
        rates[f"sharded-{jobs}"] = rate
        print(
            f"N={NUM_CLIENTS}: sharded x{jobs} {rate:7.1f} r/s | "
            f"speedup {rate / serial_rate:.2f}x"
        )
    report["results"]["rounds_per_second"] = {
        name: round(rate, 2) for name, rate in rates.items()
    }
    report["results"]["sharded_speedup"] = {
        f"jobs={jobs}": round(rates[f"sharded-{jobs}"] / serial_rate, 3)
        for jobs in WORKER_COUNTS
    }

    sweep = measure_sweep()
    report["results"]["sweep"] = sweep
    print(
        f"sweep ({sweep['units']} units): cold {sweep['cold_seconds']:.2f}s | "
        f"cached {sweep['cached_seconds']:.3f}s "
        f"({100 * sweep['cached_fraction_of_cold']:.1f}% of cold)"
    )

    history = []
    if BENCH_PATH.exists():
        history = json.loads(BENCH_PATH.read_text())
    history.append(report)
    BENCH_PATH.write_text(json.dumps(history, indent=1))
    print(f"appended to {BENCH_PATH}")
    from history import record_report
    record_report(BENCH_PATH, report)


if __name__ == "__main__":
    main()
