"""Host metadata stamped into the standalone benchmark reports.

``BENCH_engine.json`` / ``BENCH_parallel.json`` accumulate one entry per
benchmark run across PRs; without knowing *where* each entry ran (CPU
count above all — the parallel numbers are meaningless without it) the
trajectory cannot be compared.  Import as a sibling module: both pytest
(rootdir insertion) and standalone ``python benchmarks/bench_*.py``
(script-directory insertion) put this directory on ``sys.path``.
"""

from __future__ import annotations

import os
import platform
import sys
from datetime import datetime, timezone

import numpy

from repro.parallel.pool import default_worker_count


def host_metadata() -> dict:
    """Everything needed to interpret a benchmark entry later."""
    usable_cpus = default_worker_count()
    return {
        "timestamp_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count() or 1,
        "usable_cpus": usable_cpus,
    }
