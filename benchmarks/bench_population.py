"""Population-scale rounds: O(cohort) time and O(ever-sampled) memory.

The virtual-population path (:class:`repro.data.virtual.
VirtualFederation` + :mod:`repro.simulation.population`) claims that a
churn+deadline scenario over N = 1,000,000 clients costs per round what
a cohort costs — client datasets, residuals, availability chains and
straggler profiles all regenerate from ``(seed, client_id)`` on demand,
so nothing is ever enumerated over N.  This benchmark prices exactly
that claim:

- a 3-round churn+deadline run at N = 10^6 with a fixed cohort, with
  peak RSS recorded against the *eager extrapolation* (the measured
  per-client footprint of one materialized client times N — what
  building the federation eagerly would take).  The acceptance line is
  a >= 100x gap.
- the same fixed-cohort run at two population sizes an order of
  magnitude apart; per-round wall-clock must not scale with N (recorded
  as the ratio of per-round times, expected ~1).

Run standalone, appending to ``BENCH_population.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_population.py

or under pytest (assertion-only, smaller N so the suite stays quick)::

    PYTHONPATH=src python -m pytest benchmarks/bench_population.py -s
"""

import json
import pathlib
import resource
import sys
import time

from _hostmeta import host_metadata
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    build_federation,
    build_model,
    build_scenario,
)
from repro.fl.trainer import FLTrainer
from repro.scenarios import ScenarioConfig
from repro.sparsify.fab_topk import FABTopK

POPULATION = 1_000_000
COHORT = 16
ROUNDS = 3
BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_population.json"
)


def population_config(population: int) -> ExperimentConfig:
    """Churn + cycling deadline over a virtual femnist-like population."""
    scenario = ScenarioConfig.default_churn().with_overrides(
        participants=COHORT, over_selection=0.25, seed=0
    )
    return ExperimentConfig(
        population=population,
        samples_per_client=25,
        image_size=10,
        num_classes=16,
        classes_per_writer=5,
        hidden=(16,),
        learning_rate=0.05,
        batch_size=16,
        eval_every=1_000_000,  # price the rounds, not the eval pool
        scenario=scenario.to_dict(),
        seed=0,
    )


def build_trainer(population: int) -> tuple[FLTrainer, object]:
    config = population_config(population)
    federation = build_federation(config)
    model = build_model(config)
    timing, scenario = build_scenario(config, [], model.dimension)
    trainer = FLTrainer(
        model, federation, FABTopK(), timing=timing,
        learning_rate=config.learning_rate, batch_size=config.batch_size,
        eval_every=config.eval_every, seed=config.seed, scenario=scenario,
    )
    return trainer, scenario


def peak_rss_bytes() -> int:
    """Process peak RSS; ru_maxrss is KiB on Linux, bytes on macOS."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


def eager_client_bytes(trainer: FLTrainer) -> int:
    """Measured per-client footprint an eager federation would multiply.

    One materialized client's sample arrays plus the dense residual the
    engine keeps per client (the momentum buffer, quantization state
    etc. only widen the gap; this is the conservative floor).
    """
    dataset = trainer.engine.federation.client_dataset(0)
    arrays = dataset.x.nbytes + dataset.y.nbytes
    residual = trainer.model.dimension * 8
    return arrays + residual


def run_rounds(population: int, rounds: int = ROUNDS):
    """(per-round seconds, ever-touched count, drop stats) of one run."""
    trainer, scenario = build_trainer(population)
    k = max(2, int(0.4 * trainer.model.dimension / COHORT))
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        trainer.step(k)
        times.append(time.perf_counter() - start)
    touched = len(trainer.engine.clients)
    stats = scenario.stats
    per_client = eager_client_bytes(trainer)
    return times, touched, stats, per_client


# ----------------------------------------------------------------------
# pytest entry points (reduced N so the suite stays interactive)
# ----------------------------------------------------------------------
def test_rounds_touch_cohort_not_population():
    times, touched, stats, _ = run_rounds(200_000)
    # ever-touched is bounded by cohort x rounds (over-selection incl.)
    assert touched <= int(COHORT * 1.25) * ROUNDS
    assert stats.total_arrived > 0


def test_round_time_independent_of_population():
    small_times, _, _, _ = run_rounds(100_000)
    large_times, _, _, _ = run_rounds(1_000_000)
    # Skip round 1 (both pay one-off warmup); later rounds must not
    # scale with N.  Generous 3x guard: this is a smoke assertion, the
    # standalone report records the real ratio.
    assert min(large_times[1:]) < 3.0 * max(small_times[1:]) + 0.05


def test_memory_stays_far_below_eager_extrapolation():
    _, touched, _, per_client = run_rounds(200_000)
    eager = per_client * 200_000
    assert peak_rss_bytes() * 10 < eager  # >=10x at N=2e5; ~100x at 1e6


def main() -> None:
    entry = {"host": host_metadata(), "results": []}

    # Wall-clock vs N at fixed cohort: N and 10N, same cohort/rounds.
    small_pop = POPULATION // 10
    small_times, small_touched, _, _ = run_rounds(small_pop)

    times, touched, stats, per_client = run_rounds(POPULATION)
    rss = peak_rss_bytes()
    eager = per_client * POPULATION
    # Steady-state per-round time (round 1 pays pool/eval warmup).
    steady = min(times[1:])
    steady_small = min(small_times[1:])
    scaling_ratio = steady / steady_small

    entry["results"].append({
        "population": POPULATION,
        "cohort": COHORT,
        "rounds": ROUNDS,
        "round_seconds": [round(t, 4) for t in times],
        "steady_round_seconds": round(steady, 4),
        "ever_touched_clients": touched,
        "total_arrived": stats.total_arrived,
        "total_dropped": stats.total_dropped,
        "peak_rss_bytes": rss,
        "eager_per_client_bytes": per_client,
        "eager_extrapolated_bytes": eager,
        "rss_vs_eager_ratio": round(eager / rss, 1),
        "small_population": small_pop,
        "small_steady_round_seconds": round(steady_small, 4),
        "small_ever_touched_clients": small_touched,
        "round_time_scaling_10x_population": round(scaling_ratio, 3),
    })

    print(
        f"N={POPULATION:,}: {ROUNDS} churn+deadline rounds, cohort {COHORT}"
        f" -> touched {touched} clients, steady round {steady * 1e3:.1f} ms"
    )
    print(
        f"peak RSS {rss / 1e6:.1f} MB vs eager extrapolation "
        f"{eager / 1e9:.1f} GB ({eager / rss:.0f}x headroom)"
    )
    print(
        f"round time at 10x population: {scaling_ratio:.2f}x "
        f"({steady_small * 1e3:.1f} ms at N={small_pop:,})"
    )
    assert eager >= 100 * rss, "memory acceptance: >=100x below eager"

    history = []
    if BENCH_PATH.exists():
        history = json.loads(BENCH_PATH.read_text())
    history.append(entry)
    BENCH_PATH.write_text(json.dumps(history, indent=1))
    print(f"appended to {BENCH_PATH}")
    from history import record_report
    record_report(BENCH_PATH, entry)


if __name__ == "__main__":
    main()
