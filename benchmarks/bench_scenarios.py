"""Deployment-scenario overhead: scenario-wrapped vs plain rounds.

The scenario subsystem (availability gating, deadline verdicts, delivery
stats) runs entirely in the parent process on top of whatever execution
backend computes the gradients, so its cost must be a thin per-round
constant — this benchmark measures exactly that: rounds/second of the
same engine with and without a churn+deadline scenario, on the serial
and vectorized backends, plus the realized drop rate (a scenario that
never drops measures nothing).

Reading ``scenario_overhead``: it is the *net* wall-clock delta of the
wrapped run, and is typically **negative** — availability churn and the
deadline gate shrink the per-round cohort, so selection/aggregation
process fewer uploads and rounds get cheaper.  The gate's own cost is
bounded by how far the number stays above the pure cohort-size ratio;
a large positive value is the regression signal.

The ``adaptive`` mode additionally prices the online-learned deadline
(:class:`repro.scenarios.deadline.AdaptiveDeadlinePolicy`): its per
round extras are the counterfactual gate replay, one probe aggregation,
and up to two evaluation-pool loss evaluations — all parent-side, no
extra client communication.  The report records the learned deadline's
final value alongside the throughput so a policy that stopped adapting
is visible.

Run under the benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_scenarios.py --benchmark-only -s

or standalone, appending to ``BENCH_scenarios.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_scenarios.py
"""

import json
import pathlib
import time

import pytest

from _hostmeta import host_metadata
from repro.data.partition import partition_by_writer
from repro.data.synthetic import make_femnist_like
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_mlp
from repro.scenarios import DeploymentScenario, ScenarioConfig
from repro.simulation.heterogeneous import HeterogeneousTimingModel
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK

NUM_CLIENTS = 24
MEASURE_ROUNDS = 60
BACKENDS = ("serial", "vectorized")
MODES = ("plain", "scenario", "adaptive")
BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"
)


def build_trainer(backend: str, mode: str):
    """Bench-scale federation, optionally wrapped in the default churn.

    The scenario over-selects a 20-client cohort against a 16-upload
    target under the default cycling deadline, so every tight round pays
    the full gate: finish times, verdict, filtering, stats.
    """
    ds = make_femnist_like(
        num_writers=NUM_CLIENTS, samples_per_writer=25, num_classes=16,
        image_size=10, classes_per_writer=5, seed=0,
    )
    federation = partition_by_writer(ds, seed=0)
    model = make_mlp(100, 16, hidden=(16,), seed=0)
    scenario = None
    if mode in ("scenario", "adaptive"):
        config = ScenarioConfig.default_churn().with_overrides(
            participants=16, over_selection=0.25, seed=0,
        )
        if mode == "adaptive":
            config = config.with_overrides(deadline_policy="adaptive")
        ids = [c.client_id for c in federation.clients]
        profiles = config.build_profiles(ids)
        timing = HeterogeneousTimingModel(
            model.dimension, comm_time=10.0, profiles=profiles
        )
        scenario = DeploymentScenario.build(config, ids, timing, profiles)
    else:
        timing = TimingModel(dimension=model.dimension, comm_time=10.0)
    trainer = FLTrainer(
        model, federation, FABTopK(), timing=timing, learning_rate=0.05,
        batch_size=16, eval_every=1_000_000, seed=0, backend=backend,
        scenario=scenario,
    )
    return trainer, scenario


def round_k(trainer: FLTrainer) -> int:
    return max(2, int(0.4 * trainer.model.dimension / NUM_CLIENTS))


def measure(backend: str, mode: str, rounds: int = MEASURE_ROUNDS,
            repeats: int = 3):
    """Best-of-``repeats`` rounds/second, drop rate, learned deadline."""
    trainer, scenario = build_trainer(backend, mode)
    k = round_k(trainer)
    trainer.step(k)  # warmup (round 1 always evaluates)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(rounds):
            trainer.step(k)
        best = min(best, time.perf_counter() - start)
    drop_rate = 0.0
    final_deadline = None
    if scenario is not None:
        stats = scenario.stats
        total = stats.total_arrived + stats.total_dropped
        drop_rate = stats.total_dropped / total if total else 0.0
        schedule = scenario.hooks.policy.schedule
        if schedule.adaptive:
            final_deadline = schedule.deadline_history[-1]
    return rounds / best, drop_rate, final_deadline


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_scenario_round_throughput(benchmark, backend, mode):
    trainer, _ = build_trainer(backend, mode)
    k = round_k(trainer)
    trainer.step(k)  # warmup
    benchmark(trainer.step, k)


@pytest.mark.parametrize("mode", ("scenario", "adaptive"))
@pytest.mark.parametrize("backend", BACKENDS)
def test_scenario_actually_drops(backend, mode):
    """The overhead comparison is only meaningful if the gate fires."""
    trainer, scenario = build_trainer(backend, mode)
    trainer.run(6, k=round_k(trainer))
    assert scenario is not None and scenario.stats.total_dropped > 0


def main() -> None:
    report = {"host": host_metadata(), "results": []}
    for backend in BACKENDS:
        rates, drops, deadlines = {}, {}, {}
        for mode in MODES:
            rates[mode], drops[mode], deadlines[mode] = measure(
                backend, mode
            )
        overhead = rates["plain"] / rates["scenario"] - 1.0
        adaptive_overhead = rates["plain"] / rates["adaptive"] - 1.0
        report["results"].append({
            "backend": backend,
            "num_clients": NUM_CLIENTS,
            "rounds": MEASURE_ROUNDS,
            "rounds_per_second": {m: round(r, 2) for m, r in rates.items()},
            "scenario_overhead": round(overhead, 4),
            "scenario_drop_rate": round(drops["scenario"], 4),
            "adaptive_overhead": round(adaptive_overhead, 4),
            "adaptive_drop_rate": round(drops["adaptive"], 4),
            "adaptive_final_deadline": round(deadlines["adaptive"], 4),
        })
        print(
            f"{backend:>10}: plain {rates['plain']:7.1f} r/s | "
            f"scenario {rates['scenario']:7.1f} r/s | "
            f"overhead {100 * overhead:5.1f}% | "
            f"drop rate {100 * drops['scenario']:4.1f}% | "
            f"adaptive {rates['adaptive']:7.1f} r/s "
            f"({100 * adaptive_overhead:+5.1f}%, "
            f"d_final {deadlines['adaptive']:.2f})"
        )
    history = []
    if BENCH_PATH.exists():
        history = json.loads(BENCH_PATH.read_text())
    history.append(report)
    BENCH_PATH.write_text(json.dumps(history, indent=1))
    print(f"appended to {BENCH_PATH}")
    from history import record_report
    record_report(BENCH_PATH, report)


if __name__ == "__main__":
    main()
