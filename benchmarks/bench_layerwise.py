"""Ablation: layer-wise vs global top-k selection at equal budget k.

The paper cites layer-wise adaptive sparsification [26], [27] as
orthogonal/complementary.  This bench compares global FAB-top-k against
the two layer-wise budget splits (proportional and magnitude-adaptive) at
the same total k, plus the DGC momentum-correction variant, all under the
same normalized-time accounting.
"""

from benchmarks.conftest import bench_config
from repro.experiments.runner import build_federation, build_model, build_timing, text_table
from repro.fl.trainer import FLTrainer
from repro.sparsify.fab_topk import FABTopK
from repro.sparsify.layerwise import LayerwiseTopK


def _run(config, variant: str, num_rounds: int):
    model = build_model(config)
    federation = build_federation(config)
    timing = build_timing(config, model.dimension)
    momentum = 0.0
    if variant == "global":
        sparsifier = FABTopK()
    elif variant == "global+dgc":
        sparsifier = FABTopK()
        momentum = 0.9
    else:
        split = "proportional" if variant == "layerwise-prop" else "magnitude"
        sparsifier = LayerwiseTopK(model.parameter_slices(), split=split)
    trainer = FLTrainer(model, federation, sparsifier, timing=timing,
                        learning_rate=config.learning_rate,
                        batch_size=config.batch_size,
                        eval_every=config.eval_every,
                        eval_max_samples=config.eval_max_samples,
                        momentum_correction=momentum,
                        seed=config.seed)
    k = max(4, int(0.4 * model.dimension / config.num_clients))
    trainer.run(num_rounds, k=k)
    return trainer.history


VARIANTS = ("global", "global+dgc", "layerwise-prop", "layerwise-mag")


def test_layerwise_and_momentum_variants(benchmark, capsys):
    config = bench_config().with_overrides(num_rounds=150)

    def run():
        return {v: _run(config, v, config.num_rounds) for v in VARIANTS}

    histories = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [v, f"{h.final_loss:.4f}", f"{h.total_time:.0f}"]
        for v, h in histories.items()
    ]
    with capsys.disabled():
        print("\n[Layer-wise / momentum ablation] equal total k, equal rounds")
        print(text_table(["variant", "final loss", "total time"], rows))

    # All variants must actually learn; none should blow up.
    for v, h in histories.items():
        losses = [r.loss for r in h if r.loss == r.loss]
        assert h.final_loss < losses[0], v
    # Layer-wise selection spends the same time budget (same k, same
    # pair accounting) — the comparison is purely about selection quality.
    times = [h.total_time for h in histories.values()]
    assert max(times) - min(times) < 1e-6
