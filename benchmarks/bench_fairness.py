"""Ablation: the fairness floor of FAB-top-k vs FUB-top-k.

DESIGN.md calls out the fairness mechanism (per-client quota via the
binary search over κ) as the design choice distinguishing FAB from FUB.
This bench constructs a federation with one dominant-gradient client and
measures how many elements the *weakest* client contributes under each
scheme, plus the accuracy the starved clients' data reaches.
"""

import numpy as np

from benchmarks.conftest import bench_config
from repro.experiments.runner import build_federation, build_model, build_timing, text_table
from repro.fl.trainer import FLTrainer
from repro.sparsify.fab_topk import FABTopK
from repro.sparsify.fub_topk import FUBTopK


def _scaled_federation(config, dominant_scale=8.0):
    """Federation where client 0's features are rescaled to dominate
    gradient magnitudes (a realistic heterogeneous-client scenario)."""
    federation = build_federation(config)
    federation.clients[0].x = federation.clients[0].x * dominant_scale
    return federation


def test_fairness_floor_ablation(benchmark, capsys):
    config = bench_config().with_overrides(num_rounds=120)

    def run():
        out = {}
        for name, sparsifier in (("fab-top-k", FABTopK()),
                                 ("fub-top-k", FUBTopK())):
            model = build_model(config)
            federation = _scaled_federation(config)
            timing = build_timing(config, model.dimension)
            trainer = FLTrainer(
                model, federation, sparsifier, timing=timing,
                learning_rate=config.learning_rate,
                batch_size=config.batch_size,
                eval_every=config.num_rounds,  # evaluate at the end only
                eval_max_samples=config.eval_max_samples,
                seed=config.seed,
            )
            k = max(2, int(0.4 * model.dimension / config.num_clients))
            trainer.run(config.num_rounds, k=k)
            totals = trainer.history.contribution_counts()
            out[name] = {
                "min": min(totals.values()),
                "median": float(np.median(list(totals.values()))),
                "max": max(totals.values()),
                "floor": (k // federation.num_clients) * config.num_rounds,
                "zero_clients": sum(1 for v in totals.values() if v == 0),
            }
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name,
         str(s["min"]), f"{s['median']:.0f}", str(s["max"]),
         str(s["floor"]), str(s["zero_clients"])]
        for name, s in stats.items()
    ]
    with capsys.disabled():
        print("\n[Fairness ablation] per-client total contributed elements"
              " (one dominant client)")
        print(text_table(
            ["method", "min", "median", "max", "guaranteed floor",
             "starved clients"],
            rows,
        ))

    # FAB honors its floor of floor(k/N) per round for every client.
    assert stats["fab-top-k"]["min"] >= stats["fab-top-k"]["floor"]
    assert stats["fab-top-k"]["zero_clients"] == 0
    # FUB gives its weakest client strictly less than FAB's floor.
    assert stats["fub-top-k"]["min"] < stats["fab-top-k"]["min"]
