"""Benchmark regenerating Fig. 6 — Algorithm 3 vs Algorithm 2 at β = 100.

Paper result: with expensive communication the optimal k is small;
Algorithm 3's shrinking search interval tracks it with much less
fluctuation than Algorithm 2, yielding equal-or-better loss vs time.
"""

import numpy as np

from benchmarks.conftest import bench_config
from repro.experiments.fig6 import run_fig6
from repro.experiments.runner import text_table


def test_fig6_algorithm3_vs_algorithm2(run_once, capsys):
    config = bench_config().with_overrides(num_rounds=200)
    result = run_once(run_fig6, config, comm_time=100.0)

    budget = min(h.total_time for h in result.histories.values())
    final = result.loss_at_time(budget)
    fluct = result.k_fluctuation()
    rows = []
    for label, history in result.histories.items():
        ks = np.array(history.ks())
        rows.append([
            label,
            f"{final[label]:.4f}",
            f"{np.mean(ks):.0f}",
            f"{fluct[label]:.0f}",
        ])
    with capsys.disabled():
        print("\n[Fig 6] Algorithm 3 vs Algorithm 2, comm time=100")
        print(text_table(
            ["algorithm", f"loss@t={budget:.0f}", "mean k", "k std (2nd half)"],
            rows,
        ))

    # Algorithm 3 fluctuates less and does at least as well on loss.
    assert fluct["algorithm3"] < fluct["algorithm2"]
    assert final["algorithm3"] <= final["algorithm2"] * 1.10
