"""Round-engine throughput: serial vs vectorized execution backends.

Measures whole-round throughput (rounds/second) of the shared
:class:`repro.fl.engine.RoundEngine` under both execution backends at
N ∈ {24, 96} clients — the hot path every experiment driver runs — for
both model families: the MLP preset and a fig6-style CNN scenario
(conv-pool-conv-pool-dense-dense) exercising the grouped im2col
Conv2D/MaxPool2D pass.  The two backends produce bit-identical histories
(tests/test_engine.py), so this benchmark is purely about wall-clock.

Run under the benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py --benchmark-only -s

or standalone, which also appends the numbers to ``BENCH_engine.json`` at
the repo root so the performance trajectory of the engine is recorded
over time::

    PYTHONPATH=src python benchmarks/bench_engine.py
"""

import json
import os
import pathlib
import tempfile
import time

import pytest

from _hostmeta import host_metadata
from repro.data.partition import partition_by_writer
from repro.data.synthetic import make_femnist_like
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_cnn, make_mlp
from repro.obs import JsonlSink, Telemetry
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK

CLIENT_COUNTS = (24, 96)
BACKENDS = ("serial", "vectorized")
MEASURE_ROUNDS = 60
#: (model, num_clients, measured rounds) — CNN rounds are heavier, so
#: fewer of them keep the standalone run quick.
SCENARIOS = (
    ("mlp", 24, MEASURE_ROUNDS),
    ("mlp", 96, MEASURE_ROUNDS),
    ("cnn", 24, 20),
)
BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def build_trainer(num_clients: int, backend: str, model: str = "mlp",
                  telemetry=None) -> FLTrainer:
    """Benchmark-scale federation: MLP preset (D ≈ 1.9k) or fig6-style CNN.

    The CNN scenario keeps images in (C, H, W) layout so the grouped
    Conv2D/MaxPool2D im2col pass is what the vectorized backend runs.
    """
    ds = make_femnist_like(
        num_writers=num_clients, samples_per_writer=25, num_classes=16,
        image_size=10 if model == "mlp" else 8, classes_per_writer=5,
        flatten=model == "mlp", seed=0,
    )
    federation = partition_by_writer(ds, seed=0)
    if model == "cnn":
        net = make_cnn(image_size=8, channels=1, num_classes=16,
                       conv_channels=(4, 8), dense_width=16, seed=0)
    else:
        net = make_mlp(100, 16, hidden=(16,), seed=0)
    timing = TimingModel(dimension=net.dimension, comm_time=10.0)
    return FLTrainer(
        net, federation, FABTopK(), timing=timing, learning_rate=0.05,
        batch_size=16, eval_every=1_000_000, seed=0, backend=backend,
        telemetry=telemetry,
    )


def round_k(trainer: FLTrainer, num_clients: int) -> int:
    """Fig. 4's sparsity regime: k ≈ 0.4·D/N."""
    return max(2, int(0.4 * trainer.model.dimension / num_clients))


def measure_rounds_per_second(num_clients: int, backend: str,
                              model: str = "mlp",
                              rounds: int = MEASURE_ROUNDS,
                              repeats: int = 3,
                              traced: bool = False) -> float:
    """Best-of-``repeats`` throughput (minimum wall time resists noise).

    ``traced=True`` runs with telemetry streaming JSONL round events to
    a scratch file — the telemetry-enabled column of the report.  The
    default runs telemetry-off: the instrumented engine's disabled path
    (one attribute check per site), which is the number every other
    entry in ``BENCH_engine.json`` has always measured.
    """
    telemetry = None
    scratch = None
    if traced:
        fd, scratch = tempfile.mkstemp(suffix=".jsonl")
        os.close(fd)
        telemetry = Telemetry(sink=JsonlSink(scratch))
    try:
        trainer = build_trainer(num_clients, backend, model,
                                telemetry=telemetry)
        k = round_k(trainer, num_clients)
        trainer.step(k)  # warmup (round 1 always evaluates)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(rounds):
                trainer.step(k)
            best = min(best, time.perf_counter() - start)
        return rounds / best
    finally:
        if telemetry is not None:
            telemetry.close()
            os.unlink(scratch)


#: pytest grids derive from SCENARIOS so the standalone run and the
#: benchmark-harness tests always cover the same scenarios.
SCENARIO_GRID = [(m, n) for m, n, _ in SCENARIOS]


@pytest.mark.parametrize("model,num_clients", SCENARIO_GRID)
@pytest.mark.parametrize("backend", BACKENDS)
def test_engine_round_throughput(benchmark, model, num_clients, backend):
    trainer = build_trainer(num_clients, backend, model)
    k = round_k(trainer, num_clients)
    trainer.step(k)  # warmup
    benchmark(trainer.step, k)


@pytest.mark.parametrize("model,num_clients", SCENARIO_GRID)
def test_backends_agree_at_scale(model, num_clients):
    """The throughput comparison is only meaningful if results match."""
    histories = {}
    for backend in BACKENDS:
        trainer = build_trainer(num_clients, backend, model)
        histories[backend] = trainer.run(3, k=round_k(trainer, num_clients))
    serial, vectorized = (histories[b] for b in BACKENDS)
    assert [r.cumulative_time for r in serial] == \
        [r.cumulative_time for r in vectorized]
    assert [r.loss for r in serial][:1] == [r.loss for r in vectorized][:1]


def main() -> None:
    # Host metadata makes the perf trajectory across PRs interpretable:
    # rounds/sec entries from different machines must not be compared raw.
    # The measured round count is per scenario (CNN rounds are heavier).
    report = {"host": host_metadata(), "results": []}
    for model, num_clients, rounds in SCENARIOS:
        rates = {}
        for backend in BACKENDS:
            rates[backend] = measure_rounds_per_second(
                num_clients, backend, model, rounds=rounds
            )
        speedup = rates["vectorized"] / rates["serial"]
        # Telemetry-on vs -off on the vectorized backend: the plain
        # measurement above *is* the telemetry-off number, so the pair
        # tracks both the enabled cost (JSONL streaming per round) and,
        # across BENCH entries, the disabled-path cost of the
        # instrumentation itself.
        traced = measure_rounds_per_second(
            num_clients, "vectorized", model, rounds=rounds, traced=True
        )
        tracing_overhead = (rates["vectorized"] - traced) / rates["vectorized"]
        report["results"].append({
            "model": model,
            "num_clients": num_clients,
            "rounds": rounds,
            "rounds_per_second": {b: round(r, 2) for b, r in rates.items()},
            "vectorized_speedup": round(speedup, 3),
            "telemetry": {
                "off_rps": round(rates["vectorized"], 2),
                "on_rps": round(traced, 2),
                "enabled_overhead_pct": round(100 * tracing_overhead, 2),
            },
        })
        print(
            f"{model} N={num_clients:3d}: serial {rates['serial']:7.1f} r/s | "
            f"vectorized {rates['vectorized']:7.1f} r/s | "
            f"speedup {speedup:.2f}x | "
            f"traced {traced:7.1f} r/s ({100 * tracing_overhead:+.1f}%)"
        )
    history = []
    if BENCH_PATH.exists():
        history = json.loads(BENCH_PATH.read_text())
    history.append(report)
    BENCH_PATH.write_text(json.dumps(history, indent=1))
    print(f"appended to {BENCH_PATH}")
    from history import record_report
    record_report(BENCH_PATH, report)


if __name__ == "__main__":
    main()
