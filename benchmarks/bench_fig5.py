"""Benchmark regenerating Fig. 5 — adaptive-k online methods, β = 10.

Paper result: the proposed method (Algorithm 3 + sign estimator) reaches
lower loss than value-based derivative descent, EXP3, and the continuous
bandit, and its k_m trace is far more stable than the bandit methods'.
"""

import numpy as np

from benchmarks.conftest import bench_config
from repro.experiments.fig5 import run_fig5
from repro.experiments.runner import text_table


def test_fig5_adaptive_k_methods(run_once, capsys):
    config = bench_config().with_overrides(num_rounds=200)
    result = run_once(run_fig5, config)

    budget = min(h.total_time for h in result.histories.values())
    final = result.loss_at_time(budget)
    stability = result.k_stability()
    rows = []
    for name, history in result.histories.items():
        ks = np.array(history.ks())
        rows.append([
            name,
            f"{final[name]:.4f}",
            f"{np.mean(ks):.0f}",
            f"{stability[name]:.0f}",
        ])
    with capsys.disabled():
        print("\n[Fig 5] adaptive-k methods, comm time=10")
        print(text_table(
            ["method", f"loss@t={budget:.0f}", "mean k", "k std (2nd half)"],
            rows,
        ))

    # Proposed beats every baseline at the common time budget.
    for baseline in ("value-based", "exp3", "continuous-bandit"):
        assert final["proposed"] <= final[baseline] * 1.05, baseline
    # Proposed k-trace is more stable than the bandit baselines'.
    assert stability["proposed"] < stability["exp3"]
    assert stability["proposed"] < stability["continuous-bandit"]
