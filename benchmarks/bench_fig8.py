"""Benchmark regenerating Fig. 8 — cross-application on CIFAR-like data.

Same protocol as Fig. 7 but with the extreme one-class-per-client
partition.  Paper result (footnote 6): the strong non-i.i.d. skew forces
a relatively large k even when communication is expensive, so the spread
between the learned sequences — and between their replay outcomes — is
smaller than on FEMNIST.
"""

from benchmarks.conftest import bench_config, cifar_bench_config
from repro.experiments.fig7 import run_fig7, run_fig8
from repro.experiments.runner import text_table

COMM_TIMES = (0.1, 100.0)


def test_fig8_cross_application_cifar(run_once, capsys):
    cifar_cfg = cifar_bench_config().with_overrides(num_rounds=150)
    result = run_once(run_fig8, cifar_cfg, comm_times=COMM_TIMES,
                      learn_rounds=150)

    # Reference spread on femnist-like data at the same betas/rounds.
    femnist_cfg = bench_config().with_overrides(num_rounds=150)
    femnist = run_fig7(femnist_cfg, comm_times=COMM_TIMES, learn_rounds=150)

    with capsys.disabled():
        print("\n[Fig 8] learned k vs communication time (cifar-like)")
        print(text_table(
            ["beta", "mean k (cifar)", "mean k (femnist)"],
            [[f"{b:g}", f"{result.mean_k(b):.0f}", f"{femnist.mean_k(b):.0f}"]
             for b in COMM_TIMES],
        ))
        rel_cifar = [result.spread_at(b) for b in COMM_TIMES]
        rel_femnist = [femnist.spread_at(b) for b in COMM_TIMES]
        print(f"replay-loss spread (cifar):   {rel_cifar}")
        print(f"replay-loss spread (femnist): {rel_femnist}")

    # Learned k still decreases in beta on cifar.
    assert result.mean_k(COMM_TIMES[0]) > result.mean_k(COMM_TIMES[-1])
    # Footnote-6 claim: at small beta the cross-sequence difference on
    # CIFAR-like data is small (sequences all keep k relatively large).
    assert result.spread_at(COMM_TIMES[0]) <= femnist.spread_at(COMM_TIMES[0]) + 0.5
