"""Ablation: composing quantization with FAB-top-k GS.

The paper (Section II) notes quantization is orthogonal to GS and can be
applied together with it.  This bench runs FAB-top-k with and without
QSGD-style 4-bit value quantization at the same k; the quantized variant
pays less per transmitted pair (pair overhead (32+5)/32 ≈ 1.16 instead of
2.0), so it should reach comparable loss in less normalized time.
"""

from benchmarks.conftest import bench_config
from repro.compress.quantization import QuantizedSparsifier, UniformQuantizer
from repro.experiments.runner import build_federation, build_model, text_table
from repro.fl.trainer import FLTrainer
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK


def _run(config, quantize: bool, num_rounds: int):
    model = build_model(config)
    federation = build_federation(config)
    if quantize:
        quantizer = UniformQuantizer(num_levels=15, seed=config.seed)
        sparsifier = QuantizedSparsifier(FABTopK(), quantizer)
        pair_overhead = (32 + sparsifier.uplink_value_bits) / 32
    else:
        sparsifier = FABTopK()
        pair_overhead = 2.0
    timing = TimingModel(model.dimension, comm_time=config.comm_time,
                         pair_overhead=pair_overhead)
    trainer = FLTrainer(model, federation, sparsifier, timing=timing,
                        learning_rate=config.learning_rate,
                        batch_size=config.batch_size,
                        eval_every=config.eval_every,
                        eval_max_samples=config.eval_max_samples,
                        seed=config.seed)
    k = max(2, int(0.4 * model.dimension / config.num_clients))
    trainer.run(num_rounds, k=k)
    return trainer.history


def test_quantization_composition(benchmark, capsys):
    config = bench_config().with_overrides(num_rounds=150)

    def run():
        full = _run(config, quantize=False, num_rounds=config.num_rounds)
        quant = _run(config, quantize=True, num_rounds=config.num_rounds)
        return full, quant

    full, quant = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["fab-top-k (32-bit values)", f"{full.final_loss:.4f}",
         f"{full.total_time:.0f}"],
        ["fab-top-k + 4-bit quantization", f"{quant.final_loss:.4f}",
         f"{quant.total_time:.0f}"],
    ]
    with capsys.disabled():
        print("\n[Quantization ablation] same k, same rounds")
        print(text_table(["variant", "final loss", "total time"], rows))

    # Same number of rounds but cheaper pairs: quantized finishes sooner.
    assert quant.total_time < full.total_time
    # And the 4-bit loss penalty is modest thanks to error feedback.
    assert quant.final_loss < full.final_loss + 0.5
