"""Tests for heterogeneous timing, client sampling, and resource models."""

import pytest

from repro.data.partition import partition_iid
from repro.data.synthetic import make_gaussian_blobs
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_logistic
from repro.simulation.heterogeneous import (
    ClientProfile,
    ClientSampler,
    HeterogeneousTimingModel,
)
from repro.simulation.resources import ResourceModel, ResourceWeights
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK


def profiles(factors):
    return [
        ClientProfile(client_id=i, compute_factor=c, comm_factor=m)
        for i, (c, m) in enumerate(factors)
    ]


class TestClientProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClientProfile(0, compute_factor=0.0)
        with pytest.raises(ValueError):
            ClientProfile(0, comm_factor=-1.0)


class TestHeterogeneousTimingModel:
    def test_all_equal_matches_homogeneous(self):
        hom = TimingModel(dimension=1000, comm_time=10.0)
        het = HeterogeneousTimingModel(
            dimension=1000, comm_time=10.0,
            profiles=profiles([(1.0, 1.0)] * 4),
        )
        assert het.sparse_round(50, 50).total == pytest.approx(
            hom.sparse_round(50, 50).total
        )

    def test_straggler_dominates(self):
        het = HeterogeneousTimingModel(
            dimension=1000, comm_time=10.0,
            profiles=profiles([(1.0, 1.0), (3.0, 1.0), (1.0, 2.0)]),
        )
        rt = het.sparse_round(100, 100)
        assert rt.computation == pytest.approx(3.0)  # slowest compute
        base = TimingModel(1000, 10.0).sparse_round(100, 100)
        assert rt.uplink == pytest.approx(2.0 * base.uplink)

    def test_excluding_straggler_speeds_round(self):
        het = HeterogeneousTimingModel(
            dimension=1000, comm_time=10.0,
            profiles=profiles([(1.0, 1.0), (5.0, 5.0)]),
        )
        slow = het.sparse_round_for(100, 100, participants=[0, 1]).total
        fast = het.sparse_round_for(100, 100, participants=[0]).total
        assert fast < slow

    def test_dense_round_for(self):
        het = HeterogeneousTimingModel(
            dimension=100, comm_time=4.0,
            profiles=profiles([(2.0, 1.0), (1.0, 3.0)]),
        )
        rt = het.dense_round_for([0])
        assert rt.computation == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousTimingModel(100, 1.0, profiles=[])
        with pytest.raises(ValueError):
            HeterogeneousTimingModel(
                100, 1.0,
                profiles=[ClientProfile(0), ClientProfile(0)],
            )
        het = HeterogeneousTimingModel(100, 1.0, profiles=profiles([(1, 1)]))
        with pytest.raises(ValueError):
            het.sparse_round_for(1, 1, participants=[])


class TestClientSampler:
    def test_uniform_counts(self):
        sampler = ClientSampler(list(range(10)), count=4, seed=0)
        chosen = sampler.sample()
        assert len(chosen) == 4
        assert len(set(chosen)) == 4
        assert all(0 <= c < 10 for c in chosen)

    def test_deterministic_given_seed(self):
        a = ClientSampler(list(range(10)), count=3, seed=7).sample()
        b = ClientSampler(list(range(10)), count=3, seed=7).sample()
        assert a == b

    def test_uniform_covers_everyone_eventually(self):
        sampler = ClientSampler(list(range(6)), count=2, seed=1)
        seen = set()
        for _ in range(100):
            seen.update(sampler.sample())
        assert seen == set(range(6))

    def test_fastest_biased_prefers_fast_clients(self):
        profs = profiles([(1.0, 1.0), (10.0, 10.0)])
        sampler = ClientSampler([0, 1], count=1, strategy="fastest-biased",
                                profiles=profs, seed=0)
        draws = [sampler.sample()[0] for _ in range(500)]
        assert draws.count(0) > draws.count(1) * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientSampler([], count=1)
        with pytest.raises(ValueError):
            ClientSampler([0, 1], count=3)
        with pytest.raises(ValueError):
            ClientSampler([0], count=1, strategy="nope")
        with pytest.raises(ValueError):
            ClientSampler([0], count=1, strategy="fastest-biased")


class TestSampledTraining:
    @pytest.fixture
    def setup(self):
        ds = make_gaussian_blobs(num_samples=300, num_classes=4,
                                 feature_dim=10, separation=4.0, seed=0)
        fed = partition_iid(ds, num_clients=6, seed=0)
        model = make_logistic(10, 4, seed=0)
        return model, fed

    def test_sampled_training_converges(self, setup):
        model, fed = setup
        sampler = ClientSampler([c.client_id for c in fed.clients],
                                count=3, seed=0)
        trainer = FLTrainer(model, fed, FABTopK(), sampler=sampler,
                            learning_rate=0.1, batch_size=16, seed=0)
        initial = trainer.global_loss()
        trainer.run(60, k=10)
        assert trainer.history.final_loss < initial * 0.8

    def test_contributions_limited_to_participants(self, setup):
        model, fed = setup
        sampler = ClientSampler([c.client_id for c in fed.clients],
                                count=2, seed=0)
        trainer = FLTrainer(model, fed, FABTopK(), sampler=sampler,
                            learning_rate=0.1, batch_size=16, seed=0)
        record = trainer.step(k=6)
        assert len(record.contributions) == 2

    def test_straggler_avoidance_reduces_time(self, setup):
        model, fed = setup
        ids = [c.client_id for c in fed.clients]
        profs = profiles([(1.0, 1.0)] * 5 + [(10.0, 10.0)])
        het = HeterogeneousTimingModel(model.dimension, comm_time=10.0,
                                       profiles=profs)
        fast_sampler = ClientSampler(ids, count=3, strategy="fastest-biased",
                                     profiles=profs, seed=0)
        trainer_fast = FLTrainer(make_logistic(10, 4, seed=0), fed, FABTopK(),
                                 timing=het, sampler=fast_sampler,
                                 learning_rate=0.1, seed=0)
        trainer_all = FLTrainer(make_logistic(10, 4, seed=0), fed, FABTopK(),
                                timing=het, learning_rate=0.1, seed=0)
        trainer_fast.run(20, k=10)
        trainer_all.run(20, k=10)
        assert trainer_fast.clock < trainer_all.clock


class TestResourceModel:
    def test_pure_time_matches_timing(self):
        timing = TimingModel(dimension=1000, comm_time=10.0)
        resources = ResourceModel(timing, compute_energy=0.0,
                                  energy_per_element=0.0)
        assert resources.sparse_round(50, 50).total == pytest.approx(
            timing.sparse_round(50, 50).total
        )
        assert resources.dense_round().total == pytest.approx(
            timing.dense_round().total
        )

    def test_energy_term_grows_with_elements(self):
        timing = TimingModel(dimension=1000, comm_time=10.0)
        resources = ResourceModel(
            timing, weights=ResourceWeights(time=0.0, energy=1.0),
            compute_energy=1.0, energy_per_element=0.01,
        )
        small = resources.sparse_round(10, 10).total
        large = resources.sparse_round(100, 100).total
        assert large > small
        # 2x(10+10) pairs -> 40 elements * 0.01 + compute 1.0
        assert small == pytest.approx(1.0 + 0.4)

    def test_money_per_round_fee(self):
        timing = TimingModel(dimension=100, comm_time=1.0)
        resources = ResourceModel(
            timing, weights=ResourceWeights(time=0.0, money=1.0),
            money_per_element=0.0, money_per_round=2.5,
        )
        assert resources.sparse_round(1, 1).total == pytest.approx(2.5)

    def test_combined_objective(self):
        timing = TimingModel(dimension=1000, comm_time=10.0)
        resources = ResourceModel(
            timing, weights=ResourceWeights(time=1.0, energy=2.0, money=1.0),
            compute_energy=0.5, energy_per_element=0.001,
            money_per_element=0.002, money_per_round=0.1,
        )
        rt = resources.sparse_round(50, 50)
        elements = 2 * 100  # pair_overhead * (50+50)
        expected = (
            timing.sparse_round(50, 50).total
            + 2.0 * (0.5 + 0.001 * elements)
            + 1.0 * (0.002 * elements + 0.1)
        )
        assert rt.total == pytest.approx(expected)

    def test_expected_sparse_round_interpolates(self):
        timing = TimingModel(dimension=1000, comm_time=10.0)
        resources = ResourceModel(timing, energy_per_element=0.01)
        mid = resources.expected_sparse_round_time(10.5)
        lo = resources.sparse_round(10, 10).total
        hi = resources.sparse_round(11, 11).total
        assert mid == pytest.approx(0.5 * (lo + hi))

    def test_drop_in_for_trainer(self):
        ds = make_gaussian_blobs(num_samples=200, num_classes=3,
                                 feature_dim=8, separation=4.0, seed=0)
        fed = partition_iid(ds, num_clients=4, seed=0)
        model = make_logistic(8, 3, seed=0)
        resources = ResourceModel(
            TimingModel(model.dimension, comm_time=5.0),
            weights=ResourceWeights(time=1.0, energy=1.0),
            compute_energy=0.2, energy_per_element=0.005,
        )
        trainer = FLTrainer(model, fed, FABTopK(), timing=resources,
                            learning_rate=0.1, batch_size=16, seed=0)
        trainer.run(10, k=8)
        assert trainer.clock > 0

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            ResourceWeights(time=-1.0)
        with pytest.raises(ValueError):
            ResourceWeights(time=0.0, energy=0.0, money=0.0)
        timing = TimingModel(10, 1.0)
        with pytest.raises(ValueError):
            ResourceModel(timing, compute_energy=-1.0)

    def test_fedavg_period_delegates(self):
        timing = TimingModel(dimension=1000, comm_time=10.0)
        resources = ResourceModel(timing)
        assert resources.fedavg_period(100) == timing.fedavg_period(100)
