"""Tests for the run-comparison module."""

import pytest

from repro.experiments.compare import (
    RunSummary,
    compare_histories,
    speedup_at_target,
    summarize_run,
)
from repro.fl.metrics import RoundRecord, TrainingHistory


def make_history(losses, dt=1.0, contributions=None):
    h = TrainingHistory()
    for i, loss in enumerate(losses, start=1):
        h.append(RoundRecord(
            round_index=i, k=10.0, round_time=dt, cumulative_time=i * dt,
            loss=loss, contributions=contributions or {},
        ))
    return h


class TestSummarizeRun:
    def test_basic_fields(self):
        h = make_history([5.0, 3.0, 2.0, 1.5, 1.2])
        s = summarize_run("a", h, target_loss=2.0)
        assert s.final_loss == 1.2
        assert s.rounds == 5
        assert s.total_time == 5.0
        assert s.time_to_target == pytest.approx(3.0)

    def test_target_not_reached(self):
        h = make_history([5.0, 4.0, 3.5])
        s = summarize_run("a", h, target_loss=1.0)
        assert s.time_to_target is None

    def test_convergence_rate_on_power_decay(self):
        losses = [3.0 * t**-0.5 + 0.1 for t in range(1, 40)]
        h = make_history(losses)
        s = summarize_run("a", h)
        assert s.convergence_rate is not None
        assert 0.2 < s.convergence_rate < 1.0

    def test_fairness_from_contributions(self):
        h = make_history([2.0, 1.0], contributions={0: 5, 1: 5})
        s = summarize_run("a", h)
        assert s.fairness == pytest.approx(1.0)

    def test_no_contributions_gives_none(self):
        h = make_history([2.0, 1.0])
        assert summarize_run("a", h).fairness is None

    def test_all_nan_raises(self):
        h = make_history([float("nan")])
        with pytest.raises(ValueError):
            summarize_run("a", h)

    def test_row_and_headers_align(self):
        h = make_history([2.0, 1.0])
        s = summarize_run("a", h)
        assert len(s.row()) == len(RunSummary.headers())


class TestCompareHistories:
    def test_sorted_by_final_loss(self):
        histories = {
            "worse": make_history([5.0, 4.0]),
            "better": make_history([5.0, 1.0]),
        }
        summaries = compare_histories(histories)
        assert [s.name for s in summaries] == ["better", "worse"]

    def test_default_target_is_worst_best(self):
        histories = {
            "a": make_history([5.0, 1.0]),
            "b": make_history([5.0, 3.0]),
        }
        summaries = compare_histories(histories)
        # Default target = 3.0 (worst run's best), so both runs reach it.
        for s in summaries:
            assert s.time_to_target is not None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_histories({})


class TestSpeedup:
    def test_faster_run_has_speedup_above_one(self):
        histories = {
            "slow": make_history([5.0, 4.0, 3.0, 2.0, 1.0], dt=2.0),
            "fast": make_history([5.0, 3.0, 1.0], dt=1.0),
        }
        speedups = speedup_at_target(histories, baseline="slow",
                                     target_loss=1.5)
        assert speedups["slow"] == pytest.approx(1.0)
        assert speedups["fast"] > 1.0

    def test_unreached_gives_none(self):
        histories = {
            "base": make_history([5.0, 1.0]),
            "stuck": make_history([5.0, 4.9]),
        }
        speedups = speedup_at_target(histories, "base", target_loss=2.0)
        assert speedups["stuck"] is None

    def test_unknown_baseline(self):
        with pytest.raises(KeyError):
            speedup_at_target({"a": make_history([1.0])}, "nope", 1.0)
