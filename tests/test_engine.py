"""RoundEngine and execution-backend tests.

Three layers of guarantees:

1. **Golden histories** — the engine-based trainers reproduce, bit for
   bit, histories captured from the pre-engine (seed) implementations of
   ``FLTrainer``, ``AdaptiveKTrainer``, ``FedAvgTrainer`` and
   ``AlwaysSendAllTrainer`` (``tests/data/golden_histories.json``).
2. **Backend equivalence** — ``VectorizedBackend`` and the
   multiprocessing ``ShardedBackend`` produce histories (losses, clocks,
   uplink/downlink counts, contributions) and final weights *identical*
   to ``SerialBackend`` across sparsifier families (including the
   quantization-wrapped path) and model families (MLP and CNN — conv/pool
   run the grouped im2col pass), plus the batched-unsupported fallbacks
   (momentum masking, active dropout).
3. **Batched kernels** — ``FlatModel.gradients_batched`` and
   ``top_k_indices_batched`` equal their per-client counterparts exactly.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.compress.quantization import QuantizedSparsifier, UniformQuantizer
from repro.data.partition import partition_by_writer, partition_iid
from repro.data.synthetic import make_femnist_like, make_gaussian_blobs
from repro.fl.async_engine import AsyncFLTrainer
from repro.fl.backends import (
    BACKEND_NAMES,
    SerialBackend,
    VectorizedBackend,
    resolve_backend,
)
from repro.parallel.sharded import ShardedBackend
from repro.fl.fedavg import AlwaysSendAllTrainer, FedAvgTrainer
from repro.fl.trainer import FLTrainer
from repro.nn.flat import FlatModel
from repro.nn.layers import Dropout, Linear, Sequential
from repro.nn.models import make_cnn, make_logistic, make_mlp
from repro.online.adaptive_trainer import AdaptiveKTrainer
from repro.online.algorithm2 import SignOGD
from repro.online.interval import SearchInterval
from repro.online.policy import SignPolicy
from repro.simulation.heterogeneous import ClientSampler
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK
from repro.sparsify.fub_topk import FUBTopK
from repro.sparsify.periodic import PeriodicK
from repro.sparsify.topk import top_k_indices, top_k_indices_batched
from repro.sparsify.unidirectional import UnidirectionalTopK

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_histories.json"


def history_rows(history):
    """History as comparable tuples (NaN losses mapped to None)."""
    return [
        (
            r.round_index,
            r.k,
            r.round_time,
            r.cumulative_time,
            None if np.isnan(r.loss) else r.loss,
            r.accuracy,
            r.uplink_elements,
            r.downlink_elements,
        )
        for r in history
    ]


def contribution_rows(history):
    return [tuple(sorted(r.contributions.items())) for r in history]


# ----------------------------------------------------------------------
# Golden histories captured from the seed (pre-engine) implementations.
# The scenario constructions below must not change, or the goldens lose
# their meaning.
# ----------------------------------------------------------------------
def _golden_federation():
    ds = make_gaussian_blobs(num_samples=240, num_classes=4, feature_dim=12,
                             separation=3.0, seed=7)
    return partition_iid(ds, num_clients=6, seed=7)


def _golden_setup():
    model = make_logistic(12, 4, seed=7)
    timing = TimingModel(dimension=model.dimension, comm_time=8.0)
    return model, _golden_federation(), timing


def _golden_fl():
    model, fed, timing = _golden_setup()
    trainer = FLTrainer(model, fed, FABTopK(), timing=timing,
                        learning_rate=0.1, batch_size=8, eval_every=3, seed=7)
    return trainer.run(10, k=9)


def _golden_adaptive():
    model, fed, timing = _golden_setup()
    policy = SignPolicy(SignOGD(SearchInterval(2.0, float(model.dimension))))
    trainer = AdaptiveKTrainer(model, fed, FABTopK(), policy, timing,
                               learning_rate=0.1, batch_size=8, eval_every=2,
                               seed=7)
    return trainer.run(8)


def _golden_fedavg():
    model, fed, timing = _golden_setup()
    trainer = FedAvgTrainer(model, fed, timing, aggregation_period=3,
                            learning_rate=0.1, batch_size=8, eval_every=2,
                            seed=7)
    return trainer.run(9)


def _golden_sendall():
    model, fed, timing = _golden_setup()
    trainer = AlwaysSendAllTrainer(model, fed, timing, learning_rate=0.1,
                                   batch_size=8, eval_every=2, seed=7)
    return trainer.run(6)


def _golden_cnn():
    # Pinned after PR 3's conv rewrite: the grouped-conv serial path is
    # the reference now, and cross-backend equality alone cannot catch a
    # regression that moves *all* backends together.  4 rounds of the
    # fig6-style CNN on the serial backend.
    ds = make_femnist_like(num_writers=6, samples_per_writer=12,
                           num_classes=6, image_size=8, classes_per_writer=3,
                           flatten=False, seed=7)
    fed = partition_by_writer(ds, seed=7)
    model = make_cnn(image_size=8, channels=1, num_classes=6,
                     dense_width=8, seed=7)
    timing = TimingModel(dimension=model.dimension, comm_time=8.0)
    trainer = FLTrainer(model, fed, FABTopK(), timing=timing,
                        learning_rate=0.05, batch_size=6, eval_every=2,
                        seed=7, backend="serial")
    return trainer.run(4, k=20)


def _golden_async_profiles(model, fed):
    """Every third client a 4x straggler — arrivals must reorder."""
    from repro.simulation.heterogeneous import (
        ClientProfile,
        HeterogeneousTimingModel,
    )

    profiles = [
        ClientProfile(
            client_id=c.client_id,
            compute_factor=4.0 if c.client_id % 3 == 0 else 1.0,
            comm_factor=4.0 if c.client_id % 3 == 0 else 1.0,
        )
        for c in fed.clients
    ]
    timing = HeterogeneousTimingModel(
        model.dimension, comm_time=8.0, profiles=profiles
    )
    return profiles, timing


def _golden_async():
    # Pinned in PR 10: the asynchronous commit engine's virtual-time path
    # has no seed implementation to diff against (the synchronous special
    # case is covered by bit-identity with ``fl_trainer``), so its first
    # verified history is the reference — commits of 3 arrivals under the
    # polynomial staleness discount with a straggling third of the cohort.
    model, fed, _ = _golden_setup()
    profiles, timing = _golden_async_profiles(model, fed)
    trainer = AsyncFLTrainer(
        model, fed, FABTopK(), timing=timing, learning_rate=0.1,
        batch_size=8, eval_every=3, seed=7, discount="polynomial",
        commit_count=3, profiles=profiles,
    )
    return trainer.run(10, k=9)


GOLDEN_SCENARIOS = {
    "fl_trainer": _golden_fl,
    "adaptive_trainer": _golden_adaptive,
    "fedavg_trainer": _golden_fedavg,
    "sendall_trainer": _golden_sendall,
    "cnn_fl_trainer": _golden_cnn,
    "async_fl_trainer": _golden_async,
}


class TestGoldenHistories:
    @pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
    def test_engine_reproduces_seed_history(self, name):
        golden = json.loads(GOLDEN_PATH.read_text())[name]
        expected = [
            (row["round_index"], row["k"], row["round_time"],
             row["cumulative_time"], row["loss"], row["accuracy"],
             row["uplink_elements"], row["downlink_elements"])
            for row in golden
        ]
        assert history_rows(GOLDEN_SCENARIOS[name]()) == expected


# ----------------------------------------------------------------------
# Serial vs vectorized vs sharded backend equivalence
# ----------------------------------------------------------------------
#: non-reference backends that must match SerialBackend bit for bit
FAST_BACKENDS = ("vectorized", "sharded")


def make_backend(name):
    """Backend spec under test; sharded forces a real 2-worker pool.

    (``jobs`` defaults to the machine's CPU count, which would silently
    take the in-process fallback on single-core CI runners.)
    """
    if name == "sharded":
        return ShardedBackend(jobs=2)
    return name


def _federation(num_writers=10, seed=5):
    ds = make_femnist_like(num_writers=num_writers, samples_per_writer=20,
                           num_classes=10, image_size=8, classes_per_writer=4,
                           seed=seed)
    return partition_by_writer(ds, seed=seed)


def _fl_trainer(backend, sparsifier_factory, seed=5, **kwargs):
    fed = _federation(seed=seed)
    model = make_mlp(64, 10, hidden=(12,), seed=seed)
    timing = TimingModel(dimension=model.dimension, comm_time=10.0)
    return FLTrainer(model, fed, sparsifier_factory(model), timing=timing,
                     learning_rate=0.05, batch_size=8, eval_every=4,
                     seed=seed, backend=backend, **kwargs)


SPARSIFIER_FACTORIES = {
    "fab-top-k": lambda model: FABTopK(),
    "fub-top-k": lambda model: FUBTopK(),
    "unidirectional": lambda model: UnidirectionalTopK(),
    "periodic": lambda model: PeriodicK(model.dimension, seed=5),
    "quantized-fab": lambda model: QuantizedSparsifier(
        FABTopK(), UniformQuantizer(num_levels=15, seed=5)
    ),
}


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend_name", FAST_BACKENDS)
    @pytest.mark.parametrize("name", sorted(SPARSIFIER_FACTORIES))
    def test_fl_histories_identical(self, name, backend_name):
        factory = SPARSIFIER_FACTORIES[name]
        serial = _fl_trainer("serial", factory)
        fast = _fl_trainer(make_backend(backend_name), factory)
        hs = serial.run(10, k=15)
        hf = fast.run(10, k=15)
        assert history_rows(hs) == history_rows(hf)
        assert contribution_rows(hs) == contribution_rows(hf)
        np.testing.assert_array_equal(
            serial.model.get_weights(), fast.model.get_weights()
        )
        fast.close()

    @pytest.mark.parametrize("backend_name", FAST_BACKENDS)
    def test_residuals_identical_after_run(self, backend_name):
        serial = _fl_trainer("serial", SPARSIFIER_FACTORIES["fab-top-k"])
        fast = _fl_trainer(
            make_backend(backend_name), SPARSIFIER_FACTORIES["fab-top-k"]
        )
        serial.run(8, k=12)
        fast.run(8, k=12)
        for cs, cf in zip(serial.clients, fast.clients):
            np.testing.assert_array_equal(cs.residual, cf.residual)
        fast.close()

    @pytest.mark.parametrize("backend_name", FAST_BACKENDS)
    def test_adaptive_histories_identical(self, backend_name):
        def build(backend):
            fed = _federation()
            model = make_mlp(64, 10, hidden=(12,), seed=5)
            timing = TimingModel(dimension=model.dimension, comm_time=10.0)
            policy = SignPolicy(
                SignOGD(SearchInterval(2.0, float(model.dimension)))
            )
            return AdaptiveKTrainer(model, fed, FABTopK(), policy, timing,
                                    learning_rate=0.05, batch_size=8,
                                    eval_every=2, seed=5, backend=backend)
        fast = build(make_backend(backend_name))
        assert history_rows(build("serial").run(8)) == history_rows(
            fast.run(8)
        )
        fast.close()

    @pytest.mark.parametrize("backend_name", FAST_BACKENDS)
    def test_always_send_all_identical(self, backend_name):
        def build(backend):
            fed = _federation()
            model = make_mlp(64, 10, hidden=(12,), seed=5)
            timing = TimingModel(dimension=model.dimension, comm_time=10.0)
            return AlwaysSendAllTrainer(model, fed, timing, learning_rate=0.05,
                                        batch_size=8, eval_every=2, seed=5,
                                        backend=backend)
        fast = build(make_backend(backend_name))
        assert history_rows(build("serial").run(5)) == history_rows(
            fast.run(5)
        )
        fast.close()

    @pytest.mark.parametrize("backend_name", FAST_BACKENDS)
    def test_sampler_subset_identical(self, backend_name):
        # Partial participation also exercises the sharded backend's lazy
        # client registration (clients join the pool on first selection).
        def build(backend):
            fed = _federation()
            model = make_mlp(64, 10, hidden=(12,), seed=5)
            timing = TimingModel(dimension=model.dimension, comm_time=10.0)
            sampler = ClientSampler(
                [c.client_id for c in fed.clients], count=4, seed=5
            )
            return FLTrainer(model, fed, FABTopK(), timing=timing,
                             learning_rate=0.05, batch_size=8, eval_every=3,
                             sampler=sampler, seed=5, backend=backend)
        fast = build(make_backend(backend_name))
        assert history_rows(build("serial").run(8, k=12)) == history_rows(
            fast.run(8, k=12)
        )
        fast.close()

    @pytest.mark.parametrize("backend_name", FAST_BACKENDS)
    def test_momentum_fallback_identical(self, backend_name):
        # Momentum masking disables the batched residual reset; the
        # vectorized backend must fall back without changing results
        # (momentum state stays in the parent under sharding anyway).
        factory = SPARSIFIER_FACTORIES["fab-top-k"]
        serial = _fl_trainer("serial", factory, momentum_correction=0.5)
        fast = _fl_trainer(
            make_backend(backend_name), factory, momentum_correction=0.5
        )
        assert history_rows(serial.run(8, k=12)) == history_rows(
            fast.run(8, k=12)
        )
        fast.close()

    @pytest.mark.parametrize("backend_name", FAST_BACKENDS)
    def test_cnn_model_grouped_and_identical(self, backend_name):
        # Conv2D/MaxPool2D implement the grouped im2col pass, so CNN
        # configs no longer fall back to per-client gradients on the
        # vectorized backend — and every backend must still produce
        # bit-equal histories, weights and residuals.
        def build(backend):
            ds = make_femnist_like(num_writers=6, samples_per_writer=12,
                                   num_classes=6, image_size=8,
                                   classes_per_writer=3, flatten=False, seed=5)
            fed = partition_by_writer(ds, seed=5)
            model = make_cnn(image_size=8, channels=1, num_classes=6,
                             dense_width=8, seed=5)
            timing = TimingModel(dimension=model.dimension, comm_time=10.0)
            return FLTrainer(model, fed, FABTopK(), timing=timing,
                             learning_rate=0.05, batch_size=6, eval_every=2,
                             seed=5, backend=backend)
        fast = build(make_backend(backend_name))
        assert fast.model.supports_batched_gradients()
        serial = build("serial")
        hs = serial.run(3, k=20)
        hf = fast.run(3, k=20)
        assert history_rows(hs) == history_rows(hf)
        assert contribution_rows(hs) == contribution_rows(hf)
        np.testing.assert_array_equal(
            serial.model.get_weights(), fast.model.get_weights()
        )
        for cs, cf in zip(serial.clients, fast.clients):
            np.testing.assert_array_equal(cs.residual, cf.residual)
        fast.close()

    @staticmethod
    def _async_trainer(backend, synchronous=False):
        fed = _federation()
        model = make_mlp(64, 10, hidden=(12,), seed=5)
        from repro.simulation.heterogeneous import (
            ClientProfile,
            HeterogeneousTimingModel,
        )
        profiles = [
            ClientProfile(
                client_id=c.client_id,
                compute_factor=3.0 if c.client_id % 4 == 0 else 1.0,
                comm_factor=3.0 if c.client_id % 4 == 0 else 1.0,
            )
            for c in fed.clients
        ]
        timing = HeterogeneousTimingModel(
            model.dimension, comm_time=10.0, profiles=profiles
        )
        extra = (
            dict(synchronous=True) if synchronous
            else dict(discount="polynomial", commit_count=4)
        )
        return AsyncFLTrainer(
            model, fed, FABTopK(), timing=timing, learning_rate=0.05,
            batch_size=8, eval_every=4, seed=5, backend=backend,
            profiles=profiles, **extra,
        )

    @pytest.mark.parametrize("backend_name", FAST_BACKENDS)
    def test_async_commit_histories_identical(self, backend_name):
        # The event queue runs in the parent: virtual arrival times,
        # commit batching, and staleness discounts must be backend-blind.
        serial = self._async_trainer("serial")
        fast = self._async_trainer(make_backend(backend_name))
        hs = serial.run(10, k=15)
        hf = fast.run(10, k=15)
        assert history_rows(hs) == history_rows(hf)
        assert contribution_rows(hs) == contribution_rows(hf)
        assert serial.staleness_history == fast.staleness_history
        np.testing.assert_array_equal(
            serial.model.get_weights(), fast.model.get_weights()
        )
        fast.close()

    @pytest.mark.parametrize("backend_name", ("serial",) + FAST_BACKENDS)
    def test_async_sync_equivalence_matches_plain_trainer(
        self, backend_name
    ):
        # Synchronous-equivalence mode: deadline = infinity, discount = 1,
        # commit after the full cohort — the event-queue machinery must
        # reproduce the plain trainer bit for bit on every backend.
        backend = make_backend(backend_name)
        plain = _fl_trainer(backend, SPARSIFIER_FACTORIES["fab-top-k"])
        hp = plain.run(10, k=15)
        fed = _federation()
        model = make_mlp(64, 10, hidden=(12,), seed=5)
        timing = TimingModel(dimension=model.dimension, comm_time=10.0)
        sync = AsyncFLTrainer(
            model, fed, FABTopK(), timing=timing, learning_rate=0.05,
            batch_size=8, eval_every=4, seed=5,
            backend=make_backend(backend_name), synchronous=True,
        )
        hs = sync.run(10, k=15)
        assert history_rows(hp) == history_rows(hs)
        assert contribution_rows(hp) == contribution_rows(hs)
        np.testing.assert_array_equal(
            plain.model.get_weights(), sync.model.get_weights()
        )
        assert all(s == 0.0 for s in sync.staleness_history)
        plain.close()
        sync.close()


# ----------------------------------------------------------------------
# Batched kernels
# ----------------------------------------------------------------------
class TestVirtualEagerEquivalence:
    """A virtual federation equals its materialized eager twin bit for bit.

    The contract every population-scale claim rests on: training over
    :class:`~repro.data.virtual.VirtualFederation` (lazy datasets, lazy
    clients, LRU releases, optional hibernation spilling) must produce
    the same histories, weights and residuals as the same run over
    ``federation.materialize()`` — across sparsifier families, momentum
    correction and every backend.
    """

    #: (sparsifier factory, momentum, spill_after) matrix rows
    VARIANTS = {
        "fab-top-k": (lambda: FABTopK(), 0.0, 0),
        "quantized": (
            lambda: QuantizedSparsifier(
                FABTopK(), UniformQuantizer(num_levels=15, seed=7)
            ),
            0.0,
            0,
        ),
        "momentum": (lambda: FABTopK(), 0.5, 0),
        "spill": (lambda: FABTopK(), 0.0, 2),
        "momentum-spill": (lambda: FABTopK(), 0.5, 2),
    }

    def _virtual_federation(self, seed=7):
        from repro.data.virtual import VirtualFederation

        return VirtualFederation.build(
            10, samples_per_client=14, num_classes=8, image_size=7,
            classes_per_writer=4, test_samples=32, seed=seed,
        )

    def _trainer(self, federation, sparsifier, backend="serial",
                 momentum=0.0, spill_after=0, seed=7):
        model = make_mlp(49, 8, hidden=(10,), seed=seed)
        timing = TimingModel(dimension=model.dimension, comm_time=10.0)
        return FLTrainer(
            model, federation, sparsifier, timing=timing,
            learning_rate=0.05, batch_size=6, eval_every=3, seed=seed,
            backend=backend, momentum_correction=momentum,
            spill_after=spill_after,
        )

    @pytest.mark.parametrize("name", sorted(VARIANTS))
    def test_virtual_matches_materialized_twin(self, name):
        factory, momentum, spill_after = self.VARIANTS[name]
        virtual_fed = self._virtual_federation()
        eager_fed = self._virtual_federation().materialize()
        virtual = self._trainer(
            virtual_fed, factory(), momentum=momentum,
            spill_after=spill_after,
        )
        # The eager twin never spills — hibernation must be exact, so
        # the spilling virtual run still equals the non-spilling eager.
        eager = self._trainer(eager_fed, factory(), momentum=momentum)
        hv = virtual.run(8, k=12)
        he = eager.run(8, k=12)
        assert history_rows(hv) == history_rows(he)
        assert contribution_rows(hv) == contribution_rows(he)
        np.testing.assert_array_equal(
            virtual.model.get_weights(), eager.model.get_weights()
        )
        assert len(virtual.clients) == len(eager.clients)
        for cv, ce in zip(virtual.clients, eager.clients):
            assert cv.client_id == ce.client_id
            np.testing.assert_array_equal(cv.residual, ce.residual)

    @pytest.mark.parametrize("backend_name", FAST_BACKENDS)
    def test_virtual_equivalence_holds_on_fast_backends(self, backend_name):
        eager_fed = self._virtual_federation().materialize()
        eager = self._trainer(eager_fed, FABTopK())
        virtual = self._trainer(
            self._virtual_federation(), FABTopK(),
            backend=make_backend(backend_name),
        )
        he = eager.run(6, k=12)
        hv = virtual.run(6, k=12)
        assert history_rows(he) == history_rows(hv)
        np.testing.assert_array_equal(
            eager.model.get_weights(), virtual.model.get_weights()
        )
        virtual.close()


class TestBatchedKernels:
    def test_gradients_batched_bitwise_equal(self):
        rng = np.random.default_rng(0)
        model = make_mlp(30, 6, hidden=(16, 8), seed=1)
        xs = [rng.standard_normal((8, 30)) for _ in range(20)]
        ys = [rng.integers(0, 6, size=8) for _ in range(20)]
        serial = np.stack([model.gradient(x, y)[0] for x, y in zip(xs, ys)])
        np.testing.assert_array_equal(serial, model.gradients_batched(xs, ys))

    def test_gradients_batched_rejects_ragged(self):
        model = make_logistic(4, 3, seed=0)
        rng = np.random.default_rng(0)
        xs = [rng.standard_normal((4, 4)), rng.standard_normal((5, 4))]
        ys = [rng.integers(0, 3, size=4), rng.integers(0, 3, size=5)]
        with pytest.raises(ValueError, match="batch size"):
            model.gradients_batched(xs, ys)

    def test_gradients_batched_rejects_unsupported_network(self):
        # Active Dropout draws per-forward RNG, so a single grouped pass
        # cannot reproduce the per-client calls and must be refused.
        rng = np.random.default_rng(0)
        network = Sequential(
            [Linear(6, 6, rng), Dropout(0.5, seed=0), Linear(6, 3, rng)]
        )
        model = FlatModel(network)
        assert not model.supports_batched_gradients()
        with pytest.raises(ValueError, match="grouped-batch"):
            model.gradients_batched(
                [rng.standard_normal((2, 6))],
                [rng.integers(0, 3, size=2)],
            )

    def test_gradients_batched_cnn_bitwise_equal(self):
        # The grouped conv/pool pass must equal per-client gradients
        # exactly — this is what lets CNN configs ride the vectorized
        # backend without a fallback.
        rng = np.random.default_rng(0)
        model = make_cnn(image_size=8, channels=1, num_classes=5,
                         conv_channels=(3, 4), dense_width=8, seed=2)
        assert model.supports_batched_gradients()
        xs = [rng.standard_normal((6, 1, 8, 8)) for _ in range(9)]
        ys = [rng.integers(0, 5, size=6) for _ in range(9)]
        serial = np.stack([model.gradient(x, y)[0] for x, y in zip(xs, ys)])
        np.testing.assert_array_equal(serial, model.gradients_batched(xs, ys))

    def test_top_k_batched_matches_rows(self):
        rng = np.random.default_rng(3)
        values = rng.standard_normal((17, 200))
        for k in (1, 7, 64, 200, 500):
            batched = top_k_indices_batched(values, k)
            for row in range(values.shape[0]):
                np.testing.assert_array_equal(
                    batched[row], top_k_indices(values[row], k)
                )

    def test_top_k_batched_deterministic_under_ties(self):
        values = np.zeros((3, 12))
        values[:, [2, 5, 9]] = 1.0  # three-way magnitude ties everywhere
        batched = top_k_indices_batched(values, 2)
        for row in range(3):
            np.testing.assert_array_equal(
                batched[row], top_k_indices(values[row], 2)
            )

    def test_vectorized_gradients_match_serial_backend(self):
        fed = _federation()
        model = make_mlp(64, 10, hidden=(12,), seed=5)
        serial_clients = _fl_trainer("serial", SPARSIFIER_FACTORIES["fab-top-k"])
        vec_clients = _fl_trainer("vectorized", SPARSIFIER_FACTORIES["fab-top-k"])
        del fed, model
        gs = SerialBackend().compute_gradients(
            serial_clients.model, serial_clients.clients
        )
        gv = VectorizedBackend().compute_gradients(
            vec_clients.model, vec_clients.clients
        )
        for a, b in zip(gs, gv):
            np.testing.assert_array_equal(a, b)


# ----------------------------------------------------------------------
# Engine behaviour
# ----------------------------------------------------------------------
class TestEngineBehaviour:
    def test_run_until_loss_no_redundant_evaluation(self):
        trainer = _fl_trainer("serial", SPARSIFIER_FACTORIES["fab-top-k"])
        calls = {"n": 0}
        original = trainer.model.loss_value

        def counting(x, y):
            calls["n"] += 1
            return original(x, y)

        trainer.model.loss_value = counting
        trainer.run_until_loss(target_loss=0.0, k=12, max_rounds=6)
        # Exactly one global-loss evaluation per round: the stopping rule
        # reuses the engine's recorded value instead of re-evaluating.
        assert calls["n"] == len(trainer.history) == 6
        # Every round's loss is recorded (no NaN gaps) for the loop...
        assert all(r.loss == r.loss for r in trainer.history)
        # ...while accuracy keeps the eval_every=4 cadence.
        evaluated = [r.accuracy is not None for r in trainer.history]
        assert evaluated == [True, False, False, True, False, False]

    def test_run_until_loss_stops_at_target(self):
        trainer = _fl_trainer("serial", SPARSIFIER_FACTORIES["fab-top-k"])
        start = trainer.global_loss()
        trainer.run_until_loss(target_loss=start * 0.9, k=20, max_rounds=500)
        assert trainer.history.records[-1].loss <= start * 0.9
        assert len(trainer.history) < 500

    def test_run_round_requires_sparsifier(self):
        fed = _federation()
        model = make_mlp(64, 10, hidden=(12,), seed=5)
        timing = TimingModel(dimension=model.dimension, comm_time=10.0)
        trainer = AlwaysSendAllTrainer(model, fed, timing, seed=5)
        with pytest.raises(RuntimeError, match="sparsifier"):
            trainer.engine.run_round(5)

    def test_trainers_share_engine_state(self):
        trainer = _fl_trainer("serial", SPARSIFIER_FACTORIES["fab-top-k"])
        trainer.step(12)
        assert trainer.round_index == trainer.engine.round_index == 1
        assert trainer.clock == trainer.engine.clock
        assert trainer.history is trainer.engine.history

    def test_resolve_backend(self):
        assert resolve_backend(None).name == "serial"
        assert resolve_backend("serial").name == "serial"
        assert resolve_backend("vectorized").name == "vectorized"
        sharded = resolve_backend("sharded")
        assert sharded.name == "sharded"
        sharded.close()
        backend = VectorizedBackend()
        assert resolve_backend(backend) is backend

    @pytest.mark.parametrize("bogus", ["warp-drive", "", "Serial"])
    def test_resolve_backend_rejects_unknown_names(self, bogus):
        # The error must name every valid backend so a bad --backend or
        # config value is self-diagnosing.
        with pytest.raises(ValueError, match="unknown backend") as excinfo:
            resolve_backend(bogus)
        for name in BACKEND_NAMES:
            assert name in str(excinfo.value)

    def test_config_validates_backend(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig.smoke().with_overrides(backend="vectorized")
        assert config.backend == "vectorized"
        assert ExperimentConfig.smoke().with_overrides(
            backend="sharded", jobs=2
        ).jobs == 2
        with pytest.raises(ValueError, match="backend"):
            ExperimentConfig.smoke().with_overrides(backend="bogus")
        with pytest.raises(ValueError, match="jobs"):
            ExperimentConfig.smoke().with_overrides(jobs=-1)

    def test_cli_exposes_backend_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["fig4", "--backend", "vectorized"])
        assert args.backend == "vectorized"
        args = build_parser().parse_args(
            ["fig4", "--backend", "sharded", "--jobs", "4"]
        )
        assert args.backend == "sharded" and args.jobs == 4

    def test_engine_close_shuts_backend_down(self):
        backend = ShardedBackend(jobs=2)
        trainer = _fl_trainer(backend, SPARSIFIER_FACTORIES["fab-top-k"])
        trainer.run(2, k=12)
        assert backend._pool is not None and backend._pool.alive
        trainer.close()
        assert backend._pool is None
        with pytest.raises(RuntimeError, match="close"):
            trainer.step(12)


# ----------------------------------------------------------------------
# Telemetry bit-identity: traced runs equal untraced runs exactly
# ----------------------------------------------------------------------
ALL_BACKENDS = ("serial",) + FAST_BACKENDS


class TestTelemetryBitIdentity:
    """Telemetry is observation-only on every backend.

    Enabling tracing must change nothing: histories, final weights, and
    residuals are byte-equal to the untraced run (the no-RNG /
    no-numeric-state invariant of :mod:`repro.obs`), including under a
    deployment scenario with the online-adapted deadline — the
    configuration with the most instrumented code paths (drop/recovery/
    deadline events plus counterfactual replays).
    """

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_fl_run_identical_with_tracing(self, backend_name, tmp_path):
        from repro.obs import ENGINE_PHASES, JsonlSink, Telemetry
        from repro.obs import summarize_trace

        factory = SPARSIFIER_FACTORIES["fab-top-k"]
        plain = _fl_trainer(make_backend(backend_name), factory)
        telemetry = Telemetry(sink=JsonlSink(tmp_path / "trace.jsonl"))
        traced = _fl_trainer(make_backend(backend_name), factory,
                             telemetry=telemetry)
        hp = plain.run(8, k=12)
        ht = traced.run(8, k=12)
        telemetry.close()
        assert history_rows(hp) == history_rows(ht)
        assert contribution_rows(hp) == contribution_rows(ht)
        np.testing.assert_array_equal(
            plain.model.get_weights(), traced.model.get_weights()
        )
        for cp, ct in zip(plain.clients, traced.clients):
            np.testing.assert_array_equal(cp.residual, ct.residual)
        plain.close()
        traced.close()
        # The trace itself is schema-valid and covers every engine phase.
        summary = summarize_trace(tmp_path / "trace.jsonl")
        assert summary["rounds"] == 8
        assert summary["phases"] == sorted(ENGINE_PHASES)
        # A clean traced run raises no health alerts.
        assert summary["health"]["healthy"]
        if backend_name == "sharded":
            # Worker-side tracing rode the result pipe: merged spans are
            # attributed to worker processes, one per request per worker.
            workers = [p for p in summary["span_seconds_by_process"]
                       if p.startswith("worker-")]
            assert sorted(workers) == ["worker-0", "worker-1"]
            for worker in workers:
                spans = summary["span_seconds_by_process"][worker]
                assert set(spans) == {"worker.gradients"}

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_scenario_adaptive_deadline_identical_with_tracing(
        self, backend_name, tmp_path
    ):
        from repro.obs import JsonlSink, Telemetry, summarize_trace
        from repro.scenarios import DeploymentScenario, ScenarioConfig
        from repro.simulation.heterogeneous import HeterogeneousTimingModel

        churn = ScenarioConfig(
            availability="markov", p_drop=0.2, p_recover=0.6,
            participants=5, over_selection=0.4,
            deadline=(2.5, 2.5, 9.0), deadline_policy="adaptive",
            slow_fraction=0.25, slow_factor=4.0, seed=5,
        )

        def build(backend, telemetry=None):
            fed = _federation(seed=5)
            model = make_mlp(64, 10, hidden=(12,), seed=5)
            ids = [c.client_id for c in fed.clients]
            profiles = churn.build_profiles(ids)
            timing = HeterogeneousTimingModel(
                model.dimension, comm_time=10.0, profiles=profiles
            )
            scenario = DeploymentScenario.build(churn, ids, timing, profiles)
            return FLTrainer(
                model, fed, FABTopK(), timing=timing, learning_rate=0.05,
                batch_size=8, eval_every=3, seed=5, backend=backend,
                scenario=scenario, telemetry=telemetry,
            )

        plain = build(make_backend(backend_name))
        telemetry = Telemetry(sink=JsonlSink(tmp_path / "trace.jsonl"))
        traced = build(make_backend(backend_name), telemetry=telemetry)
        hp = plain.run(8, k=12)
        ht = traced.run(8, k=12)
        telemetry.close()
        assert history_rows(hp) == history_rows(ht)
        np.testing.assert_array_equal(
            plain.model.get_weights(), traced.model.get_weights()
        )
        for cp, ct in zip(plain.clients, traced.clients):
            np.testing.assert_array_equal(cp.residual, ct.residual)
        plain.close()
        traced.close()
        summary = summarize_trace(tmp_path / "trace.jsonl")
        assert summary["rounds"] == 8
        assert summary["events"].get("deadline", 0) == 8

    def test_adaptive_k_probe_events_identical_with_tracing(self, tmp_path):
        from repro.obs import JsonlSink, Telemetry, summarize_trace

        def build(telemetry=None):
            fed = _federation()
            model = make_mlp(64, 10, hidden=(12,), seed=5)
            timing = TimingModel(dimension=model.dimension, comm_time=10.0)
            policy = SignPolicy(
                SignOGD(SearchInterval(2.0, float(model.dimension)))
            )
            return AdaptiveKTrainer(model, fed, FABTopK(), policy, timing,
                                    learning_rate=0.05, batch_size=8,
                                    eval_every=2, seed=5,
                                    telemetry=telemetry)

        telemetry = Telemetry(sink=JsonlSink(tmp_path / "trace.jsonl"))
        traced = build(telemetry=telemetry)
        assert history_rows(build().run(6)) == history_rows(traced.run(6))
        telemetry.close()
        summary = summarize_trace(tmp_path / "trace.jsonl")
        assert summary["rounds"] == 6
        assert summary["events"]["probe"] == 6
