"""Tests for synthetic datasets and partitioners."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import (
    ClientDataset,
    partition_by_class,
    partition_by_writer,
    partition_dirichlet,
    partition_iid,
)
from repro.data.synthetic import (
    SyntheticDataset,
    make_cifar_like,
    make_femnist_like,
    make_gaussian_blobs,
)


class TestFemnistLike:
    def test_shapes_and_ranges(self):
        ds = make_femnist_like(num_writers=5, samples_per_writer=10, image_size=8)
        assert len(ds) == 50
        assert ds.x.shape == (50, 64)
        assert ds.num_classes == 62
        assert ds.y.min() >= 0 and ds.y.max() < 62
        assert np.unique(ds.writer).size == 5

    def test_unflattened_shape(self):
        ds = make_femnist_like(num_writers=3, samples_per_writer=5, image_size=8,
                               flatten=False)
        assert ds.x.shape == (15, 1, 8, 8)

    def test_writer_class_subset(self):
        ds = make_femnist_like(num_writers=4, samples_per_writer=50,
                               classes_per_writer=3, seed=1)
        for w in range(4):
            labels = np.unique(ds.y[ds.writer == w])
            assert labels.size <= 3

    def test_determinism(self):
        a = make_femnist_like(num_writers=3, samples_per_writer=5, seed=9)
        b = make_femnist_like(num_writers=3, samples_per_writer=5, seed=9)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_seeds_differ(self):
        a = make_femnist_like(num_writers=3, samples_per_writer=5, seed=1)
        b = make_femnist_like(num_writers=3, samples_per_writer=5, seed=2)
        assert not np.array_equal(a.x, b.x)

    def test_test_pool_present(self):
        ds = make_femnist_like(num_writers=5, samples_per_writer=20)
        assert ds.test_x is not None and ds.test_y is not None
        assert ds.test_x.shape[0] == ds.test_y.shape[0] > 0

    def test_classes_per_writer_validation(self):
        with pytest.raises(ValueError):
            make_femnist_like(num_classes=5, classes_per_writer=10)

    def test_class_separability(self):
        # Same-class samples must be closer than cross-class on average,
        # otherwise the learning experiments are meaningless.
        ds = make_femnist_like(num_writers=10, samples_per_writer=30,
                               classes_per_writer=4, num_classes=6, seed=3)
        same, cross = [], []
        for i in range(0, 200, 5):
            for j in range(i + 1, 200, 7):
                d = np.linalg.norm(ds.x[i] - ds.x[j])
                (same if ds.y[i] == ds.y[j] else cross).append(d)
        assert np.mean(same) < np.mean(cross)


class TestCifarLike:
    def test_one_class_per_client(self):
        ds = make_cifar_like(num_clients=20, samples_per_client=10)
        for client in range(20):
            labels = np.unique(ds.y[ds.writer == client])
            assert labels.size == 1
            assert labels[0] == client % 10

    def test_three_channels(self):
        ds = make_cifar_like(num_clients=10, samples_per_client=5, image_size=8,
                             flatten=False)
        assert ds.x.shape == (50, 3, 8, 8)

    def test_flat_dim(self):
        ds = make_cifar_like(num_clients=10, samples_per_client=5, image_size=8)
        assert ds.feature_dim == 3 * 8 * 8


class TestGaussianBlobs:
    def test_learnable(self):
        ds = make_gaussian_blobs(num_samples=100, num_classes=3, separation=5.0)
        # Nearest-class-mean classification should beat chance easily.
        means = np.stack([ds.x[ds.y == c].mean(axis=0) for c in range(3)])
        pred = np.argmin(
            ((ds.x[:, None, :] - means[None]) ** 2).sum(axis=2), axis=1
        )
        assert (pred == ds.y).mean() > 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticDataset(
                x=np.zeros((3, 2)), y=np.zeros(2, dtype=int),
                writer=np.zeros(3, dtype=int), num_classes=2,
            )
        with pytest.raises(ValueError):
            SyntheticDataset(
                x=np.zeros((3, 2)), y=np.array([0, 1, 5]),
                writer=np.zeros(3, dtype=int), num_classes=2,
            )


class TestClientDataset:
    def test_minibatch_sizes(self):
        c = ClientDataset(0, np.arange(20).reshape(10, 2).astype(float),
                          np.arange(10) % 2)
        x, y = c.minibatch(4)
        assert x.shape == (4, 2) and y.shape == (4,)

    def test_minibatch_full_when_small(self):
        c = ClientDataset(0, np.zeros((3, 2)), np.zeros(3, dtype=int))
        x, y = c.minibatch(10)
        assert x.shape[0] == 3

    def test_minibatch_no_duplicates(self):
        c = ClientDataset(0, np.arange(10).reshape(10, 1).astype(float),
                          np.zeros(10, dtype=int))
        x, _ = c.minibatch(8)
        assert np.unique(x).size == 8

    def test_empty_client_rejected(self):
        with pytest.raises(ValueError):
            ClientDataset(0, np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            ClientDataset(0, np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_label_histogram(self):
        c = ClientDataset(0, np.zeros((4, 1)), np.array([0, 0, 2, 2]))
        np.testing.assert_array_equal(c.label_histogram(3), [2, 0, 2])

    def test_deterministic_sampling(self):
        data = np.arange(40).reshape(20, 2).astype(float)
        y = np.zeros(20, dtype=int)
        a = ClientDataset(0, data, y, seed=4).minibatch(5)[0]
        b = ClientDataset(0, data, y, seed=4).minibatch(5)[0]
        np.testing.assert_array_equal(a, b)


class TestPartitioners:
    @pytest.fixture
    def femnist(self):
        return make_femnist_like(num_writers=8, samples_per_writer=20, seed=0)

    def test_by_writer_counts(self, femnist):
        fed = partition_by_writer(femnist)
        assert fed.num_clients == 8
        assert fed.total_samples == len(femnist)
        np.testing.assert_array_equal(fed.sample_counts, [20] * 8)

    def test_by_writer_non_iid(self, femnist):
        fed = partition_by_writer(femnist)
        assert fed.non_iid_degree() > 0.3

    def test_iid_partition_low_skew(self, femnist):
        fed = partition_iid(femnist, num_clients=4, seed=0)
        assert fed.num_clients == 4
        assert fed.total_samples == len(femnist)
        assert fed.non_iid_degree() < partition_by_writer(femnist).non_iid_degree()

    def test_iid_too_many_clients(self, femnist):
        with pytest.raises(ValueError):
            partition_iid(femnist, num_clients=10_000)

    def test_by_class_single_label(self):
        ds = make_cifar_like(num_clients=5, samples_per_client=40, num_classes=5,
                             seed=0)
        fed = partition_by_class(ds, num_clients=10, seed=0)
        assert fed.num_clients == 10
        for c in fed.clients:
            assert np.unique(c.y).size == 1

    def test_by_class_needs_enough_clients(self):
        ds = make_cifar_like(num_clients=10, samples_per_client=10, num_classes=10)
        with pytest.raises(ValueError):
            partition_by_class(ds, num_clients=5)

    def test_by_class_preserves_samples(self):
        ds = make_cifar_like(num_clients=5, samples_per_client=40, num_classes=5)
        fed = partition_by_class(ds, num_clients=10)
        assert fed.total_samples == len(ds)

    def test_dirichlet_extreme_alpha_is_skewed(self):
        ds = make_gaussian_blobs(num_samples=500, num_classes=5, seed=0)
        skewed = partition_dirichlet(ds, num_clients=5, alpha=0.05, seed=0)
        uniform = partition_dirichlet(ds, num_clients=5, alpha=100.0, seed=0)
        assert skewed.non_iid_degree() > uniform.non_iid_degree()

    def test_dirichlet_no_empty_clients(self):
        ds = make_gaussian_blobs(num_samples=60, num_classes=3, seed=1)
        fed = partition_dirichlet(ds, num_clients=15, alpha=0.05, seed=1)
        for c in fed.clients:
            assert len(c) >= 1

    def test_dirichlet_alpha_validation(self):
        ds = make_gaussian_blobs(num_samples=50)
        with pytest.raises(ValueError):
            partition_dirichlet(ds, num_clients=3, alpha=0.0)

    def test_global_pool(self, femnist):
        fed = partition_by_writer(femnist)
        x, y = fed.global_pool()
        assert x.shape[0] == y.shape[0] == len(femnist)

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_iid_partition_conserves_everything(self, num_clients, seed):
        ds = make_gaussian_blobs(num_samples=100, num_classes=4, seed=seed)
        fed = partition_iid(ds, num_clients=num_clients, seed=seed)
        assert fed.total_samples == 100
        x, y = fed.global_pool()
        # Every original sample appears exactly once (order may differ).
        assert sorted(map(tuple, x.round(9))) == sorted(map(tuple, ds.x.round(9)))
        np.testing.assert_array_equal(np.sort(y), np.sort(ds.y))


# ----------------------------------------------------------------------
# Per-client materialization (the virtual-population data contract)
# ----------------------------------------------------------------------
def _small_femnist(seed=0):
    return make_femnist_like(num_writers=6, samples_per_writer=12,
                             num_classes=8, image_size=6,
                             classes_per_writer=3, seed=seed)


#: (partitioner name, eager builder, per-cid materializer, num_clients)
PARTITIONERS = {
    "writer": (
        lambda ds, seed: partition_by_writer(ds, seed=seed),
        lambda ds, seed, cid: partition_by_writer(ds, seed=seed, client_id=cid),
        6,
    ),
    "class": (
        lambda ds, seed: partition_by_class(ds, num_clients=10, seed=seed),
        lambda ds, seed, cid: partition_by_class(
            ds, num_clients=10, seed=seed, client_id=cid
        ),
        10,
    ),
    "dirichlet": (
        lambda ds, seed: partition_dirichlet(
            ds, num_clients=7, alpha=0.5, seed=seed
        ),
        lambda ds, seed, cid: partition_dirichlet(
            ds, num_clients=7, alpha=0.5, seed=seed, client_id=cid
        ),
        7,
    ),
}


class TestPerClientMaterialization:
    """``materialize(cid)`` must be bit-identical to eager slicing."""

    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    def test_matches_eager_partition(self, name):
        eager_build, materialize, num_clients = PARTITIONERS[name]
        ds = _small_femnist()
        eager = eager_build(ds, 3)
        for cid in range(num_clients):
            lone = materialize(ds, 3, cid)
            ref = eager.clients[cid]
            assert lone.client_id == ref.client_id == cid
            np.testing.assert_array_equal(lone.x, ref.x)
            np.testing.assert_array_equal(lone.y, ref.y)
            # Same minibatch stream too: the materialized client can
            # substitute for the eager one mid-simulation.
            np.testing.assert_array_equal(
                lone.minibatch(4)[0], ref.minibatch(4)[0]
            )

    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    def test_rejects_out_of_range_cid(self, name):
        _, materialize, num_clients = PARTITIONERS[name]
        ds = _small_femnist()
        with pytest.raises(ValueError, match="outside"):
            materialize(ds, 3, num_clients)
        with pytest.raises(ValueError, match="outside"):
            materialize(ds, 3, -1)

    @given(
        seed=st.integers(min_value=0, max_value=30),
        queries=st.lists(
            st.integers(min_value=0, max_value=6), min_size=1, max_size=10
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_dirichlet_purity_under_query_order(self, seed, queries):
        # Same (seed, cid) -> byte-equal arrays regardless of which
        # clients were materialized before, in what order, how often.
        ds = _small_femnist(seed=seed % 3)
        reference = {
            cid: partition_dirichlet(
                ds, num_clients=7, alpha=0.5, seed=seed, client_id=cid
            )
            for cid in range(7)
        }
        for cid in queries:
            again = partition_dirichlet(
                ds, num_clients=7, alpha=0.5, seed=seed, client_id=cid
            )
            assert again.x.tobytes() == reference[cid].x.tobytes()
            assert again.y.tobytes() == reference[cid].y.tobytes()


# ----------------------------------------------------------------------
# Virtual federations
# ----------------------------------------------------------------------
from repro.data.virtual import (  # noqa: E402  (grouped with its tests)
    ENUMERATION_LIMIT,
    VirtualFederation,
    VirtualSpec,
)

SPEC = dict(samples_per_client=9, num_classes=6, image_size=5,
            classes_per_writer=3, test_samples=16, seed=7)


def _virtual(population=12, cache_size=256):
    return VirtualFederation.build(
        population, cache_size=cache_size, **SPEC
    )


class TestVirtualSpec:
    def test_round_trips_through_dict(self):
        spec = VirtualSpec(population=50, **SPEC)
        assert VirtualSpec.from_dict(spec.to_dict()) == spec
        assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()

    def test_validation(self):
        with pytest.raises(ValueError, match="population"):
            VirtualSpec(population=0)
        with pytest.raises(ValueError, match="exceed"):
            VirtualSpec(population=5, num_classes=3, classes_per_writer=4)

    def test_feature_dim(self):
        assert VirtualSpec(population=1, image_size=5).feature_dim == 25


class TestVirtualFederation:
    def test_satisfies_federated_dataset_surface(self):
        fed = _virtual()
        assert fed.num_clients == 12
        assert list(fed.client_ids) == list(range(12))
        np.testing.assert_array_equal(fed.sample_counts, np.full(12, 9))
        assert fed.total_samples == 108
        assert fed.test_x.shape[0] == fed.test_y.shape[0] == 16
        dataset = fed.client_dataset(3)
        assert len(dataset) == 9
        assert dataset.x.shape == (9, 25)
        np.testing.assert_array_equal(
            dataset.label_histogram(6),
            np.bincount(dataset.y, minlength=6),
        )

    def test_client_dataset_identity_stable(self):
        fed = _virtual()
        assert fed.client_dataset(4) is fed.client_dataset(4)
        with pytest.raises(ValueError, match="outside"):
            fed.client_dataset(12)

    def test_materialize_is_the_bit_identical_eager_twin(self):
        fed = _virtual()
        eager = fed.materialize()
        assert eager.num_clients == 12
        for cid in range(12):
            lazy = fed.client_dataset(cid)
            np.testing.assert_array_equal(lazy.x, eager.clients[cid].x)
            np.testing.assert_array_equal(lazy.y, eager.clients[cid].y)
            # ... and the minibatch streams coincide draw for draw.
            np.testing.assert_array_equal(
                lazy.minibatch(4)[0], eager.clients[cid].minibatch(4)[0]
            )
        np.testing.assert_array_equal(fed.test_x, eager.test_x)
        np.testing.assert_array_equal(fed.test_y, eager.test_y)

    def test_release_and_regenerate_is_exact(self):
        fed = _virtual()
        dataset = fed.client_dataset(5)
        x_before = dataset.x.copy()
        batch_ref = _virtual().client_dataset(5)  # never-released twin
        np.testing.assert_array_equal(
            dataset.minibatch(4)[0], batch_ref.minibatch(4)[0]
        )
        dataset.release()
        assert not dataset.materialized
        np.testing.assert_array_equal(dataset.x, x_before)
        # The draw stream survived the release: next draws still match
        # the twin that never released.
        np.testing.assert_array_equal(
            dataset.minibatch(4)[0], batch_ref.minibatch(4)[0]
        )

    def test_lru_bounds_resident_arrays(self):
        fed = _virtual(population=10, cache_size=3)
        datasets = [fed.client_dataset(cid) for cid in range(10)]
        for dataset in datasets:
            dataset.x  # materialize in order
        resident = [d.client_id for d in datasets if d.materialized]
        assert resident == [7, 8, 9]  # only the LRU tail holds arrays
        # Touching an evicted client regenerates and evicts the oldest.
        datasets[0].x
        assert datasets[0].materialized and not datasets[7].materialized

    def test_eval_pool_matches_eager_construction(self):
        fed = _virtual()
        x, y = fed.eval_pool(max_samples=20, seed=11)
        gx, gy = fed.materialize().global_pool()
        rng = np.random.default_rng((11, 0xE0A1))
        rows = rng.choice(108, size=20, replace=False)
        np.testing.assert_array_equal(x, gx[rows])
        np.testing.assert_array_equal(y, gy[rows])
        # Small pools short-circuit to the full pool.
        fx, fy = fed.eval_pool(max_samples=1000, seed=11)
        np.testing.assert_array_equal(fx, gx)
        np.testing.assert_array_equal(fy, gy)

    def test_enumeration_guard(self):
        fed = _virtual(population=ENUMERATION_LIMIT + 1)
        with pytest.raises(RuntimeError, match="O\\(population\\)"):
            fed.clients
        with pytest.raises(RuntimeError, match="O\\(population\\)"):
            fed.global_pool()
        with pytest.raises(RuntimeError, match="O\\(population\\)"):
            fed.materialize()
        # Point queries stay fine at any size.
        assert fed.client_dataset(ENUMERATION_LIMIT).x.shape == (9, 25)

    def test_virtual_spec_reaches_the_backend(self):
        fed = _virtual()
        assert fed.is_virtual
        assert fed.client_dataset(2).virtual_spec is fed.spec

    @given(
        cid=st.integers(min_value=0, max_value=11),
        queries=st.lists(
            st.integers(min_value=0, max_value=11),
            min_size=0, max_size=8,
        ),
        spec_seed=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=20, deadline=None)
    def test_client_arrays_are_pure(self, cid, queries, spec_seed):
        # Same (seed, cid) -> byte-equal arrays across calls,
        # instances and query orders: the invariant residual
        # spilling and worker-side regeneration rest on.
        spec = dict(SPEC, seed=spec_seed)
        fresh = VirtualFederation.build(12, **spec)
        reference_x, reference_y = fresh.client_arrays(cid)
        warmed = VirtualFederation.build(12, **spec)
        for other in queries:  # materialize others first, any order
            warmed.client_arrays(other)
        x, y = warmed.client_arrays(cid)
        assert x.tobytes() == reference_x.tobytes()
        assert y.tobytes() == reference_y.tobytes()
        again_x, again_y = warmed.client_arrays(cid)
        assert again_x.tobytes() == reference_x.tobytes()
        assert again_y.tobytes() == reference_y.tobytes()
