"""Tests for synthetic datasets and partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import (
    ClientDataset,
    partition_by_class,
    partition_by_writer,
    partition_dirichlet,
    partition_iid,
)
from repro.data.synthetic import (
    SyntheticDataset,
    make_cifar_like,
    make_femnist_like,
    make_gaussian_blobs,
)


class TestFemnistLike:
    def test_shapes_and_ranges(self):
        ds = make_femnist_like(num_writers=5, samples_per_writer=10, image_size=8)
        assert len(ds) == 50
        assert ds.x.shape == (50, 64)
        assert ds.num_classes == 62
        assert ds.y.min() >= 0 and ds.y.max() < 62
        assert np.unique(ds.writer).size == 5

    def test_unflattened_shape(self):
        ds = make_femnist_like(num_writers=3, samples_per_writer=5, image_size=8,
                               flatten=False)
        assert ds.x.shape == (15, 1, 8, 8)

    def test_writer_class_subset(self):
        ds = make_femnist_like(num_writers=4, samples_per_writer=50,
                               classes_per_writer=3, seed=1)
        for w in range(4):
            labels = np.unique(ds.y[ds.writer == w])
            assert labels.size <= 3

    def test_determinism(self):
        a = make_femnist_like(num_writers=3, samples_per_writer=5, seed=9)
        b = make_femnist_like(num_writers=3, samples_per_writer=5, seed=9)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_seeds_differ(self):
        a = make_femnist_like(num_writers=3, samples_per_writer=5, seed=1)
        b = make_femnist_like(num_writers=3, samples_per_writer=5, seed=2)
        assert not np.array_equal(a.x, b.x)

    def test_test_pool_present(self):
        ds = make_femnist_like(num_writers=5, samples_per_writer=20)
        assert ds.test_x is not None and ds.test_y is not None
        assert ds.test_x.shape[0] == ds.test_y.shape[0] > 0

    def test_classes_per_writer_validation(self):
        with pytest.raises(ValueError):
            make_femnist_like(num_classes=5, classes_per_writer=10)

    def test_class_separability(self):
        # Same-class samples must be closer than cross-class on average,
        # otherwise the learning experiments are meaningless.
        ds = make_femnist_like(num_writers=10, samples_per_writer=30,
                               classes_per_writer=4, num_classes=6, seed=3)
        same, cross = [], []
        for i in range(0, 200, 5):
            for j in range(i + 1, 200, 7):
                d = np.linalg.norm(ds.x[i] - ds.x[j])
                (same if ds.y[i] == ds.y[j] else cross).append(d)
        assert np.mean(same) < np.mean(cross)


class TestCifarLike:
    def test_one_class_per_client(self):
        ds = make_cifar_like(num_clients=20, samples_per_client=10)
        for client in range(20):
            labels = np.unique(ds.y[ds.writer == client])
            assert labels.size == 1
            assert labels[0] == client % 10

    def test_three_channels(self):
        ds = make_cifar_like(num_clients=10, samples_per_client=5, image_size=8,
                             flatten=False)
        assert ds.x.shape == (50, 3, 8, 8)

    def test_flat_dim(self):
        ds = make_cifar_like(num_clients=10, samples_per_client=5, image_size=8)
        assert ds.feature_dim == 3 * 8 * 8


class TestGaussianBlobs:
    def test_learnable(self):
        ds = make_gaussian_blobs(num_samples=100, num_classes=3, separation=5.0)
        # Nearest-class-mean classification should beat chance easily.
        means = np.stack([ds.x[ds.y == c].mean(axis=0) for c in range(3)])
        pred = np.argmin(
            ((ds.x[:, None, :] - means[None]) ** 2).sum(axis=2), axis=1
        )
        assert (pred == ds.y).mean() > 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticDataset(
                x=np.zeros((3, 2)), y=np.zeros(2, dtype=int),
                writer=np.zeros(3, dtype=int), num_classes=2,
            )
        with pytest.raises(ValueError):
            SyntheticDataset(
                x=np.zeros((3, 2)), y=np.array([0, 1, 5]),
                writer=np.zeros(3, dtype=int), num_classes=2,
            )


class TestClientDataset:
    def test_minibatch_sizes(self):
        c = ClientDataset(0, np.arange(20).reshape(10, 2).astype(float),
                          np.arange(10) % 2)
        x, y = c.minibatch(4)
        assert x.shape == (4, 2) and y.shape == (4,)

    def test_minibatch_full_when_small(self):
        c = ClientDataset(0, np.zeros((3, 2)), np.zeros(3, dtype=int))
        x, y = c.minibatch(10)
        assert x.shape[0] == 3

    def test_minibatch_no_duplicates(self):
        c = ClientDataset(0, np.arange(10).reshape(10, 1).astype(float),
                          np.zeros(10, dtype=int))
        x, _ = c.minibatch(8)
        assert np.unique(x).size == 8

    def test_empty_client_rejected(self):
        with pytest.raises(ValueError):
            ClientDataset(0, np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            ClientDataset(0, np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_label_histogram(self):
        c = ClientDataset(0, np.zeros((4, 1)), np.array([0, 0, 2, 2]))
        np.testing.assert_array_equal(c.label_histogram(3), [2, 0, 2])

    def test_deterministic_sampling(self):
        data = np.arange(40).reshape(20, 2).astype(float)
        y = np.zeros(20, dtype=int)
        a = ClientDataset(0, data, y, seed=4).minibatch(5)[0]
        b = ClientDataset(0, data, y, seed=4).minibatch(5)[0]
        np.testing.assert_array_equal(a, b)


class TestPartitioners:
    @pytest.fixture
    def femnist(self):
        return make_femnist_like(num_writers=8, samples_per_writer=20, seed=0)

    def test_by_writer_counts(self, femnist):
        fed = partition_by_writer(femnist)
        assert fed.num_clients == 8
        assert fed.total_samples == len(femnist)
        np.testing.assert_array_equal(fed.sample_counts, [20] * 8)

    def test_by_writer_non_iid(self, femnist):
        fed = partition_by_writer(femnist)
        assert fed.non_iid_degree() > 0.3

    def test_iid_partition_low_skew(self, femnist):
        fed = partition_iid(femnist, num_clients=4, seed=0)
        assert fed.num_clients == 4
        assert fed.total_samples == len(femnist)
        assert fed.non_iid_degree() < partition_by_writer(femnist).non_iid_degree()

    def test_iid_too_many_clients(self, femnist):
        with pytest.raises(ValueError):
            partition_iid(femnist, num_clients=10_000)

    def test_by_class_single_label(self):
        ds = make_cifar_like(num_clients=5, samples_per_client=40, num_classes=5,
                             seed=0)
        fed = partition_by_class(ds, num_clients=10, seed=0)
        assert fed.num_clients == 10
        for c in fed.clients:
            assert np.unique(c.y).size == 1

    def test_by_class_needs_enough_clients(self):
        ds = make_cifar_like(num_clients=10, samples_per_client=10, num_classes=10)
        with pytest.raises(ValueError):
            partition_by_class(ds, num_clients=5)

    def test_by_class_preserves_samples(self):
        ds = make_cifar_like(num_clients=5, samples_per_client=40, num_classes=5)
        fed = partition_by_class(ds, num_clients=10)
        assert fed.total_samples == len(ds)

    def test_dirichlet_extreme_alpha_is_skewed(self):
        ds = make_gaussian_blobs(num_samples=500, num_classes=5, seed=0)
        skewed = partition_dirichlet(ds, num_clients=5, alpha=0.05, seed=0)
        uniform = partition_dirichlet(ds, num_clients=5, alpha=100.0, seed=0)
        assert skewed.non_iid_degree() > uniform.non_iid_degree()

    def test_dirichlet_no_empty_clients(self):
        ds = make_gaussian_blobs(num_samples=60, num_classes=3, seed=1)
        fed = partition_dirichlet(ds, num_clients=15, alpha=0.05, seed=1)
        for c in fed.clients:
            assert len(c) >= 1

    def test_dirichlet_alpha_validation(self):
        ds = make_gaussian_blobs(num_samples=50)
        with pytest.raises(ValueError):
            partition_dirichlet(ds, num_clients=3, alpha=0.0)

    def test_global_pool(self, femnist):
        fed = partition_by_writer(femnist)
        x, y = fed.global_pool()
        assert x.shape[0] == y.shape[0] == len(femnist)

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_iid_partition_conserves_everything(self, num_clients, seed):
        ds = make_gaussian_blobs(num_samples=100, num_classes=4, seed=seed)
        fed = partition_iid(ds, num_clients=num_clients, seed=seed)
        assert fed.total_samples == 100
        x, y = fed.global_pool()
        # Every original sample appears exactly once (order may differ).
        assert sorted(map(tuple, x.round(9))) == sorted(map(tuple, ds.x.round(9)))
        np.testing.assert_array_equal(np.sort(y), np.sort(ds.y))
