"""Tests for losses, initializers, FlatModel, and the model zoo."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.flat import FlatModel
from repro.nn.init import glorot_uniform, he_normal, normal_init, zeros_init
from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.losses import MSELoss, SoftmaxCrossEntropy
from repro.nn.models import make_cnn, make_logistic, make_mlp

RNG = np.random.default_rng(11)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        targets = np.array([0, 1])
        assert loss.forward(logits, targets) < 1e-6

    def test_uniform_logits_log_classes(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((4, 8))
        targets = np.array([0, 1, 2, 3])
        assert loss.forward(logits, targets) == pytest.approx(np.log(8))

    def test_numeric_gradient(self):
        loss = SoftmaxCrossEntropy()
        logits = RNG.standard_normal((5, 4))
        targets = np.array([0, 1, 2, 3, 0])
        grad = loss.backward(logits.copy(), targets)
        eps = 1e-6
        for i in range(5):
            for j in range(4):
                lp = logits.copy()
                lp[i, j] += eps
                lm = logits.copy()
                lm[i, j] -= eps
                num = (loss.forward(lp, targets) - loss.forward(lm, targets)) / (2 * eps)
                assert grad[i, j] == pytest.approx(num, abs=1e-6)

    def test_large_logits_stable(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[1000.0, 0.0], [0.0, 1000.0]])
        value = loss.forward(logits, np.array([0, 1]))
        assert np.isfinite(value)
        assert value < 1e-6

    def test_per_sample_matches_mean(self):
        loss = SoftmaxCrossEntropy()
        logits = RNG.standard_normal((6, 3))
        targets = RNG.integers(0, 3, 6)
        per = loss.per_sample(logits, targets)
        assert per.shape == (6,)
        assert per.mean() == pytest.approx(loss.forward(logits, targets))

    def test_predict(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[1.0, 3.0, 2.0], [5.0, 0.0, 1.0]])
        np.testing.assert_array_equal(loss.predict(logits), [1, 0])


class TestMSELoss:
    def test_zero_at_target(self):
        loss = MSELoss()
        x = RNG.standard_normal((3, 2))
        assert loss.forward(x, x) == 0.0

    def test_numeric_gradient(self):
        loss = MSELoss()
        pred = RNG.standard_normal((4, 3))
        target = RNG.standard_normal((4, 3))
        grad = loss.backward(pred.copy(), target)
        eps = 1e-6
        for i in range(4):
            for j in range(3):
                pp = pred.copy()
                pp[i, j] += eps
                pm = pred.copy()
                pm[i, j] -= eps
                num = (loss.forward(pp, target) - loss.forward(pm, target)) / (2 * eps)
                assert grad[i, j] == pytest.approx(num, abs=1e-6)


class TestInitializers:
    def test_glorot_bounds(self):
        w = glorot_uniform((100, 50), np.random.default_rng(0))
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= limit)

    def test_he_std(self):
        w = he_normal((10_000, 4), np.random.default_rng(0))
        assert w.std() == pytest.approx(np.sqrt(2.0 / 10_000), rel=0.1)

    def test_zeros(self):
        np.testing.assert_allclose(zeros_init((3, 3), np.random.default_rng(0)), 0.0)

    def test_normal_std(self):
        w = normal_init((200, 200), np.random.default_rng(0), std=0.05)
        assert w.std() == pytest.approx(0.05, rel=0.1)

    def test_conv_fan_shapes(self):
        w = glorot_uniform((8, 4, 3, 3), np.random.default_rng(0))
        assert w.shape == (8, 4, 3, 3)

    def test_unsupported_shape_raises(self):
        with pytest.raises(ValueError):
            glorot_uniform((2, 2, 2), np.random.default_rng(0))

    def test_determinism(self):
        a = glorot_uniform((5, 5), np.random.default_rng(42))
        b = glorot_uniform((5, 5), np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)


class TestFlatModel:
    def _model(self, seed=0):
        rng = np.random.default_rng(seed)
        net = Sequential([Linear(6, 5, rng), ReLU(), Linear(5, 3, rng)])
        return FlatModel(net)

    def test_dimension(self):
        model = self._model()
        assert model.dimension == 6 * 5 + 5 + 5 * 3 + 3

    def test_get_set_roundtrip(self):
        model = self._model()
        w = model.get_weights()
        new = RNG.standard_normal(model.dimension)
        model.set_weights(new)
        np.testing.assert_allclose(model.get_weights(), new)
        model.set_weights(w)
        np.testing.assert_allclose(model.get_weights(), w)

    def test_set_weights_shape_check(self):
        model = self._model()
        with pytest.raises(ValueError):
            model.set_weights(np.zeros(model.dimension + 1))

    def test_gradient_matches_finite_difference(self):
        model = self._model(3)
        x = RNG.standard_normal((4, 6))
        y = np.array([0, 1, 2, 0])
        grad, loss0 = model.gradient(x, y)
        assert loss0 == pytest.approx(model.loss_value(x, y))
        w = model.get_weights()
        eps = 1e-6
        idx = RNG.choice(model.dimension, size=12, replace=False)
        for i in idx:
            wp = w.copy()
            wp[i] += eps
            wm = w.copy()
            wm[i] -= eps
            num = (model.loss_at(wp, x, y) - model.loss_at(wm, x, y)) / (2 * eps)
            assert grad[i] == pytest.approx(num, abs=1e-6)

    def test_loss_at_restores_weights(self):
        model = self._model()
        x = RNG.standard_normal((4, 6))
        y = np.array([0, 1, 2, 0])
        w = model.get_weights()
        model.loss_at(RNG.standard_normal(model.dimension), x, y)
        np.testing.assert_allclose(model.get_weights(), w)

    def test_per_sample_losses_at(self):
        model = self._model()
        x = RNG.standard_normal((4, 6))
        y = np.array([0, 1, 2, 0])
        other = RNG.standard_normal(model.dimension)
        per = model.per_sample_losses_at(other, x, y)
        assert per.shape == (4,)
        assert per.mean() == pytest.approx(model.loss_at(other, x, y))

    def test_accuracy(self):
        model = self._model()
        x = RNG.standard_normal((30, 6))
        y = RNG.integers(0, 3, 30)
        acc = model.accuracy(x, y)
        assert 0.0 <= acc <= 1.0

    def test_sgd_step_decreases_loss(self):
        model = self._model(1)
        x = RNG.standard_normal((16, 6))
        y = RNG.integers(0, 3, 16)
        before = model.loss_value(x, y)
        grad, _ = model.gradient(x, y)
        model.set_weights(model.get_weights() - 0.05 * grad)
        assert model.loss_value(x, y) < before

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_gradient_dimension_invariant(self, seed):
        model = self._model(seed % 100)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((3, 6))
        y = rng.integers(0, 3, 3)
        grad, _ = model.gradient(x, y)
        assert grad.shape == (model.dimension,)
        assert np.all(np.isfinite(grad))


class TestModelZoo:
    def test_mlp_dimension(self):
        model = make_mlp(784, 62, hidden=(64,))
        assert model.dimension == 784 * 64 + 64 + 64 * 62 + 62

    def test_logistic_dimension(self):
        model = make_logistic(20, 5)
        assert model.dimension == 20 * 5 + 5

    def test_cnn_forward_shape(self):
        model = make_cnn(image_size=8, channels=1, num_classes=4,
                         conv_channels=(2, 4), dense_width=8)
        x = RNG.standard_normal((2, 1, 8, 8))
        logits = model.network.forward(x)
        assert logits.shape == (2, 4)

    def test_cnn_rejects_bad_image_size(self):
        with pytest.raises(ValueError):
            make_cnn(image_size=10, channels=1, num_classes=4)

    def test_cnn_trains(self):
        model = make_cnn(image_size=8, channels=1, num_classes=2,
                         conv_channels=(2, 2), dense_width=4, seed=0)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((20, 1, 8, 8))
        y = (x.mean(axis=(1, 2, 3)) > 0).astype(int)
        before = model.loss_value(x, y)
        for _ in range(30):
            grad, _ = model.gradient(x, y)
            model.set_weights(model.get_weights() - 0.1 * grad)
        assert model.loss_value(x, y) < before

    def test_seed_reproducibility(self):
        a = make_mlp(10, 3, seed=5).get_weights()
        b = make_mlp(10, 3, seed=5).get_weights()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_mlp(10, 3, seed=5).get_weights()
        b = make_mlp(10, 3, seed=6).get_weights()
        assert not np.array_equal(a, b)
