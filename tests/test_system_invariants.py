"""System-level invariants of the sparse-gradient FL protocol.

These tests check the relationships the design guarantees *across*
modules: degenerate-k equivalences, conservation of gradient mass between
update and residual, synchronization, and edge-case robustness.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import partition_iid
from repro.data.synthetic import make_gaussian_blobs
from repro.fl.fedavg import AlwaysSendAllTrainer
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_logistic
from repro.simulation.timing import TimingModel
from repro.sparsify.base import ClientUpload, SparseVector
from repro.sparsify.fab_topk import FABTopK
from repro.sparsify.fub_topk import FUBTopK
from repro.sparsify.unidirectional import UnidirectionalTopK
from repro.fl.server import Server
from repro.sparsify.base import SelectionResult
from repro.sparsify.topk import top_k_indices


def make_setup(seed=0, num_clients=3):
    ds = make_gaussian_blobs(num_samples=240, num_classes=4, feature_dim=10,
                             separation=4.0, seed=seed)
    fed = partition_iid(ds, num_clients=num_clients, seed=seed)
    model = make_logistic(10, 4, seed=seed)
    return model, fed


class TestDegenerateK:
    def test_k_equals_d_first_round_matches_dense_aggregation(self):
        # With k = D, every client uploads its full residual (= first
        # round gradient) and the downlink is the full weighted average —
        # the first-round update must equal always-send-all's.
        model_a, fed_a = make_setup(seed=0)
        trainer_a = FLTrainer(model_a, fed_a, FABTopK(), learning_rate=0.05,
                              batch_size=16, seed=0)
        trainer_a.step(k=model_a.dimension)

        model_b, fed_b = make_setup(seed=0)
        timing = TimingModel(model_b.dimension, comm_time=0.0)
        trainer_b = AlwaysSendAllTrainer(model_b, fed_b, timing,
                                         learning_rate=0.05,
                                         batch_size=16, seed=0)
        trainer_b.step()
        np.testing.assert_allclose(
            model_a.get_weights(), model_b.get_weights(), atol=1e-12
        )

    def test_k_equals_d_schemes_agree_first_round(self):
        # All top-k schemes degenerate to the same dense behaviour at k=D.
        weights = {}
        for name, sparsifier in (("fab", FABTopK()), ("fub", FUBTopK()),
                                 ("uni", UnidirectionalTopK())):
            model, fed = make_setup(seed=1)
            trainer = FLTrainer(model, fed, sparsifier, learning_rate=0.05,
                                batch_size=16, seed=1)
            trainer.step(k=model.dimension)
            weights[name] = model.get_weights()
        np.testing.assert_allclose(weights["fab"], weights["fub"], atol=1e-12)
        np.testing.assert_allclose(weights["fab"], weights["uni"], atol=1e-12)

    def test_k_equals_one_still_progresses(self):
        model, fed = make_setup(seed=2)
        trainer = FLTrainer(model, fed, FABTopK(), learning_rate=0.1,
                            batch_size=16, seed=2)
        initial = trainer.global_loss()
        trainer.run(300, k=1)
        assert trainer.history.final_loss < initial


class TestMassConservation:
    def test_update_plus_residual_equals_gradient_sum(self):
        # Round 1 with equal client weights: for each client, the uploaded
        # part that entered b plus what remains in the residual must
        # reconstruct that client's full gradient.
        model, fed = make_setup(seed=3, num_clients=2)
        trainer = FLTrainer(model, fed, FABTopK(), learning_rate=0.05,
                            batch_size=10_000,  # full-shard batches
                            seed=3)
        w0 = model.get_weights()
        # Compute each client's expected gradient at w0 beforehand.
        expected = []
        for client in trainer.clients:
            grad, _ = model.gradient(client.dataset.x, client.dataset.y)
            expected.append(grad)
        trainer.step(k=5)
        update = (w0 - model.get_weights()) / trainer.learning_rate
        counts = np.array([c.sample_count for c in trainer.clients], float)
        share = counts / counts.sum()
        # Transmitted part of client i = gradient_i − residual_i (what
        # left the accumulator).  Its weighted sum must equal the update
        # that was applied to the synchronized weights — no gradient mass
        # appears or disappears in the server round-trip.
        transmitted_sum = sum(
            s * (e - c.residual)
            for s, c, e in zip(share, trainer.clients, expected)
        )
        np.testing.assert_allclose(transmitted_sum, update, atol=1e-10)


class TestSynchronization:
    def test_weight_changes_only_at_selected_indices(self):
        model, fed = make_setup(seed=4)
        trainer = FLTrainer(model, fed, FABTopK(), learning_rate=0.05,
                            batch_size=16, seed=4)
        for k in (3, 7, 12):
            w_before = model.get_weights()
            record = trainer.step(k=k)
            w_after = model.get_weights()
            changed = np.flatnonzero(w_before != w_after)
            assert changed.size <= record.downlink_elements

    def test_uplink_never_exceeds_k(self):
        model, fed = make_setup(seed=5)
        trainer = FLTrainer(model, fed, FABTopK(), learning_rate=0.05,
                            batch_size=16, seed=5)
        for _ in range(5):
            record = trainer.step(k=9)
            assert record.uplink_elements <= 9
            assert record.downlink_elements <= 9


class TestServerAggregationProperty:
    @given(st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_matches_dense_reference(self, seed, n_clients):
        rng = np.random.default_rng(seed)
        d = 25
        server = Server(d)
        uploads = []
        dense_sum = np.zeros(d)
        total_weight = 0.0
        for cid in range(n_clients):
            dense = rng.standard_normal(d)
            k_i = int(rng.integers(1, d + 1))
            idx = top_k_indices(dense, k_i)
            weight = int(rng.integers(1, 100))
            uploads.append(
                ClientUpload(cid, SparseVector.from_dense(dense, idx), weight)
            )
            masked = np.zeros(d)
            masked[idx] = dense[idx]
            dense_sum += weight * masked
            total_weight += weight
        selection = SelectionResult(indices=np.arange(d))
        aggregated = server.aggregate(uploads, selection).payload.to_dense()
        np.testing.assert_allclose(aggregated, dense_sum / total_weight,
                                   atol=1e-12)
