"""Unit tests for repro.nn.layers: shapes, values, and numeric gradients."""

import numpy as np
import pytest

from repro.nn.layers import (
    Conv2D,
    Dropout,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    Sequential,
    Tanh,
)

RNG = np.random.default_rng(7)


def numeric_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at array x."""
    grad = np.zeros_like(x, dtype=float)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f()
        x[idx] = orig - eps
        fm = f()
        x[idx] = orig
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


def check_layer_gradients(layer, x, tol=1e-6):
    """Check input and parameter gradients of a layer against finite diffs."""
    out = layer.forward(x)
    upstream = RNG.standard_normal(out.shape)

    def loss():
        return float((layer.forward(x) * upstream).sum())

    grad_in = layer.backward(upstream)
    num_in = numeric_grad(loss, x)
    np.testing.assert_allclose(grad_in, num_in, atol=tol, rtol=1e-4)

    layer.forward(x)
    layer.backward(upstream)
    for p, g in zip(layer.params, layer.grads):
        num_p = numeric_grad(loss, p)
        np.testing.assert_allclose(g, num_p, atol=tol, rtol=1e-4)


class TestLinear:
    def test_forward_matches_matmul(self):
        layer = Linear(4, 3, np.random.default_rng(0))
        x = RNG.standard_normal((5, 4))
        w, b = layer.params
        np.testing.assert_allclose(layer.forward(x), x @ w + b)

    def test_gradients(self):
        layer = Linear(4, 3, np.random.default_rng(0))
        check_layer_gradients(layer, RNG.standard_normal((5, 4)))

    def test_rejects_bad_input_shape(self):
        layer = Linear(4, 3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer.forward(RNG.standard_normal((5, 7)))

    def test_backward_before_forward_raises(self):
        layer = Linear(2, 2, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))


class TestActivations:
    def test_relu_values(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        np.testing.assert_allclose(relu.forward(x), [[0.0, 0.0, 2.0]])

    def test_relu_gradient(self):
        check_layer_gradients(ReLU(), RNG.standard_normal((4, 6)) + 0.1)

    def test_tanh_gradient(self):
        check_layer_gradients(Tanh(), RNG.standard_normal((4, 6)))

    def test_tanh_range(self):
        y = Tanh().forward(RNG.standard_normal((10, 10)) * 5)
        assert np.all(np.abs(y) < 1.0)


class TestFlatten:
    def test_roundtrip(self):
        layer = Flatten()
        x = RNG.standard_normal((2, 3, 4, 5))
        out = layer.forward(x)
        assert out.shape == (2, 60)
        back = layer.backward(out)
        assert back.shape == x.shape
        np.testing.assert_allclose(back, x)


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, seed=1)
        layer.train(False)
        x = RNG.standard_normal((3, 4))
        np.testing.assert_allclose(layer.forward(x), x)

    def test_training_zeroes_some_and_rescales(self):
        layer = Dropout(0.5, seed=1)
        x = np.ones((100, 100))
        out = layer.forward(x)
        zeros = (out == 0).mean()
        assert 0.4 < zeros < 0.6
        nonzero = out[out != 0]
        np.testing.assert_allclose(nonzero, 2.0)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.3, seed=2)
        x = np.ones((10, 10))
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, out)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_zero_rate_identity_and_gradient_passthrough(self):
        layer = Dropout(0.0)
        x = RNG.standard_normal((3, 3))
        np.testing.assert_allclose(layer.forward(x), x)
        g = RNG.standard_normal((3, 3))
        np.testing.assert_allclose(layer.backward(g), g)


class TestConv2D:
    def test_output_shape_no_padding(self):
        conv = Conv2D(2, 3, kernel_size=3, rng=np.random.default_rng(0))
        out = conv.forward(RNG.standard_normal((4, 2, 8, 8)))
        assert out.shape == (4, 3, 6, 6)

    def test_output_shape_with_padding(self):
        conv = Conv2D(2, 3, kernel_size=3, rng=np.random.default_rng(0), padding=1)
        out = conv.forward(RNG.standard_normal((4, 2, 8, 8)))
        assert out.shape == (4, 3, 8, 8)

    def test_matches_direct_convolution(self):
        conv = Conv2D(1, 1, kernel_size=2, rng=np.random.default_rng(0))
        x = RNG.standard_normal((1, 1, 3, 3))
        out = conv.forward(x)
        w = conv.params[0][0, 0]
        expected = np.zeros((2, 2))
        for i in range(2):
            for j in range(2):
                expected[i, j] = (x[0, 0, i : i + 2, j : j + 2] * w).sum()
        np.testing.assert_allclose(out[0, 0], expected + conv.params[1][0])

    def test_gradients(self):
        conv = Conv2D(2, 2, kernel_size=3, rng=np.random.default_rng(3), padding=1)
        check_layer_gradients(conv, RNG.standard_normal((2, 2, 5, 5)), tol=1e-5)

    def test_rejects_wrong_channels(self):
        conv = Conv2D(2, 3, kernel_size=3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            conv.forward(RNG.standard_normal((1, 5, 8, 8)))

    def test_rejects_kernel_larger_than_input(self):
        conv = Conv2D(1, 1, kernel_size=5, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            conv.forward(RNG.standard_normal((1, 1, 3, 3)))

    def test_backward_releases_im2col_cache(self):
        # The im2col buffer is n·H·W·C·k² floats; keeping it after the
        # backward would pin that much memory per client between rounds.
        conv = Conv2D(1, 2, kernel_size=3, rng=np.random.default_rng(0))
        out = conv.forward(RNG.standard_normal((2, 1, 6, 6)))
        assert conv._cols is not None
        conv.backward(np.ones_like(out))
        assert conv._cols is None
        with pytest.raises(RuntimeError):
            conv.backward(np.ones_like(out))

    def test_eval_forward_does_not_cache(self):
        # Evaluation forwards run over whole eval pools; caching backward
        # state there would pin pool-sized buffers until the next forward.
        conv = Conv2D(1, 2, kernel_size=3, rng=np.random.default_rng(0))
        pool = MaxPool2D(2)
        conv.train(False)
        pool.train(False)
        pool.forward(conv.forward(RNG.standard_normal((4, 1, 6, 6))))
        assert conv._cols is None
        assert pool._argmax is None


class TestGroupedConvPool:
    """Grouped (multi-client) conv/pool passes must be bit-identical to
    running each group through the serial forward/backward."""

    # Odd geometries: non-square inputs, padding 0/1, kernel == input
    # edge, kernel > input made valid only by padding.
    CONV_CASES = [
        (2, 3, 3, 0, 5, 7),   # non-square, no padding
        (2, 3, 3, 1, 5, 7),   # non-square, padded
        (1, 2, 3, 0, 3, 5),   # kernel equals one input edge (h_out = 1)
        (1, 1, 3, 1, 2, 2),   # kernel larger than input, saved by padding
        (3, 2, 2, 0, 6, 4),   # even kernel
        (2, 4, 1, 0, 4, 3),   # 1x1 kernel
    ]

    @pytest.mark.parametrize("cin,cout,kernel,padding,h,w", CONV_CASES)
    def test_conv_grouped_bit_identical(self, cin, cout, kernel, padding, h, w):
        conv = Conv2D(cin, cout, kernel_size=kernel,
                      rng=np.random.default_rng(1), padding=padding)
        groups, batch = 4, 3
        x = RNG.standard_normal((groups, batch, cin, h, w))
        out_grouped = conv.forward_grouped(x)
        upstream = RNG.standard_normal(out_grouped.shape)
        grad_in_grouped, param_grads = conv.backward_grouped(upstream)
        assert len(param_grads) == 2
        for g in range(groups):
            out = conv.forward(x[g])
            np.testing.assert_array_equal(out, out_grouped[g])
            grad_in = conv.backward(upstream[g])
            np.testing.assert_array_equal(grad_in, grad_in_grouped[g])
            np.testing.assert_array_equal(conv.grads[0], param_grads[0][g])
            np.testing.assert_array_equal(conv.grads[1], param_grads[1][g])

    def test_conv_grouped_rejects_bad_shapes(self):
        conv = Conv2D(2, 3, kernel_size=3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            conv.forward_grouped(RNG.standard_normal((2, 3, 5, 8, 8)))  # channels
        with pytest.raises(ValueError):
            conv.forward_grouped(RNG.standard_normal((3, 2, 8, 8)))  # ndim
        with pytest.raises(ValueError):  # kernel too large, no padding
            conv.forward_grouped(RNG.standard_normal((2, 3, 2, 2, 2)))

    @pytest.mark.parametrize("pool,c,h,w", [(2, 3, 4, 6), (3, 1, 6, 3), (1, 2, 3, 5)])
    def test_pool_grouped_bit_identical(self, pool, c, h, w):
        layer = MaxPool2D(pool)
        groups, batch = 3, 4
        x = RNG.standard_normal((groups, batch, c, h, w))
        out_grouped = layer.forward_grouped(x)
        upstream = RNG.standard_normal(out_grouped.shape)
        grad_grouped, param_grads = layer.backward_grouped(upstream)
        assert param_grads == []
        for g in range(groups):
            np.testing.assert_array_equal(layer.forward(x[g]), out_grouped[g])
            np.testing.assert_array_equal(
                layer.backward(upstream[g]), grad_grouped[g]
            )

    def test_pool_grouped_tie_routing_matches(self):
        # Constant windows tie every argmax; grouped and serial must route
        # the gradient to the same (first) element.
        layer = MaxPool2D(2)
        x = np.ones((2, 2, 1, 4, 4))
        out = layer.forward_grouped(x)
        grad, _ = layer.backward_grouped(np.ones_like(out))
        for g in range(2):
            layer.forward(x[g])
            np.testing.assert_array_equal(
                layer.backward(np.ones((2, 1, 2, 2))), grad[g]
            )

    def test_pool_grouped_rejects_bad_ndim(self):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward_grouped(RNG.standard_normal((2, 1, 4, 4)))

    def test_conv_grouped_backward_before_forward_raises(self):
        conv = Conv2D(1, 1, kernel_size=2, rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            conv.backward_grouped(np.zeros((1, 1, 1, 2, 2)))


class TestMaxPool2D:
    def test_values(self):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_gradient_routes_to_argmax(self):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_allclose(grad[0, 0], expected)

    def test_numeric_gradient(self):
        pool = MaxPool2D(2)
        # Add distinct values to avoid argmax ties that break finite diffs.
        x = RNG.permutation(64).astype(float).reshape(1, 1, 8, 8)
        check_layer_gradients(pool, x, tol=1e-5)

    def test_rejects_indivisible_input(self):
        pool = MaxPool2D(3)
        with pytest.raises(ValueError):
            pool.forward(RNG.standard_normal((1, 1, 4, 4)))


class TestSequential:
    def test_end_to_end_gradient(self):
        rng = np.random.default_rng(5)
        net = Sequential(
            [Linear(6, 8, rng), Tanh(), Linear(8, 4, rng), ReLU(), Linear(4, 2, rng)]
        )
        check_layer_gradients(net, RNG.standard_normal((3, 6)))

    def test_train_mode_propagates(self):
        net = Sequential([Linear(2, 2, np.random.default_rng(0)), Dropout(0.5)])
        net.train(False)
        assert not net.layers[1].training
        net.train(True)
        assert net.layers[1].training

    def test_parameter_and_gradient_arrays_parallel(self):
        rng = np.random.default_rng(1)
        net = Sequential([Linear(3, 4, rng), ReLU(), Linear(4, 2, rng)])
        params = net.parameter_arrays()
        grads = net.gradient_arrays()
        assert len(params) == len(grads) == 4
        for p, g in zip(params, grads):
            assert p.shape == g.shape

    def test_zero_grad(self):
        rng = np.random.default_rng(1)
        net = Sequential([Linear(3, 2, rng)])
        net.forward(RNG.standard_normal((2, 3)))
        net.backward(np.ones((2, 2)))
        assert np.abs(net.gradient_arrays()[0]).sum() > 0
        net.zero_grad()
        for g in net.gradient_arrays():
            np.testing.assert_allclose(g, 0.0)
