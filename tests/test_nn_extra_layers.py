"""Tests for Sigmoid and BatchNorm1D plus the CNN experiment config path."""

import numpy as np
import pytest

from repro.nn.layers import BatchNorm1D, Linear, Sequential, Sigmoid
from tests.test_nn_layers import check_layer_gradients

RNG = np.random.default_rng(21)


class TestSigmoid:
    def test_values(self):
        s = Sigmoid()
        out = s.forward(np.array([[0.0, 100.0, -100.0]]))
        np.testing.assert_allclose(out, [[0.5, 1.0, 0.0]], atol=1e-12)

    def test_no_overflow_on_extremes(self):
        s = Sigmoid()
        out = s.forward(np.array([[1e4, -1e4]]))
        assert np.all(np.isfinite(out))

    def test_gradient(self):
        check_layer_gradients(Sigmoid(), RNG.standard_normal((4, 6)))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Sigmoid().backward(np.zeros((1, 1)))


class TestBatchNorm1D:
    def test_training_normalizes(self):
        bn = BatchNorm1D(4)
        x = RNG.standard_normal((64, 4)) * 5 + 3
        out = bn.forward(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_running_stats_converge(self):
        bn = BatchNorm1D(3, momentum=0.5)
        for _ in range(50):
            bn.forward(RNG.standard_normal((128, 3)) * 2 + 1)
        np.testing.assert_allclose(bn.running_mean, 1.0, atol=0.3)
        np.testing.assert_allclose(bn.running_var, 4.0, atol=1.0)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm1D(2, momentum=1.0)
        bn.forward(RNG.standard_normal((256, 2)) * 3 + 5)
        bn.train(False)
        x = np.array([[5.0, 5.0]])
        out = bn.forward(x)
        # Normalized with running stats: (5-mean)/std ~ 0.
        assert np.all(np.abs(out) < 0.5)

    def test_gamma_beta_applied(self):
        bn = BatchNorm1D(2)
        bn.params[0][...] = [2.0, 2.0]
        bn.params[1][...] = [1.0, -1.0]
        out = bn.forward(RNG.standard_normal((32, 2)))
        np.testing.assert_allclose(out.mean(axis=0), [1.0, -1.0], atol=1e-9)

    def test_training_gradient(self):
        check_layer_gradients(BatchNorm1D(5), RNG.standard_normal((8, 5)),
                              tol=1e-5)

    def test_eval_gradient(self):
        bn = BatchNorm1D(5)
        bn.forward(RNG.standard_normal((16, 5)))  # populate running stats
        bn.train(False)
        check_layer_gradients(bn, RNG.standard_normal((8, 5)), tol=1e-5)

    def test_shape_validation(self):
        bn = BatchNorm1D(4)
        with pytest.raises(ValueError):
            bn.forward(RNG.standard_normal((8, 5)))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            BatchNorm1D(0)
        with pytest.raises(ValueError):
            BatchNorm1D(4, momentum=0.0)

    def test_in_sequential_network(self):
        rng = np.random.default_rng(0)
        net = Sequential([
            Linear(6, 8, rng), BatchNorm1D(8), Sigmoid(), Linear(8, 2, rng),
        ])
        check_layer_gradients(net, RNG.standard_normal((8, 6)), tol=1e-5)


class TestCNNConfigPath:
    def test_build_model_cnn(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import build_model

        cfg = ExperimentConfig.smoke().with_overrides(
            extras={"model_type": "cnn"}
        )
        model = build_model(cfg)
        x = RNG.standard_normal((2, cfg.image_size**2))
        logits = model.network.forward(
            x.reshape(2, 1, cfg.image_size, cfg.image_size)
        )
        assert logits.shape == (2, cfg.num_classes)

    def test_unknown_model_type(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import build_model

        cfg = ExperimentConfig.smoke().with_overrides(
            extras={"model_type": "transformer"}
        )
        with pytest.raises(ValueError):
            build_model(cfg)

    def test_cnn_federated_training_end_to_end(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import (
            build_federation,
            build_model,
            build_timing,
        )
        from repro.fl.trainer import FLTrainer
        from repro.sparsify.fab_topk import FABTopK

        cfg = ExperimentConfig.smoke().with_overrides(
            num_clients=4, samples_per_client=10, num_rounds=8,
            extras={"model_type": "cnn"},
        )
        model = build_model(cfg)
        federation = build_federation(cfg)
        # Data kept in NCHW layout for the CNN.
        assert federation.clients[0].x.ndim == 4
        trainer = FLTrainer(
            model, federation, FABTopK(),
            timing=build_timing(cfg, model.dimension),
            learning_rate=0.05, batch_size=8, seed=0,
        )
        initial = trainer.global_loss()
        trainer.run(cfg.num_rounds, k=50)
        assert trainer.history.final_loss < initial
