"""Tests for the timing model and synthetic cost oracles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.cost import (
    NoisySignOracle,
    QuadraticCost,
    TimePerLossCost,
)
from repro.simulation.timing import TimingModel


class TestTimingModel:
    def test_dense_round_total(self):
        tm = TimingModel(dimension=1000, comm_time=10.0)
        rt = tm.dense_round()
        assert rt.computation == 1.0
        assert rt.uplink == pytest.approx(5.0)
        assert rt.downlink == pytest.approx(5.0)
        assert rt.total == pytest.approx(11.0)

    def test_sparse_round_scales_with_k(self):
        tm = TimingModel(dimension=1000, comm_time=10.0)
        rt = tm.sparse_round(100, 100)
        # 100 pairs = 200 effective elements each way: 5 * 200/1000 = 1.0
        assert rt.uplink == pytest.approx(1.0)
        assert rt.downlink == pytest.approx(1.0)
        assert rt.total == pytest.approx(3.0)

    def test_sparse_never_exceeds_dense(self):
        tm = TimingModel(dimension=100, comm_time=8.0)
        sparse = tm.sparse_round(100, 100)  # pairs would cost 2x dense
        dense = tm.dense_round()
        assert sparse.uplink <= dense.uplink
        assert sparse.communication <= dense.communication

    def test_local_round(self):
        tm = TimingModel(dimension=10, comm_time=5.0)
        rt = tm.local_round()
        assert rt.total == 1.0
        assert rt.communication == 0.0

    def test_fedavg_period_matches_budget(self):
        tm = TimingModel(dimension=1000, comm_time=10.0)
        assert tm.fedavg_period(100) == 5  # D/(2k) = 1000/200
        assert tm.fedavg_period(1000) == 1  # clamped
        # Average comm of FedAvg = dense comm / period = 10/5 = 2 equals
        # sparse per-round comm with k=100 pairs.
        assert tm.dense_round().communication / 5 == pytest.approx(
            tm.sparse_round(100, 100).communication
        )

    def test_expected_sparse_round_time_interpolates(self):
        tm = TimingModel(dimension=1000, comm_time=10.0)
        t_low = tm.sparse_round(10, 10).total
        t_high = tm.sparse_round(11, 11).total
        mid = tm.expected_sparse_round_time(10.5)
        assert mid == pytest.approx(0.5 * (t_low + t_high))

    def test_expected_time_at_integer_matches_round(self):
        tm = TimingModel(dimension=500, comm_time=3.0)
        assert tm.expected_sparse_round_time(20) == pytest.approx(
            tm.sparse_round(20, 20).total
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            TimingModel(dimension=0, comm_time=1.0)
        with pytest.raises(ValueError):
            TimingModel(dimension=10, comm_time=-1.0)
        with pytest.raises(ValueError):
            TimingModel(dimension=10, comm_time=1.0, pair_overhead=0.5)
        tm = TimingModel(dimension=10, comm_time=1.0)
        with pytest.raises(ValueError):
            tm.sparse_round(-1, 0)
        with pytest.raises(ValueError):
            tm.fedavg_period(0)
        with pytest.raises(ValueError):
            tm.expected_sparse_round_time(-1.0)

    @given(
        st.integers(min_value=2, max_value=10_000),
        st.floats(min_value=0.01, max_value=1000.0),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_elements(self, dim, beta, k):
        tm = TimingModel(dimension=dim, comm_time=beta)
        k = min(k, dim)
        t1 = tm.sparse_round(k, k).total
        t2 = tm.sparse_round(min(k + 1, dim), min(k + 1, dim)).total
        assert t2 >= t1 - 1e-12


class TestQuadraticCost:
    def test_optimum_and_derivative(self):
        cost = QuadraticCost(k_star=40.0, kmax=100.0, seed=0)
        assert cost.optimum(1, 100) == 40.0
        assert cost.derivative(50.0, 1) > 0
        assert cost.derivative(30.0, 1) < 0
        assert cost.sign(40.0, 1) == 0

    def test_clipped_optimum(self):
        cost = QuadraticCost(k_star=40.0, kmax=100.0)
        assert cost.optimum(50, 100) == 50.0

    def test_scale_cached_per_round(self):
        cost = QuadraticCost(k_star=10.0, kmax=50.0, seed=1)
        assert cost.tau(20.0, 3) == cost.tau(20.0, 3)
        assert cost._scale(3) == cost._scale(3)

    def test_regret_of_static_optimum_is_zero(self):
        cost = QuadraticCost(k_star=25.0, kmax=50.0)
        assert cost.regret([25.0] * 10, 1, 50) == pytest.approx(0.0)

    def test_regret_positive_off_optimum(self):
        cost = QuadraticCost(k_star=25.0, kmax=50.0)
        assert cost.regret([40.0] * 10, 1, 50) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            QuadraticCost(k_star=1.0, kmax=10.0, scale_low=0.0)


class TestTimePerLossCost:
    def test_convexity_on_grid(self):
        cost = TimePerLossCost(dimension=1000, comm_time=10.0)
        ks = np.linspace(1, 1000, 200)
        taus = np.array([cost.tau(k, 1) for k in ks])
        # Discrete convexity: second differences nonnegative.
        second = taus[2:] - 2 * taus[1:-1] + taus[:-2]
        assert np.all(second > -1e-9)

    def test_interior_optimum_formula(self):
        cost = TimePerLossCost(dimension=1000, comm_time=10.0, saturation=50.0)
        k_star = cost.optimum(1, 1000)
        expected = np.sqrt(1.0 * 50.0 * 1000 / (2 * 10.0))
        assert k_star == pytest.approx(expected)
        assert abs(cost.derivative(k_star, 1)) < 1e-9

    def test_optimum_decreases_with_comm_time(self):
        slow = TimePerLossCost(dimension=1000, comm_time=100.0)
        fast = TimePerLossCost(dimension=1000, comm_time=0.1)
        assert slow.optimum(1, 1000) < fast.optimum(1, 1000)

    def test_derivative_matches_finite_difference(self):
        cost = TimePerLossCost(dimension=500, comm_time=5.0)
        for k in [2.0, 30.0, 250.0, 480.0]:
            eps = 1e-5
            num = (cost.tau(k + eps, 1) - cost.tau(k - eps, 1)) / (2 * eps)
            assert cost.derivative(k, 1) == pytest.approx(num, rel=1e-4)

    def test_derivative_bound_holds(self):
        cost = TimePerLossCost(dimension=300, comm_time=7.0, round_scale_jitter=0.3,
                               seed=5)
        for k in np.linspace(1, 300, 50):
            for m in range(1, 20):
                assert abs(cost.derivative(float(k), m)) <= cost.derivative_bound + 1e-9

    def test_jitter_varies_rounds_but_not_optimum(self):
        cost = TimePerLossCost(dimension=200, comm_time=2.0,
                               round_scale_jitter=0.4, seed=2)
        taus = {cost.tau(50.0, m) for m in range(1, 10)}
        assert len(taus) > 1  # per-round scales differ
        # Scaling does not move the argmin (Assumption 2c).
        ks = np.linspace(1, 200, 400)
        argmins = {int(np.argmin([cost.tau(float(k), m) for k in ks]))
                   for m in range(1, 5)}
        assert len(argmins) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TimePerLossCost(dimension=1, comm_time=1.0)
        with pytest.raises(ValueError):
            TimePerLossCost(dimension=10, comm_time=0.0)
        cost = TimePerLossCost(dimension=10, comm_time=1.0)
        with pytest.raises(ValueError):
            cost.tau(0.0, 1)


class TestNoisySignOracle:
    def test_no_noise_matches_exact(self):
        base = QuadraticCost(k_star=10.0, kmax=50.0)
        noisy = NoisySignOracle(base, flip_probability=0.0)
        for k in [5.0, 15.0]:
            assert noisy.sign(k, 1) == base.sign(k, 1)

    def test_flip_rate(self):
        base = QuadraticCost(k_star=10.0, kmax=50.0)
        noisy = NoisySignOracle(base, flip_probability=0.3, seed=0)
        flips = sum(noisy.sign(20.0, m) != base.sign(20.0, m) for m in range(2000))
        assert 0.25 < flips / 2000 < 0.35

    def test_H_constant(self):
        base = QuadraticCost(k_star=10.0, kmax=50.0)
        assert NoisySignOracle(base, 0.0).H == 1.0
        assert NoisySignOracle(base, 0.25).H == pytest.approx(2.0)

    def test_validation(self):
        base = QuadraticCost(k_star=10.0, kmax=50.0)
        with pytest.raises(ValueError):
            NoisySignOracle(base, 0.5)
        with pytest.raises(ValueError):
            NoisySignOracle(base, -0.1)
